//! Privacy-loss parameter types: ε, δ and the combined (ε, δ) pair.
//!
//! These are thin newtypes over `f64` with the invariants a privacy
//! accountant needs: non-negativity, explicit handling of the *infinite*
//! loss incurred by an unobfuscated ("no privacy") response, and saturating
//! addition so that composing anything with `ε = ∞` stays `∞` rather than
//! producing NaN.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// The ε (epsilon) parameter of differential privacy.
///
/// Smaller is more private. `Epsilon::INFINITY` represents a response
/// submitted with no obfuscation at all, which formally provides no
/// differential-privacy guarantee.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Zero privacy loss (a response that reveals nothing).
    pub const ZERO: Epsilon = Epsilon(0.0);
    /// Unbounded privacy loss (an unobfuscated response).
    pub const INFINITY: Epsilon = Epsilon(f64::INFINITY);

    /// Creates an ε value.
    ///
    /// # Panics
    /// Panics if `value` is negative or NaN — neither is a meaningful
    /// privacy loss.
    pub fn new(value: f64) -> Epsilon {
        assert!(
            value >= 0.0 && !value.is_nan(),
            "epsilon must be non-negative and not NaN, got {value}"
        );
        Epsilon(value)
    }

    /// Creates an ε value, returning `None` for negative or NaN inputs.
    pub fn try_new(value: f64) -> Option<Epsilon> {
        if value >= 0.0 && !value.is_nan() {
            Some(Epsilon(value))
        } else {
            None
        }
    }

    /// The raw ε value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether this is the unbounded (no-guarantee) loss.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Whether this is a real (finite) guarantee.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Saturating addition; anything plus `∞` is `∞`.
    pub fn saturating_add(self, other: Epsilon) -> Epsilon {
        Epsilon(self.0 + other.0)
    }

    /// Multiplies the loss by a non-negative integer count (k-fold
    /// sequential composition of the same mechanism).
    pub fn scale(self, k: u32) -> Epsilon {
        if k == 0 {
            Epsilon::ZERO
        } else {
            Epsilon(self.0 * f64::from(k))
        }
    }
}

impl Add for Epsilon {
    type Output = Epsilon;
    fn add(self, rhs: Epsilon) -> Epsilon {
        self.saturating_add(rhs)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "ε=∞")
        } else {
            write!(f, "ε={:.4}", self.0)
        }
    }
}

/// The δ (delta) parameter of approximate differential privacy.
///
/// A probability, so it must lie in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Delta(f64);

impl Delta {
    /// δ = 0 (pure differential privacy).
    pub const ZERO: Delta = Delta(0.0);

    /// Creates a δ value.
    ///
    /// # Panics
    /// Panics if `value` is outside `[0, 1]` or NaN.
    pub fn new(value: f64) -> Delta {
        assert!(
            (0.0..=1.0).contains(&value),
            "delta must be a probability in [0,1], got {value}"
        );
        Delta(value)
    }

    /// Creates a δ value, returning `None` if outside `[0, 1]`.
    pub fn try_new(value: f64) -> Option<Delta> {
        if (0.0..=1.0).contains(&value) {
            Some(Delta(value))
        } else {
            None
        }
    }

    /// The raw δ value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Addition capped at 1 (δ is a probability; the union bound used in
    /// composition can never exceed certainty).
    pub fn saturating_add(self, other: Delta) -> Delta {
        Delta((self.0 + other.0).min(1.0))
    }

    /// Multiplies by a count, capped at 1.
    pub fn scale(self, k: u32) -> Delta {
        Delta((self.0 * f64::from(k)).min(1.0))
    }
}

impl Add for Delta {
    type Output = Delta;
    fn add(self, rhs: Delta) -> Delta {
        self.saturating_add(rhs)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "δ={:.2e}", self.0)
    }
}

/// A combined (ε, δ) privacy loss, the unit tracked by the accountant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyLoss {
    /// The ε component.
    pub epsilon: Epsilon,
    /// The δ component.
    pub delta: Delta,
}

impl PrivacyLoss {
    /// Zero loss: (0, 0).
    pub const ZERO: PrivacyLoss = PrivacyLoss {
        epsilon: Epsilon::ZERO,
        delta: Delta::ZERO,
    };

    /// Creates a loss from raw parts. Panics on invalid values (see
    /// [`Epsilon::new`], [`Delta::new`]).
    pub fn new(epsilon: f64, delta: f64) -> PrivacyLoss {
        PrivacyLoss {
            epsilon: Epsilon::new(epsilon),
            delta: Delta::new(delta),
        }
    }

    /// The loss of an unobfuscated response: (∞, 0).
    pub fn unbounded() -> PrivacyLoss {
        PrivacyLoss {
            epsilon: Epsilon::INFINITY,
            delta: Delta::ZERO,
        }
    }

    /// Whether this loss represents a real (finite-ε) guarantee.
    pub fn is_finite(self) -> bool {
        self.epsilon.is_finite()
    }

    /// Basic sequential composition: parameters add (δ capped at 1).
    pub fn compose(self, other: PrivacyLoss) -> PrivacyLoss {
        PrivacyLoss {
            epsilon: self.epsilon + other.epsilon,
            delta: self.delta + other.delta,
        }
    }

    /// k-fold basic composition of this loss with itself.
    pub fn compose_k(self, k: u32) -> PrivacyLoss {
        PrivacyLoss {
            epsilon: self.epsilon.scale(k),
            delta: self.delta.scale(k),
        }
    }

    /// Whether this loss fits within `budget` (both components).
    pub fn within(self, budget: PrivacyLoss) -> bool {
        self.epsilon.value() <= budget.epsilon.value() && self.delta.value() <= budget.delta.value()
    }
}

impl fmt::Display for PrivacyLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.epsilon, self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_rejects_negative() {
        assert!(Epsilon::try_new(-0.1).is_none());
        assert!(Epsilon::try_new(f64::NAN).is_none());
        assert!(Epsilon::try_new(0.0).is_some());
    }

    #[test]
    #[should_panic(expected = "epsilon must be non-negative")]
    fn epsilon_new_panics_on_negative() {
        let _ = Epsilon::new(-1.0);
    }

    #[test]
    fn epsilon_infinity_saturates() {
        let inf = Epsilon::INFINITY;
        let one = Epsilon::new(1.0);
        assert!((inf + one).is_infinite());
        assert!((one + inf).is_infinite());
        assert!(inf.scale(3).is_infinite());
    }

    #[test]
    fn epsilon_scale_zero_of_infinity_is_zero() {
        // 0 invocations of any mechanism leak nothing, even a non-private one.
        assert_eq!(Epsilon::INFINITY.scale(0), Epsilon::ZERO);
    }

    #[test]
    fn delta_bounds() {
        assert!(Delta::try_new(1.5).is_none());
        assert!(Delta::try_new(-0.1).is_none());
        assert_eq!(Delta::new(0.25).value(), 0.25);
    }

    #[test]
    fn delta_addition_caps_at_one() {
        let d = Delta::new(0.7);
        assert_eq!((d + d).value(), 1.0);
        assert_eq!(d.scale(10).value(), 1.0);
    }

    #[test]
    fn loss_composition_adds() {
        let a = PrivacyLoss::new(0.5, 1e-6);
        let b = PrivacyLoss::new(1.0, 1e-6);
        let c = a.compose(b);
        assert!((c.epsilon.value() - 1.5).abs() < 1e-12);
        assert!((c.delta.value() - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn loss_compose_k_matches_repeated_compose() {
        let a = PrivacyLoss::new(0.3, 1e-7);
        let mut acc = PrivacyLoss::ZERO;
        for _ in 0..5 {
            acc = acc.compose(a);
        }
        let k = a.compose_k(5);
        assert!((acc.epsilon.value() - k.epsilon.value()).abs() < 1e-12);
        assert!((acc.delta.value() - k.delta.value()).abs() < 1e-18);
    }

    #[test]
    fn unbounded_loss_is_not_finite() {
        assert!(!PrivacyLoss::unbounded().is_finite());
        assert!(PrivacyLoss::new(3.0, 0.0).is_finite());
    }

    #[test]
    fn within_budget() {
        let budget = PrivacyLoss::new(2.0, 1e-5);
        assert!(PrivacyLoss::new(1.9, 1e-6).within(budget));
        assert!(!PrivacyLoss::new(2.1, 1e-6).within(budget));
        assert!(!PrivacyLoss::new(1.0, 1e-4).within(budget));
        assert!(!PrivacyLoss::unbounded().within(budget));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Epsilon::INFINITY), "ε=∞");
        assert_eq!(format!("{}", Epsilon::new(0.5)), "ε=0.5000");
        let s = format!("{}", PrivacyLoss::new(1.0, 1e-5));
        assert!(s.contains("ε=1.0000") && s.contains("δ=1.00e-5"));
    }

    #[test]
    fn serde_round_trip() {
        let loss = PrivacyLoss::new(1.25, 1e-5);
        let json = serde_json::to_string(&loss).unwrap();
        let back: PrivacyLoss = serde_json::from_str(&json).unwrap();
        assert_eq!(loss, back);
    }
}
