//! The Gaussian mechanism — the noise Loki's app adds at-source.
//!
//! Two calibrations are provided:
//!
//! * the **classic** calibration σ = Δ·√(2 ln(1.25/δ))/ε (Dwork & Roth,
//!   valid for ε ≤ 1), kept as a baseline and for cross-checking;
//! * the **analytic** calibration of Balle & Wang (ICML 2018), which is
//!   tight for every ε and is what the ledger uses to convert the app's
//!   fixed noise levels (σ = 0.5, 1.0, 2.0 on a 1–5 scale) into (ε, δ)
//!   pairs.
//!
//! The analytic characterization: `N(0, σ²)` noise on a query of
//! sensitivity Δ is (ε, δ)-DP **iff**
//!
//! ```text
//! δ ≥ Φ(Δ/2σ − εσ/Δ) − eᵉ · Φ(−Δ/2σ − εσ/Δ)
//! ```
//!
//! Both directions (σ from (ε, δ); ε from (σ, δ)) are solved by monotone
//! bisection on this expression.

use super::Mechanism;
use crate::params::{Delta, Epsilon, PrivacyLoss};
use crate::sampling;
use crate::sensitivity::Sensitivity;
use crate::special::normal_cdf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Additive Gaussian noise with standard deviation `sigma`, calibrated to a
/// query of the given sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMechanism {
    sigma: f64,
    sensitivity: Sensitivity,
    delta: Delta,
}

/// The exact δ achieved by σ-noise at privacy level ε for sensitivity Δ
/// (Balle & Wang, Theorem 8). Monotone decreasing in both σ and ε.
pub fn analytic_delta(sensitivity: Sensitivity, sigma: f64, epsilon: Epsilon) -> Delta {
    assert!(sigma > 0.0, "analytic_delta requires sigma > 0");
    let d = sensitivity.value();
    let eps = epsilon.value();
    if eps.is_infinite() {
        return Delta::ZERO;
    }
    let a = d / (2.0 * sigma) - eps * sigma / d;
    let b = -d / (2.0 * sigma) - eps * sigma / d;
    // The ε·ln term can overflow exp() for large ε; compute in log space
    // when needed.
    let term2 = if eps > 700.0 {
        // e^ε Φ(b): Φ(b) underflows much faster than e^ε overflows here, so
        // compute exp(ε + ln Φ(b)). Φ(b) for very negative b ~ φ(b)/|b|.
        let ln_phi_b = if b < -8.0 {
            -0.5 * b * b - (-b).ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
        } else {
            normal_cdf(b).ln()
        };
        (eps + ln_phi_b).exp()
    } else {
        eps.exp() * normal_cdf(b)
    };
    let delta = (normal_cdf(a) - term2).clamp(0.0, 1.0);
    Delta::new(delta)
}

impl GaussianMechanism {
    /// Builds the mechanism directly from a noise standard deviation, with
    /// unit sensitivity and the crate's [default δ](crate::DEFAULT_DELTA).
    /// Mostly useful in tests and utility sweeps.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn with_sigma(sigma: f64) -> GaussianMechanism {
        GaussianMechanism::from_sigma(sigma, Sensitivity::new(1.0), Delta::new(crate::DEFAULT_DELTA))
    }

    /// Builds the mechanism from a chosen noise level. This is the
    /// direction Loki uses: the app's privacy levels fix σ, and the ledger
    /// needs the implied ε at the chosen δ.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive and finite, or if
    /// `delta` is zero (the Gaussian mechanism never satisfies pure DP).
    pub fn from_sigma(sigma: f64, sensitivity: Sensitivity, delta: Delta) -> GaussianMechanism {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "sigma must be positive and finite, got {sigma}"
        );
        assert!(
            delta.value() > 0.0,
            "the Gaussian mechanism requires delta > 0"
        );
        GaussianMechanism {
            sigma,
            sensitivity,
            delta,
        }
    }

    /// Classic calibration: σ = Δ·√(2 ln(1.25/δ))/ε. Only valid for ε ≤ 1;
    /// asserts that bound.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in (0, 1] or `delta` is zero.
    pub fn calibrate_classic(
        sensitivity: Sensitivity,
        epsilon: Epsilon,
        delta: Delta,
    ) -> GaussianMechanism {
        let eps = epsilon.value();
        assert!(
            eps > 0.0 && eps <= 1.0,
            "classic Gaussian calibration requires 0 < epsilon <= 1, got {eps}"
        );
        assert!(delta.value() > 0.0, "delta must be positive");
        let sigma = sensitivity.value() * (2.0 * (1.25 / delta.value()).ln()).sqrt() / eps;
        GaussianMechanism {
            sigma,
            sensitivity,
            delta,
        }
    }

    /// Analytic (tight) calibration: the smallest σ such that the mechanism
    /// is (ε, δ)-DP, found by bisection on [`analytic_delta`].
    ///
    /// # Panics
    /// Panics if `epsilon` is zero/infinite or `delta` is zero.
    pub fn calibrate_analytic(
        sensitivity: Sensitivity,
        epsilon: Epsilon,
        delta: Delta,
    ) -> GaussianMechanism {
        let eps = epsilon.value();
        assert!(
            eps > 0.0 && eps.is_finite(),
            "analytic calibration requires finite positive epsilon, got {eps}"
        );
        assert!(delta.value() > 0.0, "delta must be positive");

        // δ(σ) is monotone decreasing in σ. Find a bracket then bisect.
        let mut lo = 1e-12;
        let mut hi = sensitivity.value().max(1.0);
        while analytic_delta(sensitivity, hi, epsilon).value() > delta.value() {
            hi *= 2.0;
            assert!(hi < 1e12, "failed to bracket sigma");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if analytic_delta(sensitivity, mid, epsilon).value() > delta.value() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        GaussianMechanism {
            sigma: hi,
            sensitivity,
            delta,
        }
    }

    /// The tight ε implied by this mechanism's σ at its δ, via bisection on
    /// [`analytic_delta`] (monotone decreasing in ε).
    pub fn epsilon(&self) -> Epsilon {
        let target = self.delta.value();
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        while analytic_delta(self.sensitivity, self.sigma, Epsilon::new(hi)).value() > target {
            hi *= 2.0;
            if hi > 1e9 {
                // Effectively no guarantee at this δ.
                return Epsilon::INFINITY;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if analytic_delta(self.sensitivity, self.sigma, Epsilon::new(mid)).value() > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Epsilon::new(hi)
    }

    /// The noise standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The calibrated sensitivity.
    pub fn sensitivity(&self) -> Sensitivity {
        self.sensitivity
    }

    /// The δ this mechanism's ledger entries are stated at.
    pub fn delta(&self) -> Delta {
        self.delta
    }
}

impl Mechanism for GaussianMechanism {
    fn privacy_loss(&self) -> PrivacyLoss {
        PrivacyLoss {
            epsilon: self.epsilon(),
            delta: self.delta,
        }
    }

    fn release<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        sampling::gaussian(rng, value, self.sigma)
    }

    fn noise_std(&self) -> Option<f64> {
        Some(self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn sens() -> Sensitivity {
        Sensitivity::new(4.0) // a 1–5 rating scale
    }

    #[test]
    fn analytic_delta_decreases_in_sigma() {
        let eps = Epsilon::new(1.0);
        let d1 = analytic_delta(sens(), 1.0, eps).value();
        let d2 = analytic_delta(sens(), 2.0, eps).value();
        let d3 = analytic_delta(sens(), 4.0, eps).value();
        assert!(d1 > d2 && d2 > d3, "{d1} {d2} {d3}");
    }

    #[test]
    fn analytic_delta_decreases_in_epsilon() {
        let d1 = analytic_delta(sens(), 2.0, Epsilon::new(0.5)).value();
        let d2 = analytic_delta(sens(), 2.0, Epsilon::new(1.0)).value();
        let d3 = analytic_delta(sens(), 2.0, Epsilon::new(2.0)).value();
        assert!(d1 > d2 && d2 > d3, "{d1} {d2} {d3}");
    }

    #[test]
    fn analytic_calibration_hits_target_delta() {
        let eps = Epsilon::new(1.0);
        let delta = Delta::new(1e-5);
        let m = GaussianMechanism::calibrate_analytic(sens(), eps, delta);
        let achieved = analytic_delta(sens(), m.sigma(), eps).value();
        assert!(
            achieved <= delta.value() * (1.0 + 1e-6),
            "achieved δ {achieved} exceeds target {}",
            delta.value()
        );
        // And it is tight: slightly smaller sigma must violate the target.
        let worse = analytic_delta(sens(), m.sigma() * 0.99, eps).value();
        assert!(worse > delta.value());
    }

    #[test]
    fn analytic_beats_classic() {
        // Balle & Wang's calibration strictly improves on the classic one.
        let eps = Epsilon::new(0.5);
        let delta = Delta::new(1e-5);
        let classic = GaussianMechanism::calibrate_classic(sens(), eps, delta);
        let analytic = GaussianMechanism::calibrate_analytic(sens(), eps, delta);
        assert!(
            analytic.sigma() < classic.sigma(),
            "analytic {} !< classic {}",
            analytic.sigma(),
            classic.sigma()
        );
    }

    #[test]
    fn epsilon_round_trips_through_sigma() {
        // calibrate for ε, then recover ε from σ: must agree.
        for &target in &[0.25, 1.0, 3.0, 8.0] {
            let eps = Epsilon::new(target);
            let delta = Delta::new(1e-5);
            let m = GaussianMechanism::calibrate_analytic(sens(), eps, delta);
            let back = m.epsilon().value();
            assert!(
                (back - target).abs() / target < 1e-4,
                "round trip {target} -> {back}"
            );
        }
    }

    #[test]
    fn loki_privacy_levels_have_ordered_epsilon() {
        // The app's σ ∈ {0.5, 1.0, 2.0} on a 1–5 scale: higher privacy
        // level (larger σ) must yield smaller ε.
        let delta = Delta::new(crate::DEFAULT_DELTA);
        let eps: Vec<f64> = [0.5, 1.0, 2.0]
            .iter()
            .map(|&s| {
                GaussianMechanism::from_sigma(s, sens(), delta)
                    .epsilon()
                    .value()
            })
            .collect();
        assert!(eps[0] > eps[1] && eps[1] > eps[2], "{eps:?}");
        assert!(eps.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn release_adds_mean_zero_noise() {
        let m = GaussianMechanism::with_sigma(1.0);
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.release(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn from_sigma_rejects_zero() {
        let _ = GaussianMechanism::from_sigma(0.0, sens(), Delta::new(1e-5));
    }

    #[test]
    #[should_panic(expected = "requires 0 < epsilon <= 1")]
    fn classic_rejects_large_epsilon() {
        let _ = GaussianMechanism::calibrate_classic(sens(), Epsilon::new(2.0), Delta::new(1e-5));
    }

    #[test]
    fn privacy_loss_carries_delta() {
        let m = GaussianMechanism::from_sigma(1.0, sens(), Delta::new(1e-6));
        let loss = m.privacy_loss();
        assert_eq!(loss.delta.value(), 1e-6);
        assert!(loss.epsilon.is_finite());
    }
}
