//! Differentially-private mechanisms.
//!
//! Loki's obfuscation (§3.1 of the paper) adds Gaussian noise to ratings;
//! the paper notes the approach "is general and can be applied to other
//! question types (e.g., multiple-choice questions) in which the response
//! set is countable". This module therefore carries:
//!
//! * [`gaussian`] — the mechanism Loki actually ships for ratings,
//!   including the analytic calibration used to translate the app's
//!   privacy levels into (ε, δ) ledger entries;
//! * [`laplace`] — the pure-DP alternative (used as a baseline in the
//!   accuracy/privacy trade-off experiments);
//! * [`randomized_response`] — k-ary randomized response for
//!   multiple-choice questions;
//! * [`exponential`] — selection among a countable response set, used by
//!   the extension experiments for ordinal answers.
//!
//! Mechanisms share the [`Mechanism`] trait so estimators and the
//! accountant can be written generically.

pub mod discrete_gaussian;
pub mod exponential;
pub mod gaussian;
pub mod laplace;
pub mod randomized_response;

use crate::params::PrivacyLoss;
use rand::Rng;

/// A randomized mechanism releasing a noisy version of a real-valued answer.
pub trait Mechanism {
    /// The privacy loss of one invocation.
    fn privacy_loss(&self) -> PrivacyLoss;

    /// Releases a noisy version of `value`.
    fn release<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64;

    /// The standard deviation of the released value around the true value,
    /// used for utility prediction. Mechanisms with no closed-form additive
    /// noise (e.g. randomized response) return `None`.
    fn noise_std(&self) -> Option<f64>;
}

#[cfg(test)]
mod tests {
    use super::gaussian::GaussianMechanism;
    use super::laplace::LaplaceMechanism;
    use super::Mechanism;
    use crate::sensitivity::Sensitivity;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    /// Generic check that works across mechanisms: the empirical standard
    /// deviation of releases matches `noise_std`.
    fn check_noise_std<M: Mechanism>(m: &M, seed: u64) {
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let want = m.noise_std().expect("additive mechanism");
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| m.release(&mut rng, 0.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let got = var.sqrt();
        assert!(
            (got - want).abs() / want < 0.03,
            "noise std: got {got}, want {want}"
        );
    }

    #[test]
    fn gaussian_noise_std_matches_empirical() {
        let m = GaussianMechanism::with_sigma(1.5);
        check_noise_std(&m, 11);
    }

    #[test]
    fn laplace_noise_std_matches_empirical() {
        let m = LaplaceMechanism::new(Sensitivity::new(4.0), crate::Epsilon::new(2.0));
        check_noise_std(&m, 12);
    }
}
