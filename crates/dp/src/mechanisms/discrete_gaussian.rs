//! The discrete Gaussian mechanism (Canonne, Kamath & Steinke, 2020).
//!
//! Loki's ratings are integers; uploading a *real-valued* noisy rating
//! (Fig. 1(c) shows values like 5.74) leaks nothing extra, but some
//! deployments prefer on-scale-looking integers. The discrete Gaussian
//! `N_Z(0, σ²)` adds integer noise with the same Rényi-DP guarantee as
//! the continuous mechanism — `(α, α·Δ²/2σ²)`-RDP — so it drops into the
//! existing accountant unchanged.
//!
//! Sampling follows CKS'20 Algorithm 3: draw from a discrete Laplace of
//! scale `t = ⌊σ⌋ + 1` (two-sided geometric, sampled by inversion) and
//! accept with probability `exp(−(|y| − σ²/t)² / 2σ²)`. The construction
//! is exact up to `f64` arithmetic; this is a research simulator, not a
//! hardened DP deployment, so floating-point side channels are out of
//! scope (documented trade-off).

use super::Mechanism;
use crate::params::{Delta, Epsilon, PrivacyLoss};
use crate::sensitivity::Sensitivity;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Additive integer noise `N_Z(0, σ²)` on a query of integer sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscreteGaussianMechanism {
    sigma: f64,
    sensitivity: Sensitivity,
    delta: Delta,
}

impl DiscreteGaussianMechanism {
    /// Creates the mechanism from a noise parameter σ.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive and finite, or `delta`
    /// is zero.
    pub fn from_sigma(
        sigma: f64,
        sensitivity: Sensitivity,
        delta: Delta,
    ) -> DiscreteGaussianMechanism {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "sigma must be positive and finite, got {sigma}"
        );
        assert!(delta.value() > 0.0, "discrete Gaussian requires delta > 0");
        DiscreteGaussianMechanism {
            sigma,
            sensitivity,
            delta,
        }
    }

    /// The noise parameter σ (the distribution's standard deviation is
    /// close to, and at most, σ).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample from `N_Z(0, σ²)`.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        sample_discrete_gaussian(rng, self.sigma)
    }

    /// The implied ε at the stated δ. The discrete Gaussian enjoys the
    /// *same* analytic (ε, δ) curve as the continuous Gaussian (CKS'20,
    /// Thm 7 — it is at least as private), so we reuse that calibration.
    pub fn epsilon(&self) -> Epsilon {
        crate::mechanisms::gaussian::GaussianMechanism::from_sigma(
            self.sigma,
            self.sensitivity,
            self.delta,
        )
        .epsilon()
    }
}

impl Mechanism for DiscreteGaussianMechanism {
    fn privacy_loss(&self) -> PrivacyLoss {
        PrivacyLoss {
            epsilon: self.epsilon(),
            delta: self.delta,
        }
    }

    fn release<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        // The mechanism is defined on integers; round the input (Loki
        // ratings are integers already) then add integer noise.
        value.round() + self.sample_noise(rng) as f64
    }

    fn noise_std(&self) -> Option<f64> {
        // Var[N_Z(0, σ²)] ≤ σ²; for σ ≥ 1 the gap is < 1%, and the tests
        // check the empirical value. Report σ as the usable figure.
        Some(self.sigma)
    }
}

/// Draws one discrete Laplace variate with scale `t`: `P[Y = y] ∝
/// exp(−|y|/t)`. Sampled by inversion of the two-sided geometric.
fn sample_discrete_laplace<R: Rng + ?Sized>(rng: &mut R, t: f64) -> i64 {
    debug_assert!(t >= 1.0);
    // Magnitude: geometric over {0, 1, 2, …} via inversion; sign by a
    // fair coin, rejecting (negative, 0) so zero isn't double-counted.
    // The resulting pmf is ∝ exp(−|y|/t) for every y, including 0.
    let q = (-1.0 / t).exp();
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let m = (u.ln() / q.ln()).floor() as i64;
        let negative = rng.gen_bool(0.5);
        if negative && m == 0 {
            continue;
        }
        return if negative { -m } else { m };
    }
}

/// Draws one discrete Gaussian variate `N_Z(0, σ²)` by rejection from a
/// discrete Laplace (CKS'20 Alg. 3).
pub fn sample_discrete_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> i64 {
    assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
    let t = sigma.floor() + 1.0;
    let sigma_sq = sigma * sigma;
    loop {
        let y = sample_discrete_laplace(rng, t);
        let diff = (y.abs() as f64) - sigma_sq / t;
        let accept_p = (-(diff * diff) / (2.0 * sigma_sq)).exp();
        if rng.gen_bool(accept_p.clamp(0.0, 1.0)) {
            return y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn rng(seed: u64) -> ChaCha20Rng {
        ChaCha20Rng::seed_from_u64(seed)
    }

    fn moments(samples: &[i64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn discrete_laplace_is_symmetric_with_right_tail() {
        let mut r = rng(1);
        let t = 2.5;
        let n = 200_000;
        let samples: Vec<i64> = (0..n).map(|_| sample_discrete_laplace(&mut r, t)).collect();
        let (mean, _) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        // P[|Y| >= 1]/P[Y = 0] ratio sanity: tail decays like e^{-1/t}.
        let zero = samples.iter().filter(|&&x| x == 0).count() as f64;
        let one = samples.iter().filter(|&&x| x == 1).count() as f64;
        let ratio = one / zero;
        let want = (-1.0 / t).exp();
        assert!((ratio - want).abs() < 0.02, "ratio {ratio} want {want}");
    }

    #[test]
    fn discrete_gaussian_moments() {
        for sigma in [0.8, 1.5, 3.0] {
            let mut r = rng(2);
            let n = 150_000;
            let samples: Vec<i64> = (0..n)
                .map(|_| sample_discrete_gaussian(&mut r, sigma))
                .collect();
            let (mean, var) = moments(&samples);
            assert!(mean.abs() < 0.02, "σ={sigma}: mean {mean}");
            // Discrete Gaussian variance is slightly below σ² for small σ,
            // approaching it for large σ.
            assert!(
                var <= sigma * sigma * 1.03 && var > sigma * sigma * 0.8,
                "σ={sigma}: var {var} vs σ²={}",
                sigma * sigma
            );
        }
    }

    #[test]
    fn pmf_ratio_matches_gaussian_kernel() {
        // P[Y=1]/P[Y=0] should equal exp(-1/(2σ²)).
        let sigma = 1.2;
        let mut r = rng(3);
        let n = 400_000;
        let mut count0 = 0u32;
        let mut count1 = 0u32;
        for _ in 0..n {
            match sample_discrete_gaussian(&mut r, sigma) {
                0 => count0 += 1,
                1 => count1 += 1,
                _ => {}
            }
        }
        let got = f64::from(count1) / f64::from(count0);
        let want = (-1.0 / (2.0 * sigma * sigma)).exp();
        assert!((got - want).abs() < 0.02, "ratio {got}, want {want}");
    }

    #[test]
    fn releases_are_integers() {
        let m = DiscreteGaussianMechanism::from_sigma(
            1.0,
            Sensitivity::new(4.0),
            Delta::new(1e-5),
        );
        let mut r = rng(4);
        for _ in 0..100 {
            let v = m.release(&mut r, 4.0);
            assert_eq!(v, v.round(), "release {v} is not an integer");
        }
    }

    #[test]
    fn epsilon_matches_continuous_gaussian() {
        let sens = Sensitivity::new(4.0);
        let delta = Delta::new(1e-5);
        let disc = DiscreteGaussianMechanism::from_sigma(2.0, sens, delta);
        let cont =
            crate::mechanisms::gaussian::GaussianMechanism::from_sigma(2.0, sens, delta);
        assert!((disc.epsilon().value() - cont.epsilon().value()).abs() < 1e-9);
    }

    #[test]
    fn empirical_std_close_to_sigma() {
        let m = DiscreteGaussianMechanism::from_sigma(
            2.0,
            Sensitivity::new(4.0),
            Delta::new(1e-5),
        );
        let mut r = rng(5);
        let n = 100_000;
        let mean_sq: f64 = (0..n)
            .map(|_| {
                let v = m.release(&mut r, 0.0);
                v * v
            })
            .sum::<f64>()
            / n as f64;
        let std = mean_sq.sqrt();
        assert!((std - 2.0).abs() < 0.05, "std {std}");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        let mut r = rng(6);
        let _ = sample_discrete_gaussian(&mut r, 0.0);
    }
}
