//! k-ary randomized response for multiple-choice questions.
//!
//! §3.1 of the paper notes the obfuscation approach "can be applied to
//! other question types (e.g., multiple-choice questions) in which the
//! response set is countable". The canonical local-DP mechanism for a
//! categorical answer with `k` choices is generalized randomized response:
//! report the true choice with probability `p = eᵉ / (eᵉ + k − 1)`, and
//! each other choice with probability `q = 1 / (eᵉ + k − 1)`.
//!
//! The module also carries the unbiased frequency estimator that inverts
//! the perturbation on the server side.

use crate::params::{Delta, Epsilon, PrivacyLoss};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Generalized (k-ary) randomized response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    k: usize,
    epsilon: Epsilon,
    p_truth: f64,
}

impl RandomizedResponse {
    /// Creates a k-ary randomized-response mechanism at privacy level ε.
    ///
    /// # Panics
    /// Panics if `k < 2` (a one-option question carries no information to
    /// protect) or if `epsilon` is zero or infinite.
    pub fn new(k: usize, epsilon: Epsilon) -> RandomizedResponse {
        assert!(k >= 2, "randomized response needs at least 2 choices, got {k}");
        let eps = epsilon.value();
        assert!(
            eps > 0.0 && eps.is_finite(),
            "randomized response requires finite positive epsilon, got {eps}"
        );
        let e = eps.exp();
        RandomizedResponse {
            k,
            epsilon,
            p_truth: e / (e + k as f64 - 1.0),
        }
    }

    /// Number of answer choices.
    pub fn choices(&self) -> usize {
        self.k
    }

    /// Probability of reporting the true choice.
    pub fn p_truth(&self) -> f64 {
        self.p_truth
    }

    /// Probability of reporting any one specific *other* choice.
    pub fn p_other(&self) -> f64 {
        (1.0 - self.p_truth) / (self.k as f64 - 1.0)
    }

    /// The privacy loss of one invocation: pure ε-LDP.
    pub fn privacy_loss(&self) -> PrivacyLoss {
        PrivacyLoss {
            epsilon: self.epsilon,
            delta: Delta::ZERO,
        }
    }

    /// Perturbs a true choice index.
    ///
    /// # Panics
    /// Panics if `choice >= k`.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, choice: usize) -> usize {
        assert!(choice < self.k, "choice {choice} out of range 0..{}", self.k);
        if rng.gen_bool(self.p_truth) {
            choice
        } else {
            // Pick uniformly among the k−1 other choices.
            let mut other = rng.gen_range(0..self.k - 1);
            if other >= choice {
                other += 1;
            }
            other
        }
    }

    /// Unbiased estimate of the true per-choice frequencies from observed
    /// (perturbed) counts.
    ///
    /// If `n_v` is the observed count of choice `v` out of `n` reports, the
    /// unbiased estimate of the true count is `(n_v − n·q) / (p − q)`.
    /// Estimates are *not* clipped to `[0, n]`; callers that need proper
    /// frequencies can post-process.
    ///
    /// # Panics
    /// Panics if `observed.len() != k`.
    pub fn estimate_frequencies(&self, observed: &[u64]) -> Vec<f64> {
        assert_eq!(
            observed.len(),
            self.k,
            "observed histogram has {} bins, mechanism has {}",
            observed.len(),
            self.k
        );
        let n: u64 = observed.iter().sum();
        let q = self.p_other();
        let denom = self.p_truth - q;
        observed
            .iter()
            .map(|&c| (c as f64 - n as f64 * q) / denom)
            .collect()
    }

    /// Standard deviation of the count estimate for one choice, at `n`
    /// reports with true frequency `f` — used for utility prediction.
    pub fn estimate_std(&self, n: usize, f: f64) -> f64 {
        let p = self.p_truth;
        let q = self.p_other();
        // Report probability for this choice:
        let r = f * p + (1.0 - f) * q;
        (n as f64 * r * (1.0 - r)).sqrt() / (p - q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn truth_probability_formula() {
        let rr = RandomizedResponse::new(4, Epsilon::new(std::f64::consts::LN_2));
        // eᵉ = 2, k = 4: p = 2/(2+3) = 0.4, q = 0.6/3 = 0.2, ratio p/q = eᵉ.
        assert!((rr.p_truth() - 0.4).abs() < 1e-12);
        assert!((rr.p_other() - 0.2).abs() < 1e-12);
        assert!((rr.p_truth() / rr.p_other() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn likelihood_ratio_is_exactly_exp_epsilon() {
        for k in [2, 3, 5, 10] {
            for eps in [0.1, 1.0, 3.0] {
                let rr = RandomizedResponse::new(k, Epsilon::new(eps));
                let ratio = rr.p_truth() / rr.p_other();
                assert!(
                    (ratio - eps.exp()).abs() < 1e-9,
                    "k={k} eps={eps}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let rr = RandomizedResponse::new(7, Epsilon::new(1.3));
        let total = rr.p_truth() + 6.0 * rr.p_other();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perturb_respects_marginals() {
        let rr = RandomizedResponse::new(3, Epsilon::new(1.0));
        let mut rng = ChaCha20Rng::seed_from_u64(33);
        let n = 300_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[rr.perturb(&mut rng, 1)] += 1;
        }
        let f_truth = counts[1] as f64 / n as f64;
        let f_other = counts[0] as f64 / n as f64;
        assert!((f_truth - rr.p_truth()).abs() < 0.005, "{f_truth}");
        assert!((f_other - rr.p_other()).abs() < 0.005, "{f_other}");
    }

    #[test]
    fn frequency_estimator_is_unbiased() {
        let rr = RandomizedResponse::new(4, Epsilon::new(1.5));
        let mut rng = ChaCha20Rng::seed_from_u64(34);
        // True distribution over 4 choices:
        let truth = [0.5, 0.25, 0.15, 0.10];
        let n = 200_000usize;
        let mut observed = [0u64; 4];
        for i in 0..n {
            let u = i as f64 / n as f64;
            let true_choice = match u {
                u if u < 0.5 => 0,
                u if u < 0.75 => 1,
                u if u < 0.90 => 2,
                _ => 3,
            };
            observed[rr.perturb(&mut rng, true_choice)] += 1;
        }
        let est = rr.estimate_frequencies(&observed);
        for (i, &t) in truth.iter().enumerate() {
            let f = est[i] / n as f64;
            assert!((f - t).abs() < 0.01, "choice {i}: est {f}, true {t}");
        }
    }

    #[test]
    fn estimate_std_decreases_with_epsilon() {
        let lo = RandomizedResponse::new(4, Epsilon::new(0.5)).estimate_std(1000, 0.25);
        let hi = RandomizedResponse::new(4, Epsilon::new(3.0)).estimate_std(1000, 0.25);
        assert!(lo > hi, "std at eps=0.5 ({lo}) should exceed eps=3 ({hi})");
    }

    #[test]
    #[should_panic(expected = "at least 2 choices")]
    fn rejects_degenerate_k() {
        let _ = RandomizedResponse::new(1, Epsilon::new(1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn perturb_rejects_bad_choice() {
        let rr = RandomizedResponse::new(3, Epsilon::new(1.0));
        let mut rng = ChaCha20Rng::seed_from_u64(35);
        let _ = rr.perturb(&mut rng, 3);
    }
}
