//! The exponential mechanism over a countable response set.
//!
//! Used by the extension experiments to obfuscate *ordinal* answers (e.g. a
//! 1–5 rating treated as categories where adjacent answers are "closer"):
//! instead of additive noise, the reported answer is sampled with
//! probability ∝ exp(ε · score / 2Δ), where the score rewards answers near
//! the truth. Implemented with the Gumbel-max trick, which samples the
//! exact exponential-mechanism distribution without normalizing.

use crate::params::{Delta, Epsilon, PrivacyLoss};
use crate::sampling;
use rand::Rng;

/// Exponential mechanism over the discrete set `0..n` with a caller-supplied
/// score function.
#[derive(Debug, Clone)]
pub struct ExponentialMechanism {
    epsilon: Epsilon,
    score_sensitivity: f64,
}

impl ExponentialMechanism {
    /// Creates an exponential mechanism at privacy level ε for a score
    /// function of the given sensitivity (max change in any candidate's
    /// score when one individual's data changes).
    ///
    /// # Panics
    /// Panics if `epsilon` is zero/infinite or `score_sensitivity` is not
    /// strictly positive and finite.
    pub fn new(epsilon: Epsilon, score_sensitivity: f64) -> ExponentialMechanism {
        let eps = epsilon.value();
        assert!(
            eps > 0.0 && eps.is_finite(),
            "exponential mechanism requires finite positive epsilon, got {eps}"
        );
        assert!(
            score_sensitivity > 0.0 && score_sensitivity.is_finite(),
            "score sensitivity must be positive and finite, got {score_sensitivity}"
        );
        ExponentialMechanism {
            epsilon,
            score_sensitivity,
        }
    }

    /// The privacy loss of one invocation: pure ε-DP.
    pub fn privacy_loss(&self) -> PrivacyLoss {
        PrivacyLoss {
            epsilon: self.epsilon,
            delta: Delta::ZERO,
        }
    }

    /// Selects one candidate index given per-candidate scores, via
    /// Gumbel-max: `argmax(ε·score/(2Δ) + G_i)` with i.i.d. standard
    /// Gumbel noise samples exactly from the exponential-mechanism
    /// distribution.
    ///
    /// # Panics
    /// Panics if `scores` is empty or contains non-finite values.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R, scores: &[f64]) -> usize {
        assert!(!scores.is_empty(), "cannot select from an empty candidate set");
        let coeff = self.epsilon.value() / (2.0 * self.score_sensitivity);
        let mut best = 0;
        let mut best_key = f64::NEG_INFINITY;
        for (i, &s) in scores.iter().enumerate() {
            assert!(s.is_finite(), "score {i} is not finite: {s}");
            let key = coeff * s + sampling::gumbel(rng);
            if key > best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// The exact selection probabilities (normalized softmax), exposed for
    /// tests and utility prediction.
    pub fn probabilities(&self, scores: &[f64]) -> Vec<f64> {
        assert!(!scores.is_empty());
        let coeff = self.epsilon.value() / (2.0 * self.score_sensitivity);
        // Stabilize the softmax against overflow.
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = scores.iter().map(|&s| (coeff * (s - max)).exp()).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn probabilities_sum_to_one_and_order_by_score() {
        let m = ExponentialMechanism::new(Epsilon::new(1.0), 1.0);
        let p = m.probabilities(&[0.0, 1.0, 2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn gumbel_max_matches_softmax() {
        let m = ExponentialMechanism::new(Epsilon::new(2.0), 1.0);
        let scores = [0.0, 0.5, 1.5, 1.0];
        let want = m.probabilities(&scores);
        let mut rng = ChaCha20Rng::seed_from_u64(44);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[m.select(&mut rng, &scores)] += 1;
        }
        for i in 0..4 {
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - want[i]).abs() < 0.006,
                "candidate {i}: got {got}, want {}",
                want[i]
            );
        }
    }

    #[test]
    fn high_epsilon_concentrates_on_argmax() {
        let m = ExponentialMechanism::new(Epsilon::new(50.0), 1.0);
        let p = m.probabilities(&[0.0, 1.0, 5.0]);
        assert!(p[2] > 0.999, "p = {p:?}");
    }

    #[test]
    fn softmax_is_overflow_safe() {
        let m = ExponentialMechanism::new(Epsilon::new(10.0), 1.0);
        let p = m.probabilities(&[1e6, 1e6 + 1.0]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty candidate set")]
    fn select_rejects_empty() {
        let m = ExponentialMechanism::new(Epsilon::new(1.0), 1.0);
        let mut rng = ChaCha20Rng::seed_from_u64(45);
        let _ = m.select(&mut rng, &[]);
    }
}
