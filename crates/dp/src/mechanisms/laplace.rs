//! The Laplace mechanism — pure (ε, 0)-DP baseline.
//!
//! Loki ships Gaussian noise because bell-shaped noise was judged easier to
//! explain to survey takers (§3.2, "users could easily see how the mechanism
//! operated"), but the Laplace mechanism gives pure DP at the same task and
//! is the standard baseline for the utility comparisons in EXP-5.

use super::Mechanism;
use crate::params::{Delta, Epsilon, PrivacyLoss};
use crate::sampling;
use crate::sensitivity::Sensitivity;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Additive `Laplace(0, Δ/ε)` noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaplaceMechanism {
    scale: f64,
    epsilon: Epsilon,
}

impl LaplaceMechanism {
    /// Calibrates Laplace noise for the given sensitivity and ε.
    ///
    /// # Panics
    /// Panics if `epsilon` is zero or infinite.
    pub fn new(sensitivity: Sensitivity, epsilon: Epsilon) -> LaplaceMechanism {
        let eps = epsilon.value();
        assert!(
            eps > 0.0 && eps.is_finite(),
            "Laplace mechanism requires finite positive epsilon, got {eps}"
        );
        LaplaceMechanism {
            scale: sensitivity.value() / eps,
            epsilon,
        }
    }

    /// The noise scale parameter `b = Δ/ε`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Mechanism for LaplaceMechanism {
    fn privacy_loss(&self) -> PrivacyLoss {
        PrivacyLoss {
            epsilon: self.epsilon,
            delta: Delta::ZERO,
        }
    }

    fn release<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        sampling::laplace(rng, value, self.scale)
    }

    fn noise_std(&self) -> Option<f64> {
        // Var[Laplace(0, b)] = 2b².
        Some(self.scale * std::f64::consts::SQRT_2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(Sensitivity::new(4.0), Epsilon::new(2.0));
        assert_eq!(m.scale(), 2.0);
    }

    #[test]
    fn pure_dp_has_zero_delta() {
        let m = LaplaceMechanism::new(Sensitivity::new(1.0), Epsilon::new(0.5));
        assert_eq!(m.privacy_loss().delta, Delta::ZERO);
        assert_eq!(m.privacy_loss().epsilon, Epsilon::new(0.5));
    }

    #[test]
    #[should_panic(expected = "finite positive epsilon")]
    fn rejects_zero_epsilon() {
        let _ = LaplaceMechanism::new(Sensitivity::new(1.0), Epsilon::new(0.0));
    }

    #[test]
    fn empirical_privacy_ratio_bounded() {
        // Sample the released value for two adjacent inputs (distance =
        // sensitivity) and check the histogram likelihood ratio respects eᵉ
        // on a coarse grid — a smoke test that the noise really is Laplace
        // with the right scale.
        let eps = 1.0;
        let m = LaplaceMechanism::new(Sensitivity::new(1.0), Epsilon::new(eps));
        let mut rng = ChaCha20Rng::seed_from_u64(21);
        let n = 400_000;
        let bins = 40;
        let range = (-6.0, 7.0);
        let width = (range.1 - range.0) / bins as f64;
        let mut h0 = vec![0u32; bins];
        let mut h1 = vec![0u32; bins];
        for _ in 0..n {
            let x0 = m.release(&mut rng, 0.0);
            let x1 = m.release(&mut rng, 1.0);
            for (x, h) in [(x0, &mut h0), (x1, &mut h1)] {
                let idx = ((x - range.0) / width).floor();
                if idx >= 0.0 && (idx as usize) < bins {
                    h[idx as usize] += 1;
                }
            }
        }
        // Only compare well-populated bins; sampling noise swamps the tails.
        for i in 0..bins {
            if h0[i] > 2_000 && h1[i] > 2_000 {
                let ratio = f64::from(h0[i]) / f64::from(h1[i]);
                assert!(
                    ratio < (eps + 0.25).exp() && ratio > (-(eps + 0.25)).exp(),
                    "bin {i}: likelihood ratio {ratio} violates e^{eps}"
                );
            }
        }
    }
}
