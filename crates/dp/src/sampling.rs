//! Deterministic noise sampling.
//!
//! `rand` (without `rand_distr`) only provides uniform primitives, so the
//! classical transforms live here:
//!
//! * [`standard_normal`] — Marsaglia polar method (exact, rejection-based);
//! * [`gaussian`] — scaled/shifted standard normal;
//! * [`laplace`] — inverse-CDF transform;
//! * [`exponential`] — inverse-CDF transform;
//! * [`gumbel`] — used by the exponential mechanism's Gumbel-max trick.
//!
//! Every function takes `&mut impl Rng`; pair with a seeded
//! [`rand_chacha::ChaCha20Rng`] for reproducible experiments.

use rand::Rng;

/// Draws one standard normal variate `N(0, 1)` via the Marsaglia polar
/// method.
///
/// The polar method is rejection-based (acceptance probability π/4 per
/// pair) but exact: the output distribution is a true normal, not an
/// approximation, which keeps the differential-privacy guarantees of the
/// Gaussian mechanism honest.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws one `N(mean, sigma²)` variate.
///
/// # Panics
/// Panics if `sigma` is negative or NaN. `sigma == 0.0` returns `mean`
/// exactly (the "no privacy" degenerate case).
// The zero-sigma comparison is against the literal sentinel, not a
// computed value; see the doc comment.
#[allow(clippy::float_cmp)]
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(
        sigma >= 0.0 && !sigma.is_nan(),
        "sigma must be non-negative, got {sigma}"
    );
    // Exact comparison against the literal zero sentinel (the documented
    // degenerate case), not against a composed budget value.
    // lint:allow float-eq-budget
    if sigma == 0.0 {
        return mean;
    }
    mean + sigma * standard_normal(rng)
}

/// Draws one `Laplace(mean, scale)` variate via inverse CDF.
///
/// # Panics
/// Panics if `scale` is negative or NaN. `scale == 0.0` returns `mean`.
// The zero-scale comparison is against the literal sentinel, not a
// computed value; see the doc comment.
#[allow(clippy::float_cmp)]
pub fn laplace<R: Rng + ?Sized>(rng: &mut R, mean: f64, scale: f64) -> f64 {
    assert!(
        scale >= 0.0 && !scale.is_nan(),
        "scale must be non-negative, got {scale}"
    );
    if scale == 0.0 {
        return mean;
    }
    // u uniform on (-0.5, 0.5); ln(1 - 2|u|) is finite because |u| < 0.5.
    let u: f64 = rng.gen_range(-0.5..0.5);
    mean - scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Draws one `Exp(rate)` variate (mean `1/rate`).
///
/// # Panics
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive, got {rate}");
    let u: f64 = rng.gen_range(0.0..1.0);
    // 1 - u is in (0, 1]; ln of it is finite or 0.
    -(1.0 - u).ln() / rate
}

/// Draws one standard Gumbel variate (location 0, scale 1).
///
/// Used for the Gumbel-max implementation of the exponential mechanism:
/// `argmax(score_i / (2Δ/ε) + Gumbel_i)` samples exactly from the
/// exponential-mechanism distribution.
pub fn gumbel<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -(-u.ln()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn rng(seed: u64) -> ChaCha20Rng {
        ChaCha20Rng::seed_from_u64(seed)
    }

    /// Sample moments of `n` draws.
    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(1);
        let samples: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut r)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn standard_normal_tail_mass() {
        // P(|Z| > 1.96) ≈ 0.05
        let mut r = rng(2);
        let n = 100_000;
        let tail = (0..n)
            .filter(|_| standard_normal(&mut r).abs() > 1.96)
            .count() as f64
            / n as f64;
        assert!((tail - 0.05).abs() < 0.005, "tail mass {tail}");
    }

    #[test]
    fn gaussian_scales_and_shifts() {
        let mut r = rng(3);
        let samples: Vec<f64> = (0..100_000).map(|_| gaussian(&mut r, 3.0, 2.0)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gaussian_zero_sigma_is_identity() {
        let mut r = rng(4);
        assert_eq!(gaussian(&mut r, 4.25, 0.0), 4.25);
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn gaussian_rejects_negative_sigma() {
        let mut r = rng(5);
        let _ = gaussian(&mut r, 0.0, -1.0);
    }

    #[test]
    fn laplace_moments() {
        // Laplace(0, b): mean 0, variance 2b².
        let mut r = rng(6);
        let b = 1.5;
        let samples: Vec<f64> = (0..200_000).map(|_| laplace(&mut r, 0.0, b)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 2.0 * b * b).abs() < 0.1, "var {var}");
    }

    #[test]
    fn laplace_median_is_mean() {
        let mut r = rng(7);
        let n = 100_000;
        let above = (0..n)
            .filter(|_| laplace(&mut r, 10.0, 2.0) > 10.0)
            .count() as f64
            / n as f64;
        assert!((above - 0.5).abs() < 0.01, "P(X > mean) = {above}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng(8);
        let rate = 0.5;
        let samples: Vec<f64> = (0..200_000).map(|_| exponential(&mut r, rate)).collect();
        let (mean, _) = moments(&samples);
        assert!((mean - 2.0).abs() < 0.03, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gumbel_mean_is_euler_mascheroni() {
        let mut r = rng(9);
        let samples: Vec<f64> = (0..200_000).map(|_| gumbel(&mut r)).collect();
        let (mean, var) = moments(&samples);
        const EULER: f64 = 0.577_215_664_901_532_9;
        let want_var = std::f64::consts::PI.powi(2) / 6.0;
        assert!((mean - EULER).abs() < 0.01, "mean {mean}");
        assert!((var - want_var).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_replay() {
        let a: Vec<f64> = {
            let mut r = rng(42);
            (0..32).map(|_| standard_normal(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(42);
            (0..32).map(|_| standard_normal(&mut r)).collect()
        };
        assert_eq!(a, b, "same seed must replay the same noise stream");
    }
}
