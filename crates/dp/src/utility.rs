//! Utility prediction: how accurate is an aggregate computed from
//! obfuscated responses?
//!
//! Fig. 2 of the paper shows the deviation of per-privacy-bin means from
//! the overall mean; §3.2 observes the deviation grows when "fewer users
//! are assigned to the bin, particularly for higher privacy bins". These
//! are exactly the `σ_total/√n` predictions below, which EXP-3/EXP-5
//! validate empirically.

use crate::special::normal_quantile;

/// Predicted standard error of the mean of `n` responses, where each
/// response carries intrinsic population spread `pop_std` plus independent
/// additive obfuscation noise of standard deviation `noise_std`.
///
/// # Panics
/// Panics if `n == 0` or either spread is negative.
pub fn mean_standard_error(pop_std: f64, noise_std: f64, n: usize) -> f64 {
    assert!(n > 0, "standard error of an empty sample is undefined");
    assert!(
        pop_std >= 0.0 && noise_std >= 0.0,
        "spreads must be non-negative"
    );
    ((pop_std * pop_std + noise_std * noise_std) / n as f64).sqrt()
}

/// Half-width of a two-sided normal confidence interval for the mean at
/// the given confidence level (e.g. `0.95`).
///
/// # Panics
/// Panics if `confidence` is not in (0, 1) or `n == 0`.
pub fn confidence_halfwidth(pop_std: f64, noise_std: f64, n: usize, confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    z * mean_standard_error(pop_std, noise_std, n)
}

/// The smallest sample size for which the predicted standard error of the
/// mean falls below `target_se`.
///
/// # Panics
/// Panics if `target_se` is not strictly positive.
pub fn required_sample_size(pop_std: f64, noise_std: f64, target_se: f64) -> usize {
    assert!(target_se > 0.0, "target standard error must be positive");
    let var = pop_std * pop_std + noise_std * noise_std;
    (var / (target_se * target_se)).ceil().max(1.0) as usize
}

/// Root-mean-square error predicted for estimating a mean from `n` noisy
/// responses (same as the standard error for an unbiased estimator).
pub fn predicted_rmse(pop_std: f64, noise_std: f64, n: usize) -> f64 {
    mean_standard_error(pop_std, noise_std, n)
}

/// Effective sample size: the number of *noiseless* responses that would
/// give the same standard error as `n` responses obfuscated at
/// `noise_std`, given population spread `pop_std`.
///
/// This is the currency in which a privacy bin's contribution is weighed
/// by the pooled estimator: a high-privacy bin of 30 users may be worth
/// only a handful of raw responses.
///
/// # Panics
/// Panics if `pop_std` is zero (the ratio is undefined: noiseless
/// responses would be exact).
pub fn effective_sample_size(pop_std: f64, noise_std: f64, n: usize) -> f64 {
    assert!(pop_std > 0.0, "effective sample size needs pop_std > 0");
    n as f64 * pop_std * pop_std / (pop_std * pop_std + noise_std * noise_std)
}

/// Inverse-variance weights for pooling bin means: bin `i` with `n_i`
/// responses and noise `noise_std_i` gets weight ∝ `n_i / (pop² + noise²)`.
/// Returned weights sum to 1. Bins with `n == 0` get weight 0.
///
/// # Panics
/// Panics if `bins` is empty or every bin is empty.
pub fn inverse_variance_weights(pop_std: f64, bins: &[(usize, f64)]) -> Vec<f64> {
    assert!(!bins.is_empty(), "no bins to weight");
    let raw: Vec<f64> = bins
        .iter()
        .map(|&(n, noise_std)| {
            if n == 0 {
                0.0
            } else {
                n as f64 / (pop_std * pop_std + noise_std * noise_std)
            }
        })
        .collect();
    let total: f64 = raw.iter().sum();
    assert!(total > 0.0, "all bins are empty");
    raw.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn se_shrinks_with_n_and_grows_with_noise() {
        let a = mean_standard_error(1.0, 0.0, 25);
        let b = mean_standard_error(1.0, 0.0, 100);
        assert!((a - 0.2).abs() < 1e-12);
        assert!((b - 0.1).abs() < 1e-12);
        let c = mean_standard_error(1.0, 2.0, 25);
        assert!(c > a);
        assert!((c - (5.0f64 / 25.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn confidence_halfwidth_95_uses_1_96() {
        let hw = confidence_halfwidth(1.0, 0.0, 100, 0.95);
        assert!((hw - 1.959_963_985 * 0.1).abs() < 1e-6);
    }

    #[test]
    fn required_sample_size_inverts_se() {
        let n = required_sample_size(1.0, 2.0, 0.25);
        // var = 5, need n >= 5/0.0625 = 80.
        assert_eq!(n, 80);
        assert!(mean_standard_error(1.0, 2.0, n) <= 0.25 + 1e-12);
        assert!(mean_standard_error(1.0, 2.0, n - 1) > 0.25);
    }

    #[test]
    fn required_sample_size_is_at_least_one() {
        assert_eq!(required_sample_size(0.01, 0.0, 10.0), 1);
    }

    #[test]
    fn effective_sample_size_halves_when_noise_equals_pop() {
        let ess = effective_sample_size(1.0, 1.0, 100);
        assert!((ess - 50.0).abs() < 1e-12);
        // No noise: ess == n.
        assert!((effective_sample_size(1.0, 0.0, 100) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn weights_sum_to_one_and_favor_low_noise() {
        // Paper's empirical bins: (n, σ) for none/low/medium/high.
        let bins = [(18, 0.0), (32, 0.5), (51, 1.0), (30, 2.0)];
        let w = inverse_variance_weights(1.0, &bins);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Per-response weight must decrease with noise.
        let per: Vec<f64> = w
            .iter()
            .zip(bins.iter())
            .map(|(wi, &(n, _))| wi / n as f64)
            .collect();
        assert!(per[0] > per[1] && per[1] > per[2] && per[2] > per[3], "{per:?}");
    }

    #[test]
    fn empty_bin_gets_zero_weight() {
        let w = inverse_variance_weights(1.0, &[(0, 0.0), (10, 1.0)]);
        assert_eq!(w[0], 0.0);
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "all bins are empty")]
    fn all_empty_bins_panic() {
        let _ = inverse_variance_weights(1.0, &[(0, 0.0), (0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn se_rejects_empty_sample() {
        let _ = mean_standard_error(1.0, 1.0, 0);
    }
}
