//! Composition theorems.
//!
//! The paper's framework "quantif\[ies\] the privacy loss, so that the
//! cumulative privacy loss can be tracked" — cumulative loss is exactly
//! what composition theorems bound. We provide:
//!
//! * [`basic`] — parameters add (heterogeneous mechanisms);
//! * [`advanced`] — the Dwork–Rothblum–Vadhan advanced composition bound
//!   for k-fold composition of a single (ε, δ)-mechanism, which grows as
//!   `O(√k · ε)` rather than `O(k · ε)`;
//! * [`best_known`] — the minimum of basic and advanced at a given slack,
//!   which is what the accountant reports for non-Gaussian entries.
//!
//! Tight Gaussian-specific composition lives in [`crate::rdp`].

use crate::params::{Delta, Epsilon, PrivacyLoss};

/// Basic (sequential) composition of an arbitrary list of losses: ε and δ
/// both add, δ capped at 1.
pub fn basic(losses: &[PrivacyLoss]) -> PrivacyLoss {
    losses
        .iter()
        .fold(PrivacyLoss::ZERO, |acc, &l| acc.compose(l))
}

/// Advanced composition (Dwork, Rothblum, Vadhan 2010; as stated in
/// Dwork & Roth, Thm 3.20): k-fold composition of an (ε, δ)-mechanism is
/// (ε′, kδ + δ′)-DP for any slack δ′ > 0, with
///
/// ```text
/// ε′ = √(2k ln(1/δ′))·ε + k·ε·(eᵉ − 1)
/// ```
///
/// Returns `None` when `epsilon` is infinite (no bound exists).
///
/// # Panics
/// Panics if `slack` is not in (0, 1).
pub fn advanced(per_step: PrivacyLoss, k: u32, slack: f64) -> Option<PrivacyLoss> {
    assert!(
        slack > 0.0 && slack < 1.0,
        "advanced composition slack must be in (0,1), got {slack}"
    );
    if !per_step.is_finite() {
        return None;
    }
    if k == 0 {
        return Some(PrivacyLoss::ZERO);
    }
    let eps = per_step.epsilon.value();
    let kf = f64::from(k);
    let eps_prime = (2.0 * kf * (1.0 / slack).ln()).sqrt() * eps + kf * eps * (eps.exp() - 1.0);
    let delta_prime = (per_step.delta.value() * kf + slack).min(1.0);
    Some(PrivacyLoss {
        epsilon: Epsilon::new(eps_prime),
        delta: Delta::new(delta_prime),
    })
}

/// The better of basic and advanced composition for k-fold repetition of a
/// single mechanism: whichever bound yields smaller ε at its δ.
///
/// For small k, basic composition wins (it carries no `√(ln 1/δ′)` constant
/// and no extra slack); for large k advanced composition's `√k` scaling
/// takes over. The crossover is itself exercised in the tests.
pub fn best_known(per_step: PrivacyLoss, k: u32, slack: f64) -> PrivacyLoss {
    let naive = per_step.compose_k(k);
    match advanced(per_step, k, slack) {
        Some(adv) if adv.epsilon.value() < naive.epsilon.value() => adv,
        _ => naive,
    }
}

/// Privacy amplification by subsampling (Poisson/uniform-without-
/// replacement form, e.g. Balle–Barthe–Gaboardi 2018): if each user is
/// included in a survey with probability `q`, an (ε, δ)-mechanism run on
/// the sample is (ε′, qδ)-DP toward the full population with
///
/// ```text
/// ε′ = ln(1 + q·(eᵉ − 1))
/// ```
///
/// This is what lets Loki's balancing allocator (which surveys only a
/// fraction of the user base per round) charge non-selected users nothing
/// and selected users less than the raw mechanism cost when selection is
/// random.
///
/// Returns `None` for unbounded input loss (nothing to amplify).
///
/// # Panics
/// Panics if `q` is outside `(0, 1]`.
pub fn amplify_by_subsampling(loss: PrivacyLoss, q: f64) -> Option<PrivacyLoss> {
    assert!(q > 0.0 && q <= 1.0, "sampling rate must be in (0,1], got {q}");
    if !loss.is_finite() {
        return None;
    }
    let eps = loss.epsilon.value();
    let eps_prime = (1.0 + q * (eps.exp() - 1.0)).ln();
    Some(PrivacyLoss {
        epsilon: Epsilon::new(eps_prime),
        delta: Delta::new((loss.delta.value() * q).min(1.0)),
    })
}

/// Parallel composition: mechanisms run on *disjoint* sub-populations cost
/// only the maximum loss, not the sum. Loki uses this across privacy bins:
/// each user answers in exactly one bin.
pub fn parallel(losses: &[PrivacyLoss]) -> PrivacyLoss {
    losses.iter().fold(PrivacyLoss::ZERO, |acc, &l| PrivacyLoss {
        epsilon: if l.epsilon.value() > acc.epsilon.value() {
            l.epsilon
        } else {
            acc.epsilon
        },
        delta: if l.delta.value() > acc.delta.value() {
            l.delta
        } else {
            acc.delta
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_adds() {
        let l = PrivacyLoss::new(0.5, 1e-6);
        let total = basic(&[l, l, l]);
        assert!((total.epsilon.value() - 1.5).abs() < 1e-12);
        assert!((total.delta.value() - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn basic_of_empty_is_zero() {
        assert_eq!(basic(&[]), PrivacyLoss::ZERO);
    }

    #[test]
    fn basic_saturates_on_unbounded() {
        let total = basic(&[PrivacyLoss::new(0.5, 0.0), PrivacyLoss::unbounded()]);
        assert!(!total.is_finite());
    }

    #[test]
    fn advanced_beats_basic_for_many_steps() {
        let per = PrivacyLoss::new(0.1, 1e-7);
        let k = 500;
        let naive = per.compose_k(k);
        let adv = advanced(per, k, 1e-5).unwrap();
        assert!(
            adv.epsilon.value() < naive.epsilon.value(),
            "advanced {} !< naive {}",
            adv.epsilon.value(),
            naive.epsilon.value()
        );
    }

    #[test]
    fn basic_beats_advanced_for_few_steps() {
        let per = PrivacyLoss::new(0.1, 1e-7);
        let naive = per.compose_k(2);
        let adv = advanced(per, 2, 1e-5).unwrap();
        assert!(
            naive.epsilon.value() < adv.epsilon.value(),
            "naive {} !< advanced {}",
            naive.epsilon.value(),
            adv.epsilon.value()
        );
    }

    #[test]
    fn best_known_picks_the_winner() {
        let per = PrivacyLoss::new(0.1, 1e-7);
        for k in [1, 2, 10, 100, 1000] {
            let best = best_known(per, k, 1e-5);
            let naive = per.compose_k(k);
            assert!(best.epsilon.value() <= naive.epsilon.value() + 1e-12);
        }
    }

    #[test]
    fn advanced_zero_steps_is_zero() {
        let per = PrivacyLoss::new(0.5, 1e-6);
        assert_eq!(advanced(per, 0, 1e-5).unwrap(), PrivacyLoss::ZERO);
    }

    #[test]
    fn advanced_unbounded_has_no_bound() {
        assert!(advanced(PrivacyLoss::unbounded(), 5, 1e-5).is_none());
    }

    #[test]
    #[should_panic(expected = "slack must be in (0,1)")]
    fn advanced_rejects_bad_slack() {
        let _ = advanced(PrivacyLoss::new(0.1, 0.0), 5, 0.0);
    }

    #[test]
    fn parallel_takes_max() {
        let total = parallel(&[
            PrivacyLoss::new(0.5, 1e-6),
            PrivacyLoss::new(2.0, 1e-7),
            PrivacyLoss::new(1.0, 1e-5),
        ]);
        assert_eq!(total.epsilon.value(), 2.0);
        assert_eq!(total.delta.value(), 1e-5);
    }

    #[test]
    fn subsampling_amplifies() {
        let loss = PrivacyLoss::new(1.0, 1e-5);
        let amp = amplify_by_subsampling(loss, 0.1).unwrap();
        assert!(
            amp.epsilon.value() < loss.epsilon.value(),
            "no amplification: {amp:?}"
        );
        // Exact formula check: ln(1 + 0.1(e−1)) ≈ 0.15803.
        assert!((amp.epsilon.value() - (1.0f64 + 0.1 * (1.0f64.exp() - 1.0)).ln()).abs() < 1e-12);
        assert!((amp.delta.value() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn subsampling_at_q1_is_identity() {
        let loss = PrivacyLoss::new(0.7, 1e-6);
        let amp = amplify_by_subsampling(loss, 1.0).unwrap();
        assert!((amp.epsilon.value() - 0.7).abs() < 1e-12);
        assert_eq!(amp.delta.value(), 1e-6);
    }

    #[test]
    fn subsampling_small_eps_scales_linearly() {
        // For small ε, ε′ ≈ q·ε.
        let loss = PrivacyLoss::new(0.01, 0.0);
        let amp = amplify_by_subsampling(loss, 0.2).unwrap();
        assert!((amp.epsilon.value() - 0.002).abs() < 1e-5);
    }

    #[test]
    fn subsampling_unbounded_is_none() {
        assert!(amplify_by_subsampling(PrivacyLoss::unbounded(), 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0,1]")]
    fn subsampling_rejects_bad_rate() {
        let _ = amplify_by_subsampling(PrivacyLoss::new(1.0, 0.0), 0.0);
    }

    #[test]
    fn advanced_delta_includes_slack_and_k_delta() {
        let per = PrivacyLoss::new(0.1, 1e-6);
        let adv = advanced(per, 10, 1e-5).unwrap();
        assert!((adv.delta.value() - (10.0 * 1e-6 + 1e-5)).abs() < 1e-15);
    }
}
