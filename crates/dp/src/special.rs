//! Special functions needed by the mechanism calibrations.
//!
//! The standard library has no `erf`/`erfc`, and pulling in a numerics crate
//! for two functions is not worth the dependency. We implement:
//!
//! * [`erf`] / [`erfc`] — W. J. Cody's rational Chebyshev approximations
//!   (the SPECFUN `calerf` algorithm used by most libm implementations),
//!   accurate to near machine precision on all three ranges;
//! * [`normal_cdf`] (Φ) and [`normal_sf`] (the survival function 1 − Φ),
//!   expressed through `erfc` to stay accurate in the tails;
//! * [`normal_quantile`] (Φ⁻¹) — Acklam's rational approximation refined by
//!   one Halley step against the accurate CDF.

/// Coefficients for `erf(x)`, `|x| ≤ 0.46875` (Cody range 1).
const ERF_A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_6e2,
    3.774_852_376_853_02e2,
    3.209_377_589_138_469_4e3,
    1.857_777_061_846_031_5e-1,
];
const ERF_B: [f64; 4] = [
    2.360_129_095_234_412_2e1,
    2.440_246_379_344_441_7e2,
    1.282_616_526_077_372_3e3,
    2.844_236_833_439_171e3,
];

/// Coefficients for `erfc(x)`, `0.46875 < x ≤ 4` (Cody range 2).
const ERFC_C: [f64; 9] = [
    5.641_884_969_886_701e-1,
    8.883_149_794_388_377,
    6.611_919_063_714_163e1,
    2.986_351_381_974_001e2,
    8.819_522_212_417_69e2,
    1.712_047_612_634_070_7e3,
    2.051_078_377_826_071_6e3,
    1.230_339_354_797_997_2e3,
    2.153_115_354_744_038_3e-8,
];
const ERFC_D: [f64; 8] = [
    1.574_492_611_070_983_5e1,
    1.176_939_508_913_125e2,
    5.371_811_018_620_099e2,
    1.621_389_574_566_690_3e3,
    3.290_799_235_733_459_7e3,
    4.362_619_090_143_247e3,
    3.439_367_674_143_721_6e3,
    1.230_339_354_803_749_5e3,
];

/// Coefficients for `erfc(x)`, `x > 4` (Cody range 3).
const ERFC_P: [f64; 6] = [
    3.053_266_349_612_323_6e-1,
    3.603_448_999_498_044_5e-1,
    1.257_817_261_112_292_6e-1,
    1.608_378_514_874_227_5e-2,
    6.587_491_615_298_378e-4,
    1.631_538_713_730_209_7e-2,
];
const ERFC_Q: [f64; 5] = [
    2.568_520_192_289_822,
    1.872_952_849_923_460_4,
    5.279_051_029_514_285e-1,
    6.051_834_131_244_132e-2,
    2.335_204_976_268_691_8e-3,
];

/// `1/√π`.
const FRAC_1_SQRT_PI: f64 = 5.641_895_835_477_563e-1;

/// `erf` on the central range `|x| ≤ 0.46875`.
fn erf_small(x: f64) -> f64 {
    let z = x * x;
    let mut xnum = ERF_A[4] * z;
    let mut xden = z;
    for i in 0..3 {
        xnum = (xnum + ERF_A[i]) * z;
        xden = (xden + ERF_B[i]) * z;
    }
    x * (xnum + ERF_A[3]) / (xden + ERF_B[3])
}

/// `erfc` for `y` in `(0.46875, ∞)`; caller guarantees `y > 0.46875`.
fn erfc_large(y: f64) -> f64 {
    if y > 26.6 {
        // erfc underflows f64 past ~26.5.
        return 0.0;
    }
    let result = if y <= 4.0 {
        let mut xnum = ERFC_C[8] * y;
        let mut xden = y;
        for i in 0..7 {
            xnum = (xnum + ERFC_C[i]) * y;
            xden = (xden + ERFC_D[i]) * y;
        }
        (xnum + ERFC_C[7]) / (xden + ERFC_D[7])
    } else {
        let z = 1.0 / (y * y);
        let mut xnum = ERFC_P[5] * z;
        let mut xden = z;
        for i in 0..4 {
            xnum = (xnum + ERFC_P[i]) * z;
            xden = (xden + ERFC_Q[i]) * z;
        }
        let r = z * (xnum + ERFC_P[4]) / (xden + ERFC_Q[4]);
        (FRAC_1_SQRT_PI - r) / y
    };
    // exp(-y²) computed with the split trick to avoid cancellation:
    // y² = ysq² + del with ysq = y rounded to 1/16ths.
    let ysq = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp() * result
}

/// Error function `erf(x)`, accurate to ~1 ulp ×10 everywhere.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= 0.46875 {
        erf_small(x)
    } else {
        let e = 1.0 - erfc_large(y);
        if x < 0.0 {
            -e
        } else {
            e
        }
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, with full relative
/// accuracy in the upper tail (where `1 − erf(x)` would cancel).
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= 0.46875 {
        1.0 - erf_small(x)
    } else if x > 0.0 {
        erfc_large(y)
    } else {
        2.0 - erfc_large(y)
    }
}

/// Standard normal CDF Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function 1 − Φ(x), accurate in the upper tail.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction for the
/// complement otherwise (Numerical Recipes `gammp`). Needed for the
/// chi-square CDF used by the cross-bin consistency test.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
// `x == 0.0` compares against the literal boundary of the domain split,
// not a computed value.
#[allow(clippy::float_cmp)]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// `ln Γ(a)` via the Lanczos approximation (g = 7, n = 9), accurate to
/// ~1e-13 for positive arguments.
pub fn ln_gamma(a: f64) -> f64 {
    assert!(a > 0.0, "ln_gamma requires a > 0, got {a}");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if a < 0.5 {
        // Reflection: Γ(a)Γ(1−a) = π / sin(πa).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * a).sin().ln()
            - ln_gamma(1.0 - a);
    }
    let a = a - 1.0;
    let mut sum = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        sum += c / (a + i as f64);
    }
    let t = a + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (a + 0.5) * t.ln() - t + sum.ln()
}

/// Series form of `P(a, x)` for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction form of `Q(a, x) = 1 − P(a, x)` for `x ≥ a + 1`
/// (modified Lentz).
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// CDF of the chi-square distribution with `k` degrees of freedom.
///
/// # Panics
/// Panics if `k == 0` or `x < 0`.
pub fn chi_square_cdf(x: f64, k: u32) -> f64 {
    assert!(k > 0, "chi-square needs at least 1 degree of freedom");
    gamma_p(f64::from(k) / 2.0, x / 2.0)
}

/// Standard normal quantile Φ⁻¹(p) for `p ∈ (0, 1)`.
///
/// Peter Acklam's rational approximation (max relative error ≈ 1.15e-9)
/// followed by a single Halley refinement step against [`normal_cdf`],
/// bringing the result to near machine accuracy.
///
/// # Panics
/// Panics if `p` is outside the open interval (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from standard tables / high-precision computation.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112_462_916_018_284_9),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (3.0, 0.999_977_909_503_001_4),
    ];

    #[test]
    fn erf_matches_table() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - want).abs() < 1e-12,
                "erf({x}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.3, 2.5] {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn erfc_tail_relative_accuracy() {
        // erfc(5) = 1.5374597944280348e-12 (high-precision reference)
        let got = erfc(5.0);
        let want = 1.537_459_794_428_034_8e-12;
        assert!(
            ((got - want) / want).abs() < 1e-10,
            "erfc(5) rel err too large: got {got}"
        );
        // erfc(10) = 2.0884875837625447e-45
        let got10 = erfc(10.0);
        let want10 = 2.088_487_583_762_544_7e-45;
        assert!(
            ((got10 - want10) / want10).abs() < 1e-9,
            "erfc(10) rel err too large: got {got10}"
        );
    }

    #[test]
    fn erfc_huge_argument_is_zero() {
        assert_eq!(erfc(30.0), 0.0);
        assert!((erfc(-30.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn erfc_continuous_at_range_boundaries() {
        for b in [0.46875, 4.0] {
            let below = erfc(b - 1e-9);
            let above = erfc(b + 1e-9);
            assert!(
                (below - above).abs() < 1e-8,
                "erfc discontinuous at {b}: {below} vs {above}"
            );
        }
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((normal_cdf(-1.0) + normal_cdf(1.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normal_sf_is_complement() {
        for x in [-2.0, -0.5, 0.0, 0.5, 2.0, 4.0] {
            assert!((normal_sf(x) - (1.0 - normal_cdf(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-12,
                "Φ(Φ⁻¹({p})) = {} != {p}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-9);
        assert!(normal_quantile(0.5).abs() < 1e-12);
        assert!((normal_quantile(0.841_344_746_068_542_9) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_rejects_zero() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn gamma_p_limits_and_monotonicity() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!((gamma_p(2.0, 100.0) - 1.0).abs() < 1e-12);
        let mut last = 0.0;
        for i in 1..30 {
            let x = i as f64 * 0.5;
            let p = gamma_p(3.0, x);
            assert!(p >= last, "P(3, {x}) not monotone");
            last = p;
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!(
                (gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "P(1, {x})"
            );
        }
    }

    #[test]
    fn chi_square_cdf_known_values() {
        // χ²(k=1): CDF(3.841) ≈ 0.95; χ²(k=2): CDF(x) = 1 − e^{−x/2};
        // χ²(k=10): CDF(18.307) ≈ 0.95.
        assert!((chi_square_cdf(3.841_458_820_694_124, 1) - 0.95).abs() < 1e-9);
        for x in [0.5, 2.0, 6.0] {
            assert!((chi_square_cdf(x, 2) - (1.0 - (-x / 2.0).exp())).abs() < 1e-12);
        }
        assert!((chi_square_cdf(18.307_038_053_275_146, 10) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn chi_square_cdf_series_and_contfrac_agree_at_boundary() {
        // x near a+1 exercises both branches; they must agree.
        for k in [3u32, 7, 15] {
            let a = f64::from(k) / 2.0;
            let below = gamma_p(a, a + 0.999);
            let above = gamma_p(a, a + 1.001);
            assert!(above > below);
            assert!(above - below < 0.01);
        }
    }
}
