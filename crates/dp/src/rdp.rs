//! Rényi differential privacy (RDP) accountant.
//!
//! The Gaussian mechanism composes *tightly* under Rényi DP (Mironov,
//! CSF 2017): `N(0, σ²)` noise on a sensitivity-Δ query is
//! `(α, α·Δ²/(2σ²))`-RDP for every order α > 1, RDP parameters add under
//! composition, and an RDP guarantee converts back to (ε, δ)-DP via
//!
//! ```text
//! ε(δ) = min over α of  ρ·α + ln(1/δ)/(α−1)
//! ```
//!
//! For a user who answers many Gaussian-obfuscated questions (one per
//! survey question, over many surveys), the RDP bound grows like √k where
//! basic composition grows like k — this is what makes long-horizon ledger
//! tracking useful, and is demonstrated by experiment EXP-6.

use crate::params::{Delta, Epsilon, PrivacyLoss};
use crate::sensitivity::Sensitivity;
use serde::{Deserialize, Serialize};

/// Orders at which the accountant tracks Rényi divergence. The usual
/// practical grid: dense at small orders, sparse at large.
pub const DEFAULT_ORDERS: &[f64] = &[
    1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0, 32.0,
    48.0, 64.0, 128.0, 256.0,
];

/// An RDP accountant: per-order accumulated Rényi divergence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RdpAccountant {
    orders: Vec<f64>,
    /// Accumulated divergence at each order.
    eps_at_order: Vec<f64>,
    /// Set when a non-RDP-trackable (e.g. unobfuscated) release is folded
    /// in: from then on the accountant reports unbounded loss.
    unbounded: bool,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        RdpAccountant::new()
    }
}

impl RdpAccountant {
    /// Creates an accountant over [`DEFAULT_ORDERS`].
    pub fn new() -> RdpAccountant {
        RdpAccountant::with_orders(DEFAULT_ORDERS.to_vec())
    }

    /// Creates an accountant over a custom order grid.
    ///
    /// # Panics
    /// Panics if `orders` is empty or contains an order ≤ 1.
    pub fn with_orders(orders: Vec<f64>) -> RdpAccountant {
        assert!(!orders.is_empty(), "need at least one RDP order");
        assert!(
            orders.iter().all(|&a| a > 1.0 && a.is_finite()),
            "RDP orders must be finite and > 1"
        );
        let n = orders.len();
        RdpAccountant {
            orders,
            eps_at_order: vec![0.0; n],
            unbounded: false,
        }
    }

    /// Folds in one Gaussian release with noise `sigma` on a query of the
    /// given sensitivity: adds `α·Δ²/(2σ²)` at every order.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive.
    pub fn add_gaussian(&mut self, sensitivity: Sensitivity, sigma: f64) {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        let rho = sensitivity.value().powi(2) / (2.0 * sigma * sigma);
        for (i, &alpha) in self.orders.iter().enumerate() {
            self.eps_at_order[i] += alpha * rho;
        }
    }

    /// Folds in `k` identical Gaussian releases at once.
    pub fn add_gaussian_k(&mut self, sensitivity: Sensitivity, sigma: f64, k: u32) {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        let rho = f64::from(k) * sensitivity.value().powi(2) / (2.0 * sigma * sigma);
        for (i, &alpha) in self.orders.iter().enumerate() {
            self.eps_at_order[i] += alpha * rho;
        }
    }

    /// Folds in a generic pure-DP release (e.g. randomized response at ε):
    /// an ε-DP mechanism is `(α, min(α·ε²/2 · something))`… we use the
    /// standard bound RDP(α) ≤ min(αε²/2, ε) which is valid for all α
    /// (Bun & Steinke, Prop. 1.6 gives αε²/2 for ε-DP; ε itself is always
    /// an upper bound since Rényi divergence is at most max-divergence).
    pub fn add_pure(&mut self, epsilon: Epsilon) {
        if epsilon.is_infinite() {
            self.unbounded = true;
            return;
        }
        let eps = epsilon.value();
        for (i, &alpha) in self.orders.iter().enumerate() {
            self.eps_at_order[i] += (alpha * eps * eps / 2.0).min(eps);
        }
    }

    /// Marks the ledger unbounded (an unobfuscated release happened).
    pub fn add_unbounded(&mut self) {
        self.unbounded = true;
    }

    /// Whether an unbounded release has been folded in.
    pub fn is_unbounded(&self) -> bool {
        self.unbounded
    }

    /// Converts the accumulated RDP guarantee to (ε, δ)-DP at the given δ,
    /// minimizing over the order grid.
    ///
    /// # Panics
    /// Panics if `delta` is zero (RDP→DP conversion needs δ > 0).
    pub fn to_dp(&self, delta: Delta) -> PrivacyLoss {
        assert!(delta.value() > 0.0, "RDP conversion requires delta > 0");
        if self.unbounded {
            return PrivacyLoss::unbounded();
        }
        let ln_inv_delta = (1.0 / delta.value()).ln();
        let eps = self
            .orders
            .iter()
            .zip(&self.eps_at_order)
            .map(|(&alpha, &rdp)| rdp + ln_inv_delta / (alpha - 1.0))
            .fold(f64::INFINITY, f64::min);
        PrivacyLoss {
            epsilon: Epsilon::new(eps),
            delta,
        }
    }

    /// Merges another accountant (e.g. per-survey sub-ledgers) into this
    /// one. Both must use the same order grid.
    ///
    /// # Panics
    /// Panics if the order grids differ.
    pub fn merge(&mut self, other: &RdpAccountant) {
        assert_eq!(self.orders, other.orders, "order grids must match");
        for (a, b) in self.eps_at_order.iter_mut().zip(&other.eps_at_order) {
            *a += b;
        }
        self.unbounded |= other.unbounded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition;
    use crate::mechanisms::gaussian::GaussianMechanism;
    use crate::mechanisms::Mechanism;

    fn sens() -> Sensitivity {
        Sensitivity::new(4.0)
    }

    #[test]
    fn empty_accountant_reports_near_zero() {
        let acc = RdpAccountant::new();
        // With no releases the only cost is the conversion overhead term,
        // minimized at the largest order.
        let loss = acc.to_dp(Delta::new(1e-5));
        assert!(loss.epsilon.value() < 0.05, "got {}", loss.epsilon.value());
    }

    #[test]
    fn single_gaussian_close_to_analytic() {
        // One release: RDP conversion is looser than the analytic Gaussian
        // bound but must be within a modest factor.
        let sigma = 4.0;
        let delta = Delta::new(1e-5);
        let mut acc = RdpAccountant::new();
        acc.add_gaussian(sens(), sigma);
        let rdp_eps = acc.to_dp(delta).epsilon.value();
        let tight = GaussianMechanism::from_sigma(sigma, sens(), delta)
            .epsilon()
            .value();
        assert!(rdp_eps >= tight * 0.99, "RDP {rdp_eps} below tight {tight}?");
        assert!(rdp_eps < tight * 3.0, "RDP {rdp_eps} way above tight {tight}");
    }

    #[test]
    fn rdp_beats_basic_composition_for_many_gaussians() {
        let sigma = 4.0;
        let delta = Delta::new(1e-5);
        let k = 200;

        let mut acc = RdpAccountant::new();
        acc.add_gaussian_k(sens(), sigma, k);
        let rdp_eps = acc.to_dp(delta).epsilon.value();

        let per = GaussianMechanism::from_sigma(sigma, sens(), Delta::new(1e-7)).privacy_loss();
        let naive = composition::basic(&vec![per; k as usize]);

        assert!(
            rdp_eps < naive.epsilon.value() / 2.0,
            "RDP {rdp_eps} not far below naive {}",
            naive.epsilon.value()
        );
    }

    #[test]
    fn rdp_grows_like_sqrt_k() {
        // √k scaling holds when per-release ρ is small (high-privacy
        // releases); with large per-release ρ the linear ρ·k term dominates.
        let sigma = 40.0; // ρ = Δ²/2σ² = 0.005 per release
        let delta = Delta::new(1e-5);
        let eps_at = |k: u32| {
            let mut acc = RdpAccountant::new();
            acc.add_gaussian_k(sens(), sigma, k);
            acc.to_dp(delta).epsilon.value()
        };
        let e100 = eps_at(100);
        let e400 = eps_at(400);
        // √(400/100) = 2: the ratio should be near 2, certainly below the
        // linear ratio of 4.
        let ratio = e400 / e100;
        assert!(ratio > 1.5 && ratio < 2.8, "ratio {ratio}");
    }

    #[test]
    fn add_gaussian_k_matches_repeated_add() {
        let mut a = RdpAccountant::new();
        let mut b = RdpAccountant::new();
        a.add_gaussian_k(sens(), 2.0, 7);
        for _ in 0..7 {
            b.add_gaussian(sens(), 2.0);
        }
        let la = a.to_dp(Delta::new(1e-5)).epsilon.value();
        let lb = b.to_dp(Delta::new(1e-5)).epsilon.value();
        assert!((la - lb).abs() < 1e-9);
    }

    #[test]
    fn unbounded_release_poisons_ledger() {
        let mut acc = RdpAccountant::new();
        acc.add_gaussian(sens(), 2.0);
        acc.add_unbounded();
        assert!(acc.is_unbounded());
        assert!(!acc.to_dp(Delta::new(1e-5)).is_finite());
    }

    #[test]
    fn pure_dp_entries_accumulate() {
        let mut acc = RdpAccountant::new();
        acc.add_pure(Epsilon::new(0.5));
        acc.add_pure(Epsilon::new(0.5));
        let two = acc.to_dp(Delta::new(1e-5)).epsilon.value();
        // Must be at most basic composition (1.0) plus conversion overhead…
        assert!(two <= 1.0 + 0.5, "got {two}");
        // …and strictly positive.
        assert!(two > 0.0);
    }

    #[test]
    fn pure_infinite_marks_unbounded() {
        let mut acc = RdpAccountant::new();
        acc.add_pure(Epsilon::INFINITY);
        assert!(acc.is_unbounded());
    }

    #[test]
    fn merge_is_additive() {
        let mut a = RdpAccountant::new();
        a.add_gaussian_k(sens(), 2.0, 3);
        let mut b = RdpAccountant::new();
        b.add_gaussian_k(sens(), 2.0, 5);
        let mut merged = a.clone();
        merged.merge(&b);

        let mut direct = RdpAccountant::new();
        direct.add_gaussian_k(sens(), 2.0, 8);
        assert!(
            (merged.to_dp(Delta::new(1e-5)).epsilon.value()
                - direct.to_dp(Delta::new(1e-5)).epsilon.value())
            .abs()
                < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "order grids must match")]
    fn merge_rejects_mismatched_grids() {
        let mut a = RdpAccountant::with_orders(vec![2.0, 4.0]);
        let b = RdpAccountant::with_orders(vec![2.0, 8.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "orders must be finite and > 1")]
    fn rejects_order_one() {
        let _ = RdpAccountant::with_orders(vec![1.0]);
    }
}
