//! # loki-dp — differential-privacy substrate for the Loki survey platform
//!
//! This crate provides the mathematical machinery behind Loki's at-source
//! obfuscation (Kandappu et al., *Exposing and Mitigating Privacy Loss in
//! Crowdsourced Survey Platforms*, CoNEXT SW'13, §3.1):
//!
//! * **Privacy parameters** — [`params::Epsilon`], [`params::Delta`] and the
//!   combined [`params::PrivacyLoss`], with saturating arithmetic so that a
//!   "no privacy" response is representable as `ε = ∞`.
//! * **Mechanisms** — the Gaussian mechanism (both the classic calibration
//!   and the analytic calibration of Balle & Wang), the Laplace mechanism,
//!   k-ary randomized response and the exponential mechanism
//!   ([`mechanisms`]).
//! * **Composition** — basic and advanced (ε, δ)-composition plus a
//!   Rényi-DP accountant for tight Gaussian composition ([`composition`],
//!   [`rdp`]).
//! * **Accounting** — a per-user privacy ledger recording every obfuscated
//!   response, supporting the paper's goal that "cumulative privacy loss can
//!   be tracked and balanced across the user base" ([`accountant`]).
//! * **Utility analysis** — predicted estimator error as a function of noise
//!   scale and sample size, used to validate the accuracy/privacy trade-off
//!   of Fig. 2 ([`utility`]).
//! * **Sampling** — deterministic, seedable noise sampling built directly on
//!   [`rand`] primitives (Box–Muller / inverse-CDF), so experiments replay
//!   exactly ([`sampling`]).
//!
//! All randomness flows through explicitly-passed RNGs; nothing in this
//! crate reads the OS entropy pool on its own.
//!
//! # Example
//!
//! Calibrate the Gaussian mechanism for a 1–5 rating, release a noisy
//! answer, and account for it:
//!
//! ```
//! use loki_dp::mechanisms::gaussian::GaussianMechanism;
//! use loki_dp::mechanisms::Mechanism;
//! use loki_dp::params::Delta;
//! use loki_dp::accountant::{ReleaseKind, UserLedger};
//! use loki_dp::Sensitivity;
//! use rand::SeedableRng;
//!
//! let mech = GaussianMechanism::from_sigma(
//!     1.0,                                  // the app's "medium" level
//!     Sensitivity::of_bounded_scale(1.0, 5.0),
//!     Delta::new(loki_dp::DEFAULT_DELTA),
//! );
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(7);
//! let noisy = mech.release(&mut rng, 4.0);
//! assert!(noisy.is_finite());
//!
//! let mut ledger = UserLedger::new();
//! ledger.record("survey-1/q0", ReleaseKind::Gaussian { sigma: 1.0, sensitivity: 4.0 });
//! assert!(ledger.basic_loss().is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod composition;
pub mod mechanisms;
pub mod params;
pub mod rdp;
pub mod sampling;
pub mod sensitivity;
pub mod special;
pub mod utility;

pub use accountant::{Accountant, LedgerEntry, UserLedger};
pub use mechanisms::gaussian::GaussianMechanism;
pub use mechanisms::laplace::LaplaceMechanism;
pub use mechanisms::randomized_response::RandomizedResponse;
pub use params::{Delta, Epsilon, PrivacyLoss};
pub use sensitivity::Sensitivity;

/// Default δ used by Loki when converting a noise level to an (ε, δ) pair.
///
/// The trial population in the paper is on the order of 10² users; δ = 10⁻⁵
/// keeps the failure probability far below 1/n for any plausible deployment.
pub const DEFAULT_DELTA: f64 = 1e-5;

#[cfg(test)]
mod tests {
    #[test]
    fn default_delta_is_small() {
        let delta = super::DEFAULT_DELTA;
        assert!(delta < 1e-3, "default delta {delta} too large");
    }
}
