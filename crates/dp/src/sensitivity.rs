//! Query sensitivity.
//!
//! Every mechanism is calibrated to the *sensitivity* of the value being
//! released: how much one individual's contribution can change it. For
//! Loki's at-source setting, each user releases a function of **their own
//! answer only** (local differential privacy), so the sensitivity of a
//! single rating on a bounded scale is simply the width of the scale.

use serde::{Deserialize, Serialize};

/// The L1/L∞ sensitivity of a released scalar (they coincide for scalars).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Sensitivity(f64);

impl Sensitivity {
    /// Creates a sensitivity value.
    ///
    /// # Panics
    /// Panics unless `value` is strictly positive and finite — a query with
    /// zero sensitivity needs no noise, and unbounded sensitivity cannot be
    /// privatized with additive noise.
    pub fn new(value: f64) -> Sensitivity {
        assert!(
            value > 0.0 && value.is_finite(),
            "sensitivity must be positive and finite, got {value}"
        );
        Sensitivity(value)
    }

    /// Sensitivity of a single response on a bounded scale `[lo, hi]`.
    ///
    /// In the local model the adversary compares the released value under
    /// any two possible true answers, so the sensitivity is `hi - lo`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or either bound is non-finite.
    pub fn of_bounded_scale(lo: f64, hi: f64) -> Sensitivity {
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "scale bounds must be finite with hi > lo, got [{lo}, {hi}]"
        );
        Sensitivity(hi - lo)
    }

    /// Sensitivity of a *mean* over `n` bounded responses `[lo, hi]` in the
    /// central model (each individual shifts the mean by at most range/n).
    ///
    /// # Panics
    /// Panics if `n == 0` or the bounds are invalid.
    pub fn of_bounded_mean(lo: f64, hi: f64, n: usize) -> Sensitivity {
        assert!(n > 0, "mean over zero responses has no sensitivity");
        let range = Sensitivity::of_bounded_scale(lo, hi).0;
        Sensitivity(range / n as f64)
    }

    /// Sensitivity of a counting query (one individual changes a count by 1).
    pub fn of_count() -> Sensitivity {
        Sensitivity(1.0)
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Scales the sensitivity (e.g. a sum of `k` answers from one person).
    pub fn scale(self, k: f64) -> Sensitivity {
        Sensitivity::new(self.0 * k)
    }
}

impl std::fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Δ={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_scale_is_range() {
        let s = Sensitivity::of_bounded_scale(1.0, 5.0);
        assert_eq!(s.value(), 4.0);
    }

    #[test]
    #[should_panic(expected = "hi > lo")]
    fn rejects_inverted_bounds() {
        let _ = Sensitivity::of_bounded_scale(5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero() {
        let _ = Sensitivity::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_infinite() {
        let _ = Sensitivity::new(f64::INFINITY);
    }

    #[test]
    fn bounded_mean_shrinks_with_n() {
        let s1 = Sensitivity::of_bounded_mean(1.0, 5.0, 10);
        let s2 = Sensitivity::of_bounded_mean(1.0, 5.0, 100);
        assert!((s1.value() - 0.4).abs() < 1e-12);
        assert!(s2.value() < s1.value());
    }

    #[test]
    #[should_panic(expected = "zero responses")]
    fn bounded_mean_rejects_empty() {
        let _ = Sensitivity::of_bounded_mean(1.0, 5.0, 0);
    }

    #[test]
    fn count_and_scale() {
        assert_eq!(Sensitivity::of_count().value(), 1.0);
        assert_eq!(Sensitivity::of_count().scale(3.0).value(), 3.0);
    }
}
