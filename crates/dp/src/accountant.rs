//! Per-user privacy ledgers and the platform-wide accountant.
//!
//! The paper (§3.1): "the cumulative privacy loss can be tracked and
//! balanced across the user base". This module is that tracker:
//!
//! * [`UserLedger`] — append-only record of every obfuscated release one
//!   user has made, with both a conservative basic-composition total and a
//!   tight RDP total;
//! * [`Accountant`] — thread-safe map of ledgers for the whole platform,
//!   exposing the distribution of cumulative loss that the balancing
//!   allocator (in `loki-core`) consumes.

use crate::params::{Delta, Epsilon, PrivacyLoss};
use crate::rdp::RdpAccountant;
use crate::sensitivity::Sensitivity;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One recorded release in a user's ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Free-form tag identifying the survey/question the release belonged
    /// to (e.g. `"survey-3/q2"`).
    pub tag: String,
    /// How the release was obfuscated.
    pub kind: ReleaseKind,
}

/// The mechanism class of a recorded release — enough information to
/// account for it tightly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReleaseKind {
    /// Gaussian noise with this σ on a query of this sensitivity.
    Gaussian {
        /// Noise standard deviation.
        sigma: f64,
        /// Query sensitivity.
        sensitivity: f64,
    },
    /// A pure ε-DP release (Laplace, randomized response, exponential).
    Pure {
        /// The ε of the release.
        epsilon: f64,
    },
    /// An unobfuscated release — unbounded loss.
    Raw,
}

/// Append-only privacy ledger for a single user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserLedger {
    entries: Vec<LedgerEntry>,
    rdp: RdpAccountant,
    basic: PrivacyLoss,
}

impl Default for UserLedger {
    fn default() -> Self {
        UserLedger::new()
    }
}

impl UserLedger {
    /// Creates an empty ledger.
    pub fn new() -> UserLedger {
        UserLedger {
            entries: Vec::new(),
            rdp: RdpAccountant::new(),
            basic: PrivacyLoss::ZERO,
        }
    }

    /// Records one release.
    ///
    /// For Gaussian entries, the basic total uses the analytic per-release
    /// ε at [`crate::DEFAULT_DELTA`]; the RDP accountant tracks the exact
    /// divergence for tight composition.
    pub fn record(&mut self, tag: impl Into<String>, kind: ReleaseKind) {
        match kind {
            ReleaseKind::Gaussian { sigma, sensitivity } => {
                let sens = Sensitivity::new(sensitivity);
                self.rdp.add_gaussian(sens, sigma);
                let per = crate::mechanisms::gaussian::GaussianMechanism::from_sigma(
                    sigma,
                    sens,
                    Delta::new(crate::DEFAULT_DELTA),
                );
                self.basic = self.basic.compose(PrivacyLoss {
                    epsilon: per.epsilon(),
                    delta: Delta::new(crate::DEFAULT_DELTA),
                });
            }
            ReleaseKind::Pure { epsilon } => {
                let eps = Epsilon::new(epsilon);
                self.rdp.add_pure(eps);
                self.basic = self.basic.compose(PrivacyLoss {
                    epsilon: eps,
                    delta: Delta::ZERO,
                });
            }
            ReleaseKind::Raw => {
                self.rdp.add_unbounded();
                self.basic = self.basic.compose(PrivacyLoss::unbounded());
            }
        }
        self.entries.push(LedgerEntry {
            tag: tag.into(),
            kind,
        });
    }

    /// Number of recorded releases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Conservative cumulative loss by basic composition.
    pub fn basic_loss(&self) -> PrivacyLoss {
        self.basic
    }

    /// Tight cumulative loss via the RDP accountant, stated at `delta`.
    /// For an empty ledger this is exactly zero (no conversion overhead).
    pub fn tight_loss(&self, delta: Delta) -> PrivacyLoss {
        if self.entries.is_empty() {
            return PrivacyLoss::ZERO;
        }
        let rdp = self.rdp.to_dp(delta);
        // The tight bound is never worse than basic composition; report the
        // minimum of the two (both are valid bounds at their own δ; we
        // compare conservatively at the larger δ).
        if self.basic.epsilon.value() < rdp.epsilon.value() {
            PrivacyLoss {
                epsilon: self.basic.epsilon,
                delta: self.basic.delta.saturating_add(delta),
            }
        } else {
            rdp
        }
    }

    /// Whether any raw (unobfuscated) release is recorded.
    pub fn has_raw_release(&self) -> bool {
        self.rdp.is_unbounded()
    }
}

/// Thread-safe platform-wide accountant: one ledger per user.
#[derive(Debug, Default)]
pub struct Accountant {
    ledgers: RwLock<HashMap<String, UserLedger>>,
}

impl Accountant {
    /// Creates an empty accountant.
    pub fn new() -> Accountant {
        Accountant::default()
    }

    /// Records a release for a user, creating the ledger on first use.
    pub fn record(&self, user: &str, tag: impl Into<String>, kind: ReleaseKind) {
        self.ledgers
            .write()
            .entry(user.to_owned())
            .or_default()
            .record(tag, kind);
    }

    /// The tight cumulative loss of one user (zero if unknown).
    pub fn loss_of(&self, user: &str, delta: Delta) -> PrivacyLoss {
        self.ledgers
            .read()
            .get(user)
            .map(|l| l.tight_loss(delta))
            .unwrap_or(PrivacyLoss::ZERO)
    }

    /// Number of releases recorded for one user.
    pub fn releases_of(&self, user: &str) -> usize {
        self.ledgers.read().get(user).map_or(0, UserLedger::len)
    }

    /// Snapshot of one user's ledger.
    pub fn ledger_of(&self, user: &str) -> Option<UserLedger> {
        self.ledgers.read().get(user).cloned()
    }

    /// Number of users with a ledger.
    pub fn user_count(&self) -> usize {
        self.ledgers.read().len()
    }

    /// Cumulative ε of every user (at `delta`), for balancing decisions.
    /// Users with unbounded loss report `f64::INFINITY`.
    pub fn loss_distribution(&self, delta: Delta) -> Vec<(String, f64)> {
        self.ledgers
            .read()
            .iter()
            .map(|(u, l)| (u.clone(), l.tight_loss(delta).epsilon.value()))
            .collect()
    }

    /// The maximum cumulative ε across the user base (0 if empty).
    pub fn max_loss(&self, delta: Delta) -> f64 {
        self.ledgers
            .read()
            .values()
            .map(|l| l.tight_loss(delta).epsilon.value())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_entry() -> ReleaseKind {
        ReleaseKind::Gaussian {
            sigma: 2.0,
            sensitivity: 4.0,
        }
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = UserLedger::new();
        assert!(l.is_empty());
        assert_eq!(l.basic_loss(), PrivacyLoss::ZERO);
        assert_eq!(l.tight_loss(Delta::new(1e-5)), PrivacyLoss::ZERO);
    }

    #[test]
    fn record_accumulates() {
        let mut l = UserLedger::new();
        l.record("s1/q1", gaussian_entry());
        l.record("s1/q2", gaussian_entry());
        assert_eq!(l.len(), 2);
        let one = {
            let mut l1 = UserLedger::new();
            l1.record("x", gaussian_entry());
            l1.basic_loss().epsilon.value()
        };
        assert!((l.basic_loss().epsilon.value() - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn tight_never_exceeds_basic_epsilon() {
        let mut l = UserLedger::new();
        for i in 0..50 {
            l.record(format!("s/q{i}"), gaussian_entry());
        }
        let basic = l.basic_loss().epsilon.value();
        let tight = l.tight_loss(Delta::new(1e-5)).epsilon.value();
        assert!(tight <= basic, "tight {tight} > basic {basic}");
        // And for 50 releases it should be a lot tighter.
        assert!(tight < basic * 0.7, "tight {tight} vs basic {basic}");
    }

    #[test]
    fn raw_release_is_unbounded() {
        let mut l = UserLedger::new();
        l.record("s/q", ReleaseKind::Raw);
        assert!(l.has_raw_release());
        assert!(!l.basic_loss().is_finite());
        assert!(!l.tight_loss(Delta::new(1e-5)).is_finite());
    }

    #[test]
    fn pure_entries_tracked() {
        let mut l = UserLedger::new();
        l.record("s/q", ReleaseKind::Pure { epsilon: 0.5 });
        assert!((l.basic_loss().epsilon.value() - 0.5).abs() < 1e-12);
        assert_eq!(l.basic_loss().delta, Delta::ZERO);
    }

    #[test]
    fn accountant_tracks_users_independently() {
        let acc = Accountant::new();
        acc.record("alice", "s1/q1", gaussian_entry());
        acc.record("alice", "s1/q2", gaussian_entry());
        acc.record("bob", "s1/q1", gaussian_entry());
        assert_eq!(acc.user_count(), 2);
        assert_eq!(acc.releases_of("alice"), 2);
        assert_eq!(acc.releases_of("bob"), 1);
        assert_eq!(acc.releases_of("carol"), 0);
        let d = Delta::new(1e-5);
        assert!(acc.loss_of("alice", d).epsilon.value() > acc.loss_of("bob", d).epsilon.value());
        assert_eq!(acc.loss_of("carol", d), PrivacyLoss::ZERO);
    }

    #[test]
    fn loss_distribution_and_max() {
        let acc = Accountant::new();
        acc.record("a", "t", gaussian_entry());
        acc.record("b", "t", ReleaseKind::Raw);
        let d = Delta::new(1e-5);
        let dist = acc.loss_distribution(d);
        assert_eq!(dist.len(), 2);
        assert!(acc.max_loss(d).is_infinite());
    }

    #[test]
    fn ledger_serde_round_trip() {
        let mut l = UserLedger::new();
        l.record("s/q", gaussian_entry());
        l.record("s/q2", ReleaseKind::Pure { epsilon: 1.0 });
        let json = serde_json::to_string(&l).unwrap();
        let back: UserLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert!(
            (back.basic_loss().epsilon.value() - l.basic_loss().epsilon.value()).abs() < 1e-12
        );
    }

    #[test]
    fn accountant_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Accountant>();
    }
}
