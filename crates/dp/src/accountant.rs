//! Per-user privacy ledgers and the platform-wide accountant.
//!
//! The paper (§3.1): "the cumulative privacy loss can be tracked and
//! balanced across the user base". This module is that tracker:
//!
//! * [`UserLedger`] — append-only record of every obfuscated release one
//!   user has made, with both a conservative basic-composition total and a
//!   tight RDP total;
//! * [`Accountant`] — thread-safe map of ledgers for the whole platform,
//!   exposing the distribution of cumulative loss that the balancing
//!   allocator (in `loki-core`) consumes.

use crate::params::{Delta, Epsilon, PrivacyLoss};
use crate::rdp::RdpAccountant;
use crate::sensitivity::Sensitivity;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One recorded release in a user's ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Free-form tag identifying the survey/question the release belonged
    /// to (e.g. `"survey-3/q2"`).
    pub tag: String,
    /// How the release was obfuscated.
    pub kind: ReleaseKind,
}

/// The mechanism class of a recorded release — enough information to
/// account for it tightly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReleaseKind {
    /// Gaussian noise with this σ on a query of this sensitivity.
    Gaussian {
        /// Noise standard deviation.
        sigma: f64,
        /// Query sensitivity.
        sensitivity: f64,
    },
    /// A pure ε-DP release (Laplace, randomized response, exponential).
    Pure {
        /// The ε of the release.
        epsilon: f64,
    },
    /// An unobfuscated release — unbounded loss.
    Raw,
}

/// Append-only privacy ledger for a single user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserLedger {
    entries: Vec<LedgerEntry>,
    rdp: RdpAccountant,
    basic: PrivacyLoss,
}

impl Default for UserLedger {
    fn default() -> Self {
        UserLedger::new()
    }
}

impl UserLedger {
    /// Creates an empty ledger.
    pub fn new() -> UserLedger {
        UserLedger {
            entries: Vec::new(),
            rdp: RdpAccountant::new(),
            basic: PrivacyLoss::ZERO,
        }
    }

    /// Records one release.
    ///
    /// For Gaussian entries, the basic total uses the analytic per-release
    /// ε at [`crate::DEFAULT_DELTA`]; the RDP accountant tracks the exact
    /// divergence for tight composition.
    pub fn record(&mut self, tag: impl Into<String>, kind: ReleaseKind) {
        match kind {
            ReleaseKind::Gaussian { sigma, sensitivity } => {
                let sens = Sensitivity::new(sensitivity);
                self.rdp.add_gaussian(sens, sigma);
                let per = crate::mechanisms::gaussian::GaussianMechanism::from_sigma(
                    sigma,
                    sens,
                    Delta::new(crate::DEFAULT_DELTA),
                );
                self.basic = self.basic.compose(PrivacyLoss {
                    epsilon: per.epsilon(),
                    delta: Delta::new(crate::DEFAULT_DELTA),
                });
            }
            ReleaseKind::Pure { epsilon } => {
                let eps = Epsilon::new(epsilon);
                self.rdp.add_pure(eps);
                self.basic = self.basic.compose(PrivacyLoss {
                    epsilon: eps,
                    delta: Delta::ZERO,
                });
            }
            ReleaseKind::Raw => {
                self.rdp.add_unbounded();
                self.basic = self.basic.compose(PrivacyLoss::unbounded());
            }
        }
        self.entries.push(LedgerEntry {
            tag: tag.into(),
            kind,
        });
    }

    /// Number of recorded releases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Conservative cumulative loss by basic composition.
    pub fn basic_loss(&self) -> PrivacyLoss {
        self.basic
    }

    /// Tight cumulative loss via the RDP accountant, stated at `delta`.
    /// For an empty ledger this is exactly zero (no conversion overhead).
    pub fn tight_loss(&self, delta: Delta) -> PrivacyLoss {
        if self.entries.is_empty() {
            return PrivacyLoss::ZERO;
        }
        let rdp = self.rdp.to_dp(delta);
        // The tight bound is never worse than basic composition; report the
        // minimum of the two (both are valid bounds at their own δ; we
        // compare conservatively at the larger δ).
        if self.basic.epsilon.value() < rdp.epsilon.value() {
            PrivacyLoss {
                epsilon: self.basic.epsilon,
                delta: self.basic.delta.saturating_add(delta),
            }
        } else {
            rdp
        }
    }

    /// Whether any raw (unobfuscated) release is recorded.
    pub fn has_raw_release(&self) -> bool {
        self.rdp.is_unbounded()
    }
}

/// Number of internal ledger shards. Fixed (not tied to the server's
/// store shard count) so the accountant's concurrency is independent of
/// how the caller partitions surveys; must be a power of two only by
/// convention, the router uses `%` and works for any positive count.
const LEDGER_SHARDS: usize = 16;

/// FNV-1a 64-bit over the user id. Deterministic across processes —
/// unlike `std::collections::hash_map::RandomState` — so shard routing
/// is stable across restart and replay.
fn user_shard(user: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in user.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % LEDGER_SHARDS as u64) as usize
}

/// Maintained counters for one registered near-cap threshold.
///
/// The near-cap SLO ratio ("fraction of users whose tight cumulative ε is
/// at or above 80% of the cap") used to require a [`Accountant::loss_distribution`]
/// walk on every scrape — O(users) with an RDP→DP conversion per ledger.
/// Instead the accountant keeps the two integers the ratio needs and
/// updates them inside [`Accountant::record`], exploiting monotonicity:
/// `tight_loss` never decreases as releases accumulate, so each user
/// crosses a fixed threshold exactly once and a saturating counter stays
/// exact without ever re-examining old ledgers.
///
/// The counters are keyed by the exact `(threshold, delta)` bit patterns
/// they were registered for; a scrape with a different cap re-registers
/// with one exact walk (holding every shard's write lock so no `record`
/// interleaves) and subsequent scrapes are O(1) again.
#[derive(Debug)]
struct NearCapCounters {
    /// Registered ε threshold as IEEE-754 bits; `f64::NAN` bits means
    /// no threshold is registered and `record` skips the bookkeeping.
    threshold_bits: AtomicU64,
    /// Registered δ (bit pattern) at which `tight_loss` is stated.
    delta_bits: AtomicU64,
    /// Users with a ledger.
    users: AtomicUsize,
    /// Users whose tight cumulative ε has reached the threshold
    /// (unbounded ledgers included: +∞ exceeds any finite threshold).
    near: AtomicUsize,
    /// Users whose cumulative loss has become unbounded.
    unbounded: AtomicUsize,
}

impl Default for NearCapCounters {
    fn default() -> Self {
        NearCapCounters {
            threshold_bits: AtomicU64::new(f64::NAN.to_bits()),
            delta_bits: AtomicU64::new(0),
            users: AtomicUsize::new(0),
            near: AtomicUsize::new(0),
            unbounded: AtomicUsize::new(0),
        }
    }
}

/// Snapshot of the near-cap counters for one `(threshold, delta)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NearCapCounts {
    /// Users with a ledger.
    pub users: usize,
    /// Users at or above the ε threshold (unbounded users included).
    pub near: usize,
    /// Users with unbounded cumulative loss.
    pub unbounded: usize,
}

impl NearCapCounts {
    /// `near / users`, or 0 when nobody has a ledger yet.
    pub fn ratio(&self) -> f64 {
        if self.users == 0 {
            0.0
        } else {
            self.near as f64 / self.users as f64
        }
    }
}

/// Thread-safe platform-wide accountant: one ledger per user.
///
/// Internally sharded by `fnv1a(user) % LEDGER_SHARDS` so concurrent
/// `record` calls for unrelated users never contend on one lock; every
/// public method presents the same single-map semantics as before.
#[derive(Debug)]
pub struct Accountant {
    shards: Vec<RwLock<HashMap<String, UserLedger>>>,
    near_cap: NearCapCounters,
}

impl Default for Accountant {
    fn default() -> Self {
        Accountant {
            shards: (0..LEDGER_SHARDS).map(|_| RwLock::default()).collect(),
            near_cap: NearCapCounters::default(),
        }
    }
}

impl Accountant {
    /// Creates an empty accountant.
    pub fn new() -> Accountant {
        Accountant::default()
    }

    fn shard_for(&self, user: &str) -> &RwLock<HashMap<String, UserLedger>> {
        &self.shards[user_shard(user)]
    }

    /// Records a release for a user, creating the ledger on first use.
    ///
    /// When a near-cap threshold is registered (see
    /// [`Accountant::near_cap_counts`]), the crossing bookkeeping happens
    /// here, under the same shard write lock as the ledger mutation, so the
    /// counters are exact: `tight_loss` is monotone in the release
    /// sequence, a user crosses the fixed threshold at most once, and no
    /// concurrent reader can observe the ledger updated but the counters
    /// stale for that user.
    pub fn record(&self, user: &str, tag: impl Into<String>, kind: ReleaseKind) {
        let mut shard = self.shard_for(user).write();
        // Read the registered threshold while holding the shard lock:
        // re-registration takes every shard write lock, so the pair
        // (threshold, delta) cannot change under us.
        let threshold = f64::from_bits(self.near_cap.threshold_bits.load(Ordering::Acquire));
        if threshold.is_nan() {
            shard.entry(user.to_owned()).or_default().record(tag, kind);
            return;
        }
        let delta = Delta::new(f64::from_bits(self.near_cap.delta_bits.load(Ordering::Acquire)));
        let is_new = !shard.contains_key(user);
        let ledger = shard.entry(user.to_owned()).or_default();
        let before = if is_new {
            PrivacyLoss::ZERO
        } else {
            ledger.tight_loss(delta)
        };
        ledger.record(tag, kind);
        let after = ledger.tight_loss(delta);
        if is_new {
            self.near_cap.users.fetch_add(1, Ordering::Relaxed);
        }
        let before_eps = before.epsilon.value();
        let after_eps = after.epsilon.value();
        // "Near" means ε ≥ threshold. A brand-new user starts outside the
        // set even when the threshold is 0 (no ledger ⇒ not counted), so
        // membership before this release is gated on `!is_new`.
        let was_near = !is_new && before_eps >= threshold;
        if !was_near && after_eps >= threshold {
            self.near_cap.near.fetch_add(1, Ordering::Relaxed);
        }
        if before_eps.is_finite() && after_eps.is_infinite() {
            self.near_cap.unbounded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The tight cumulative loss of one user (zero if unknown).
    pub fn loss_of(&self, user: &str, delta: Delta) -> PrivacyLoss {
        self.shard_for(user)
            .read()
            .get(user)
            .map(|l| l.tight_loss(delta))
            .unwrap_or(PrivacyLoss::ZERO)
    }

    /// Number of releases recorded for one user.
    pub fn releases_of(&self, user: &str) -> usize {
        self.shard_for(user).read().get(user).map_or(0, UserLedger::len)
    }

    /// Snapshot of one user's ledger.
    pub fn ledger_of(&self, user: &str) -> Option<UserLedger> {
        self.shard_for(user).read().get(user).cloned()
    }

    /// Number of users with a ledger.
    pub fn user_count(&self) -> usize {
        let mut total = 0usize;
        for shard in &self.shards {
            total = total.saturating_add(shard.read().len());
        }
        total
    }

    /// Counts users per caller-defined bucket (e.g. the server's store
    /// shards) by walking ledger keys only — no loss computation. The
    /// returned vector has `buckets` entries; `bucket_of` values outside
    /// the range are ignored.
    pub fn count_users_by<F: Fn(&str) -> usize>(&self, buckets: usize, bucket_of: F) -> Vec<usize> {
        let mut counts = vec![0usize; buckets];
        for shard in &self.shards {
            for user in shard.read().keys() {
                let b = bucket_of(user);
                if let Some(c) = counts.get_mut(b) {
                    *c = c.saturating_add(1);
                }
            }
        }
        counts
    }

    /// Near-cap counters for `(threshold, delta)`: how many users have a
    /// ledger, how many of them have tight cumulative ε ≥ `threshold`
    /// (unbounded included), and how many are unbounded.
    ///
    /// O(1) once the pair is registered — [`Accountant::record`] maintains
    /// the counters incrementally under the ledger shard lock. The first
    /// call for a new pair (first scrape, or a cap change) re-registers
    /// with one exact walk while holding **every** shard's write lock, so
    /// the walk and the registration are atomic with respect to records.
    ///
    /// `threshold` must be finite (NaN is the "unregistered" sentinel);
    /// non-finite thresholds return zeroed counts without registering.
    pub fn near_cap_counts(&self, threshold: f64, delta: Delta) -> NearCapCounts {
        if !threshold.is_finite() {
            return NearCapCounts {
                users: 0,
                near: 0,
                unbounded: 0,
            };
        }
        let want_thr = threshold.to_bits();
        let want_delta = delta.value().to_bits();
        if self.near_cap.threshold_bits.load(Ordering::Acquire) == want_thr
            // lint:allow float-eq-budget -- u64 to_bits() comparison: exact cache-key match by design
            && self.near_cap.delta_bits.load(Ordering::Acquire) == want_delta
        {
            return NearCapCounts {
                users: self.near_cap.users.load(Ordering::Relaxed),
                near: self.near_cap.near.load(Ordering::Relaxed),
                unbounded: self.near_cap.unbounded.load(Ordering::Relaxed),
            };
        }
        // (Re)registration: hold all shard write locks so no `record` can
        // interleave between the walk and the counter store. Lock order is
        // ascending shard index, matching nothing else (records take one).
        let guards: Vec<_> = self.shards.iter().map(RwLock::write).collect();
        let mut users = 0usize;
        let mut near = 0usize;
        let mut unbounded = 0usize;
        for guard in &guards {
            users = users.saturating_add(guard.len());
            for ledger in guard.values() {
                let eps = ledger.tight_loss(delta).epsilon.value();
                if eps >= threshold {
                    near = near.saturating_add(1);
                }
                if eps.is_infinite() {
                    unbounded = unbounded.saturating_add(1);
                }
            }
        }
        self.near_cap.users.store(users, Ordering::Relaxed);
        self.near_cap.near.store(near, Ordering::Relaxed);
        self.near_cap.unbounded.store(unbounded, Ordering::Relaxed);
        self.near_cap.delta_bits.store(want_delta, Ordering::Release);
        self.near_cap.threshold_bits.store(want_thr, Ordering::Release);
        drop(guards);
        NearCapCounts {
            users,
            near,
            unbounded,
        }
    }

    /// Cumulative ε of every user (at `delta`), for balancing decisions.
    /// Users with unbounded loss report `f64::INFINITY`.
    pub fn loss_distribution(&self, delta: Delta) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .read()
                    .iter()
                    .map(|(u, l)| (u.clone(), l.tight_loss(delta).epsilon.value())),
            );
        }
        out
    }

    /// The maximum cumulative ε across the user base (0 if empty).
    pub fn max_loss(&self, delta: Delta) -> f64 {
        self.shards
            .iter()
            .flat_map(|shard| {
                let guard = shard.read();
                guard
                    .values()
                    .map(|l| l.tight_loss(delta).epsilon.value())
                    .collect::<Vec<f64>>()
            })
            .fold(0.0, f64::max)
    }

    /// Aggregate statistics of cumulative ε across the user base, for
    /// observability scrapes: quantiles and mean are over the finite
    /// ledgers; `max` is `+∞` whenever any user's total is unbounded.
    pub fn epsilon_summary(&self, delta: Delta) -> EpsilonSummary {
        let mut users = 0usize;
        let mut finite: Vec<f64> = Vec::new();
        let mut unbounded = 0usize;
        for shard in &self.shards {
            let ledgers = shard.read();
            users = users.saturating_add(ledgers.len());
            for ledger in ledgers.values() {
                let total = ledger.tight_loss(delta).epsilon.value();
                if total.is_finite() {
                    finite.push(total);
                } else {
                    unbounded = unbounded.saturating_add(1);
                }
            }
        }
        finite.sort_by(f64::total_cmp);
        let mean = if finite.is_empty() {
            0.0
        } else {
            let total: f64 = finite.iter().sum();
            total / finite.len() as f64
        };
        let max = if unbounded > 0 {
            f64::INFINITY
        } else {
            finite.last().copied().unwrap_or(0.0)
        };
        EpsilonSummary {
            users,
            unbounded,
            p50: quantile_sorted(&finite, 0.50),
            p90: quantile_sorted(&finite, 0.90),
            p99: quantile_sorted(&finite, 0.99),
            mean,
            max,
        }
    }
}

/// Aggregate cumulative-ε statistics across the user base (§3.1's
/// platform-wide view of tracked loss).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonSummary {
    /// Users with a ledger.
    pub users: usize,
    /// Users whose cumulative loss is unbounded (a raw release recorded).
    pub unbounded: usize,
    /// Median cumulative ε over finite ledgers (0 if none).
    pub p50: f64,
    /// 90th-percentile cumulative ε over finite ledgers.
    pub p90: f64,
    /// 99th-percentile cumulative ε over finite ledgers.
    pub p99: f64,
    /// Mean cumulative ε over finite ledgers.
    pub mean: f64,
    /// Maximum cumulative ε; `+∞` when any ledger is unbounded.
    pub max: f64,
}

/// Nearest-rank quantile of an ascending-sorted slice (0 when empty).
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.saturating_sub(1).min(sorted.len().saturating_sub(1));
    sorted.get(idx).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_entry() -> ReleaseKind {
        ReleaseKind::Gaussian {
            sigma: 2.0,
            sensitivity: 4.0,
        }
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = UserLedger::new();
        assert!(l.is_empty());
        assert_eq!(l.basic_loss(), PrivacyLoss::ZERO);
        assert_eq!(l.tight_loss(Delta::new(1e-5)), PrivacyLoss::ZERO);
    }

    #[test]
    fn record_accumulates() {
        let mut l = UserLedger::new();
        l.record("s1/q1", gaussian_entry());
        l.record("s1/q2", gaussian_entry());
        assert_eq!(l.len(), 2);
        let one = {
            let mut l1 = UserLedger::new();
            l1.record("x", gaussian_entry());
            l1.basic_loss().epsilon.value()
        };
        assert!((l.basic_loss().epsilon.value() - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn tight_never_exceeds_basic_epsilon() {
        let mut l = UserLedger::new();
        for i in 0..50 {
            l.record(format!("s/q{i}"), gaussian_entry());
        }
        let basic = l.basic_loss().epsilon.value();
        let tight = l.tight_loss(Delta::new(1e-5)).epsilon.value();
        assert!(tight <= basic, "tight {tight} > basic {basic}");
        // And for 50 releases it should be a lot tighter.
        assert!(tight < basic * 0.7, "tight {tight} vs basic {basic}");
    }

    #[test]
    fn raw_release_is_unbounded() {
        let mut l = UserLedger::new();
        l.record("s/q", ReleaseKind::Raw);
        assert!(l.has_raw_release());
        assert!(!l.basic_loss().is_finite());
        assert!(!l.tight_loss(Delta::new(1e-5)).is_finite());
    }

    #[test]
    fn pure_entries_tracked() {
        let mut l = UserLedger::new();
        l.record("s/q", ReleaseKind::Pure { epsilon: 0.5 });
        assert!((l.basic_loss().epsilon.value() - 0.5).abs() < 1e-12);
        assert_eq!(l.basic_loss().delta, Delta::ZERO);
    }

    #[test]
    fn accountant_tracks_users_independently() {
        let acc = Accountant::new();
        acc.record("alice", "s1/q1", gaussian_entry());
        acc.record("alice", "s1/q2", gaussian_entry());
        acc.record("bob", "s1/q1", gaussian_entry());
        assert_eq!(acc.user_count(), 2);
        assert_eq!(acc.releases_of("alice"), 2);
        assert_eq!(acc.releases_of("bob"), 1);
        assert_eq!(acc.releases_of("carol"), 0);
        let d = Delta::new(1e-5);
        assert!(acc.loss_of("alice", d).epsilon.value() > acc.loss_of("bob", d).epsilon.value());
        assert_eq!(acc.loss_of("carol", d), PrivacyLoss::ZERO);
    }

    #[test]
    fn loss_distribution_and_max() {
        let acc = Accountant::new();
        acc.record("a", "t", gaussian_entry());
        acc.record("b", "t", ReleaseKind::Raw);
        let d = Delta::new(1e-5);
        let dist = acc.loss_distribution(d);
        assert_eq!(dist.len(), 2);
        assert!(acc.max_loss(d).is_infinite());
    }

    #[test]
    fn epsilon_summary_statistics() {
        let acc = Accountant::new();
        assert_eq!(acc.epsilon_summary(Delta::new(1e-5)).users, 0);
        assert_eq!(acc.epsilon_summary(Delta::new(1e-5)).max, 0.0);

        // Ten users with 1..=10 pure releases of ε=0.1 each.
        for (i, n) in (1..=10).enumerate() {
            for r in 0..n {
                acc.record(
                    &format!("u{i}"),
                    format!("t{r}"),
                    ReleaseKind::Pure { epsilon: 0.1 },
                );
            }
        }
        let d = Delta::new(1e-5);
        let s = acc.epsilon_summary(d);
        assert_eq!(s.users, 10);
        assert_eq!(s.unbounded, 0);
        assert!((s.mean - 0.55).abs() < 1e-9, "mean = {}", s.mean);
        assert!((s.p50 - 0.5).abs() < 1e-9, "p50 = {}", s.p50);
        assert!((s.p90 - 0.9).abs() < 1e-9, "p90 = {}", s.p90);
        assert!((s.p99 - 1.0).abs() < 1e-9, "p99 = {}", s.p99);
        assert!((s.max - 1.0).abs() < 1e-9, "max = {}", s.max);

        // One raw release flips max to +inf but leaves quantiles finite.
        acc.record("leaker", "t", ReleaseKind::Raw);
        let s = acc.epsilon_summary(d);
        assert_eq!(s.users, 11);
        assert_eq!(s.unbounded, 1);
        assert!(s.max.is_infinite());
        assert!(s.p99.is_finite());
    }

    #[test]
    fn quantile_sorted_nearest_rank() {
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
        assert_eq!(quantile_sorted(&[3.0], 0.99), 3.0);
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 0.5), 2.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
    }

    #[test]
    fn ledger_serde_round_trip() {
        let mut l = UserLedger::new();
        l.record("s/q", gaussian_entry());
        l.record("s/q2", ReleaseKind::Pure { epsilon: 1.0 });
        let json = serde_json::to_string(&l).unwrap();
        let back: UserLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert!(
            (back.basic_loss().epsilon.value() - l.basic_loss().epsilon.value()).abs() < 1e-12
        );
    }

    #[test]
    fn ledger_shard_routing_is_deterministic() {
        // Same user id must hit the same internal shard in any process
        // (restart/replay stability) — pin a few values so a hash change
        // is a conscious decision, not an accident.
        for user in ["alice", "bob", "t0-u63", ""] {
            assert_eq!(user_shard(user), user_shard(&user.to_string()));
            assert!(user_shard(user) < LEDGER_SHARDS);
        }
        assert_eq!(user_shard("alice"), 7);
        assert_eq!(user_shard("bob"), 4);
    }

    #[test]
    fn count_users_by_walks_every_shard() {
        let acc = Accountant::new();
        for i in 0..40 {
            acc.record(&format!("u{i}"), "t", gaussian_entry());
        }
        // Bucket by the same internal router: totals must agree with
        // user_count and out-of-range buckets must be dropped, not panic.
        let counts = acc.count_users_by(LEDGER_SHARDS, user_shard);
        assert_eq!(counts.iter().sum::<usize>(), acc.user_count());
        let none = acc.count_users_by(1, |_| 7);
        assert_eq!(none, vec![0]);
    }

    #[test]
    fn accountant_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Accountant>();
    }

    /// Recomputes what the counters should say via the O(users) walk the
    /// counters replace — the oracle for the incremental path.
    fn recount(acc: &Accountant, threshold: f64, delta: Delta) -> NearCapCounts {
        let dist = acc.loss_distribution(delta);
        NearCapCounts {
            users: dist.len(),
            near: dist.iter().filter(|(_, e)| *e >= threshold).count(),
            unbounded: dist.iter().filter(|(_, e)| e.is_infinite()).count(),
        }
    }

    #[test]
    fn near_cap_counts_track_records_incrementally() {
        let acc = Accountant::new();
        let d = Delta::new(1e-5);
        let thr = 0.25;
        // Register on an empty accountant, then interleave reads and
        // records: every O(1) read must agree with a fresh recount.
        assert_eq!(
            acc.near_cap_counts(thr, d),
            NearCapCounts { users: 0, near: 0, unbounded: 0 }
        );
        for i in 0..8 {
            let user = format!("u{i}");
            for _ in 0..=i {
                acc.record(&user, "t", ReleaseKind::Pure { epsilon: 0.1 });
            }
            assert_eq!(acc.near_cap_counts(thr, d), recount(&acc, thr, d));
        }
        let counts = acc.near_cap_counts(thr, d);
        assert_eq!(counts.users, 8);
        // u0,u1 sit at ε=0.1,0.2 < 0.25; u2..u7 have crossed.
        assert_eq!(counts.near, 6);
        assert_eq!(counts.unbounded, 0);
        assert!((counts.ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn near_cap_counts_registration_walks_existing_ledgers() {
        let acc = Accountant::new();
        let d = Delta::new(1e-5);
        // Records made before any registration must be picked up by the
        // registration walk, not lost.
        acc.record("early", "t", ReleaseKind::Pure { epsilon: 1.0 });
        acc.record("light", "t", ReleaseKind::Pure { epsilon: 0.01 });
        acc.record("leaker", "t", ReleaseKind::Raw);
        let counts = acc.near_cap_counts(0.5, d);
        assert_eq!(counts, recount(&acc, 0.5, d));
        assert_eq!(counts.users, 3);
        assert_eq!(counts.near, 2); // early (1.0) and leaker (∞)
        assert_eq!(counts.unbounded, 1);
    }

    #[test]
    fn near_cap_unbounded_transition_counts_once() {
        let acc = Accountant::new();
        let d = Delta::new(1e-5);
        acc.near_cap_counts(10.0, d);
        acc.record("w", "t", ReleaseKind::Pure { epsilon: 0.1 });
        assert_eq!(acc.near_cap_counts(10.0, d).near, 0);
        acc.record("w", "t", ReleaseKind::Raw);
        let counts = acc.near_cap_counts(10.0, d);
        assert_eq!(counts.near, 1);
        assert_eq!(counts.unbounded, 1);
        // Further raw releases must not double-count the same user.
        acc.record("w", "t", ReleaseKind::Raw);
        acc.record("w", "t", ReleaseKind::Pure { epsilon: 0.1 });
        let counts = acc.near_cap_counts(10.0, d);
        assert_eq!(counts.near, 1);
        assert_eq!(counts.unbounded, 1);
        assert_eq!(counts, recount(&acc, 10.0, d));
    }

    #[test]
    fn near_cap_threshold_change_re_registers_exactly() {
        let acc = Accountant::new();
        let d = Delta::new(1e-5);
        for i in 1..=10 {
            let user = format!("u{i}");
            for _ in 0..i {
                acc.record(&user, "t", ReleaseKind::Pure { epsilon: 0.1 });
            }
        }
        // Different thresholds in sequence: each switch triggers a re-walk
        // and must match the oracle; returning to a prior threshold too.
        for thr in [0.35, 0.85, 0.35, 0.05] {
            assert_eq!(acc.near_cap_counts(thr, d), recount(&acc, thr, d), "thr={thr}");
        }
        // And incremental updates keep working after the last switch.
        acc.record("u1", "t", ReleaseKind::Pure { epsilon: 5.0 });
        assert_eq!(acc.near_cap_counts(0.05, d), recount(&acc, 0.05, d));
    }

    #[test]
    fn near_cap_non_finite_threshold_is_inert() {
        let acc = Accountant::new();
        let d = Delta::new(1e-5);
        acc.record("a", "t", ReleaseKind::Pure { epsilon: 1.0 });
        let zero = NearCapCounts { users: 0, near: 0, unbounded: 0 };
        assert_eq!(acc.near_cap_counts(f64::NAN, d), zero);
        assert_eq!(acc.near_cap_counts(f64::INFINITY, d), zero);
        assert_eq!(zero.ratio(), 0.0);
        // A NaN probe must not have registered anything: a real threshold
        // afterwards still walks correctly.
        assert_eq!(acc.near_cap_counts(0.5, d).near, 1);
    }
}
