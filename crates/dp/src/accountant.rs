//! Per-user privacy ledgers and the platform-wide accountant.
//!
//! The paper (§3.1): "the cumulative privacy loss can be tracked and
//! balanced across the user base". This module is that tracker:
//!
//! * [`UserLedger`] — append-only record of every obfuscated release one
//!   user has made, with both a conservative basic-composition total and a
//!   tight RDP total;
//! * [`Accountant`] — thread-safe map of ledgers for the whole platform,
//!   exposing the distribution of cumulative loss that the balancing
//!   allocator (in `loki-core`) consumes.

use crate::params::{Delta, Epsilon, PrivacyLoss};
use crate::rdp::RdpAccountant;
use crate::sensitivity::Sensitivity;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One recorded release in a user's ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Free-form tag identifying the survey/question the release belonged
    /// to (e.g. `"survey-3/q2"`).
    pub tag: String,
    /// How the release was obfuscated.
    pub kind: ReleaseKind,
}

/// The mechanism class of a recorded release — enough information to
/// account for it tightly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReleaseKind {
    /// Gaussian noise with this σ on a query of this sensitivity.
    Gaussian {
        /// Noise standard deviation.
        sigma: f64,
        /// Query sensitivity.
        sensitivity: f64,
    },
    /// A pure ε-DP release (Laplace, randomized response, exponential).
    Pure {
        /// The ε of the release.
        epsilon: f64,
    },
    /// An unobfuscated release — unbounded loss.
    Raw,
}

/// Append-only privacy ledger for a single user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserLedger {
    entries: Vec<LedgerEntry>,
    rdp: RdpAccountant,
    basic: PrivacyLoss,
}

impl Default for UserLedger {
    fn default() -> Self {
        UserLedger::new()
    }
}

impl UserLedger {
    /// Creates an empty ledger.
    pub fn new() -> UserLedger {
        UserLedger {
            entries: Vec::new(),
            rdp: RdpAccountant::new(),
            basic: PrivacyLoss::ZERO,
        }
    }

    /// Records one release.
    ///
    /// For Gaussian entries, the basic total uses the analytic per-release
    /// ε at [`crate::DEFAULT_DELTA`]; the RDP accountant tracks the exact
    /// divergence for tight composition.
    pub fn record(&mut self, tag: impl Into<String>, kind: ReleaseKind) {
        match kind {
            ReleaseKind::Gaussian { sigma, sensitivity } => {
                let sens = Sensitivity::new(sensitivity);
                self.rdp.add_gaussian(sens, sigma);
                let per = crate::mechanisms::gaussian::GaussianMechanism::from_sigma(
                    sigma,
                    sens,
                    Delta::new(crate::DEFAULT_DELTA),
                );
                self.basic = self.basic.compose(PrivacyLoss {
                    epsilon: per.epsilon(),
                    delta: Delta::new(crate::DEFAULT_DELTA),
                });
            }
            ReleaseKind::Pure { epsilon } => {
                let eps = Epsilon::new(epsilon);
                self.rdp.add_pure(eps);
                self.basic = self.basic.compose(PrivacyLoss {
                    epsilon: eps,
                    delta: Delta::ZERO,
                });
            }
            ReleaseKind::Raw => {
                self.rdp.add_unbounded();
                self.basic = self.basic.compose(PrivacyLoss::unbounded());
            }
        }
        self.entries.push(LedgerEntry {
            tag: tag.into(),
            kind,
        });
    }

    /// Number of recorded releases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Conservative cumulative loss by basic composition.
    pub fn basic_loss(&self) -> PrivacyLoss {
        self.basic
    }

    /// Tight cumulative loss via the RDP accountant, stated at `delta`.
    /// For an empty ledger this is exactly zero (no conversion overhead).
    pub fn tight_loss(&self, delta: Delta) -> PrivacyLoss {
        if self.entries.is_empty() {
            return PrivacyLoss::ZERO;
        }
        let rdp = self.rdp.to_dp(delta);
        // The tight bound is never worse than basic composition; report the
        // minimum of the two (both are valid bounds at their own δ; we
        // compare conservatively at the larger δ).
        if self.basic.epsilon.value() < rdp.epsilon.value() {
            PrivacyLoss {
                epsilon: self.basic.epsilon,
                delta: self.basic.delta.saturating_add(delta),
            }
        } else {
            rdp
        }
    }

    /// Whether any raw (unobfuscated) release is recorded.
    pub fn has_raw_release(&self) -> bool {
        self.rdp.is_unbounded()
    }
}

/// Number of internal ledger shards. Fixed (not tied to the server's
/// store shard count) so the accountant's concurrency is independent of
/// how the caller partitions surveys; must be a power of two only by
/// convention, the router uses `%` and works for any positive count.
const LEDGER_SHARDS: usize = 16;

/// FNV-1a 64-bit over the user id. Deterministic across processes —
/// unlike `std::collections::hash_map::RandomState` — so shard routing
/// is stable across restart and replay.
fn user_shard(user: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in user.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % LEDGER_SHARDS as u64) as usize
}

/// Thread-safe platform-wide accountant: one ledger per user.
///
/// Internally sharded by `fnv1a(user) % LEDGER_SHARDS` so concurrent
/// `record` calls for unrelated users never contend on one lock; every
/// public method presents the same single-map semantics as before.
#[derive(Debug)]
pub struct Accountant {
    shards: Vec<RwLock<HashMap<String, UserLedger>>>,
}

impl Default for Accountant {
    fn default() -> Self {
        Accountant {
            shards: (0..LEDGER_SHARDS).map(|_| RwLock::default()).collect(),
        }
    }
}

impl Accountant {
    /// Creates an empty accountant.
    pub fn new() -> Accountant {
        Accountant::default()
    }

    fn shard_for(&self, user: &str) -> &RwLock<HashMap<String, UserLedger>> {
        &self.shards[user_shard(user)]
    }

    /// Records a release for a user, creating the ledger on first use.
    pub fn record(&self, user: &str, tag: impl Into<String>, kind: ReleaseKind) {
        self.shard_for(user)
            .write()
            .entry(user.to_owned())
            .or_default()
            .record(tag, kind);
    }

    /// The tight cumulative loss of one user (zero if unknown).
    pub fn loss_of(&self, user: &str, delta: Delta) -> PrivacyLoss {
        self.shard_for(user)
            .read()
            .get(user)
            .map(|l| l.tight_loss(delta))
            .unwrap_or(PrivacyLoss::ZERO)
    }

    /// Number of releases recorded for one user.
    pub fn releases_of(&self, user: &str) -> usize {
        self.shard_for(user).read().get(user).map_or(0, UserLedger::len)
    }

    /// Snapshot of one user's ledger.
    pub fn ledger_of(&self, user: &str) -> Option<UserLedger> {
        self.shard_for(user).read().get(user).cloned()
    }

    /// Number of users with a ledger.
    pub fn user_count(&self) -> usize {
        let mut total = 0usize;
        for shard in &self.shards {
            total = total.saturating_add(shard.read().len());
        }
        total
    }

    /// Counts users per caller-defined bucket (e.g. the server's store
    /// shards) by walking ledger keys only — no loss computation. The
    /// returned vector has `buckets` entries; `bucket_of` values outside
    /// the range are ignored.
    pub fn count_users_by<F: Fn(&str) -> usize>(&self, buckets: usize, bucket_of: F) -> Vec<usize> {
        let mut counts = vec![0usize; buckets];
        for shard in &self.shards {
            for user in shard.read().keys() {
                let b = bucket_of(user);
                if let Some(c) = counts.get_mut(b) {
                    *c = c.saturating_add(1);
                }
            }
        }
        counts
    }

    /// Cumulative ε of every user (at `delta`), for balancing decisions.
    /// Users with unbounded loss report `f64::INFINITY`.
    pub fn loss_distribution(&self, delta: Delta) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .read()
                    .iter()
                    .map(|(u, l)| (u.clone(), l.tight_loss(delta).epsilon.value())),
            );
        }
        out
    }

    /// The maximum cumulative ε across the user base (0 if empty).
    pub fn max_loss(&self, delta: Delta) -> f64 {
        self.shards
            .iter()
            .flat_map(|shard| {
                let guard = shard.read();
                guard
                    .values()
                    .map(|l| l.tight_loss(delta).epsilon.value())
                    .collect::<Vec<f64>>()
            })
            .fold(0.0, f64::max)
    }

    /// Aggregate statistics of cumulative ε across the user base, for
    /// observability scrapes: quantiles and mean are over the finite
    /// ledgers; `max` is `+∞` whenever any user's total is unbounded.
    pub fn epsilon_summary(&self, delta: Delta) -> EpsilonSummary {
        let mut users = 0usize;
        let mut finite: Vec<f64> = Vec::new();
        let mut unbounded = 0usize;
        for shard in &self.shards {
            let ledgers = shard.read();
            users = users.saturating_add(ledgers.len());
            for ledger in ledgers.values() {
                let total = ledger.tight_loss(delta).epsilon.value();
                if total.is_finite() {
                    finite.push(total);
                } else {
                    unbounded = unbounded.saturating_add(1);
                }
            }
        }
        finite.sort_by(f64::total_cmp);
        let mean = if finite.is_empty() {
            0.0
        } else {
            let total: f64 = finite.iter().sum();
            total / finite.len() as f64
        };
        let max = if unbounded > 0 {
            f64::INFINITY
        } else {
            finite.last().copied().unwrap_or(0.0)
        };
        EpsilonSummary {
            users,
            unbounded,
            p50: quantile_sorted(&finite, 0.50),
            p90: quantile_sorted(&finite, 0.90),
            p99: quantile_sorted(&finite, 0.99),
            mean,
            max,
        }
    }
}

/// Aggregate cumulative-ε statistics across the user base (§3.1's
/// platform-wide view of tracked loss).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonSummary {
    /// Users with a ledger.
    pub users: usize,
    /// Users whose cumulative loss is unbounded (a raw release recorded).
    pub unbounded: usize,
    /// Median cumulative ε over finite ledgers (0 if none).
    pub p50: f64,
    /// 90th-percentile cumulative ε over finite ledgers.
    pub p90: f64,
    /// 99th-percentile cumulative ε over finite ledgers.
    pub p99: f64,
    /// Mean cumulative ε over finite ledgers.
    pub mean: f64,
    /// Maximum cumulative ε; `+∞` when any ledger is unbounded.
    pub max: f64,
}

/// Nearest-rank quantile of an ascending-sorted slice (0 when empty).
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.saturating_sub(1).min(sorted.len().saturating_sub(1));
    sorted.get(idx).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_entry() -> ReleaseKind {
        ReleaseKind::Gaussian {
            sigma: 2.0,
            sensitivity: 4.0,
        }
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = UserLedger::new();
        assert!(l.is_empty());
        assert_eq!(l.basic_loss(), PrivacyLoss::ZERO);
        assert_eq!(l.tight_loss(Delta::new(1e-5)), PrivacyLoss::ZERO);
    }

    #[test]
    fn record_accumulates() {
        let mut l = UserLedger::new();
        l.record("s1/q1", gaussian_entry());
        l.record("s1/q2", gaussian_entry());
        assert_eq!(l.len(), 2);
        let one = {
            let mut l1 = UserLedger::new();
            l1.record("x", gaussian_entry());
            l1.basic_loss().epsilon.value()
        };
        assert!((l.basic_loss().epsilon.value() - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn tight_never_exceeds_basic_epsilon() {
        let mut l = UserLedger::new();
        for i in 0..50 {
            l.record(format!("s/q{i}"), gaussian_entry());
        }
        let basic = l.basic_loss().epsilon.value();
        let tight = l.tight_loss(Delta::new(1e-5)).epsilon.value();
        assert!(tight <= basic, "tight {tight} > basic {basic}");
        // And for 50 releases it should be a lot tighter.
        assert!(tight < basic * 0.7, "tight {tight} vs basic {basic}");
    }

    #[test]
    fn raw_release_is_unbounded() {
        let mut l = UserLedger::new();
        l.record("s/q", ReleaseKind::Raw);
        assert!(l.has_raw_release());
        assert!(!l.basic_loss().is_finite());
        assert!(!l.tight_loss(Delta::new(1e-5)).is_finite());
    }

    #[test]
    fn pure_entries_tracked() {
        let mut l = UserLedger::new();
        l.record("s/q", ReleaseKind::Pure { epsilon: 0.5 });
        assert!((l.basic_loss().epsilon.value() - 0.5).abs() < 1e-12);
        assert_eq!(l.basic_loss().delta, Delta::ZERO);
    }

    #[test]
    fn accountant_tracks_users_independently() {
        let acc = Accountant::new();
        acc.record("alice", "s1/q1", gaussian_entry());
        acc.record("alice", "s1/q2", gaussian_entry());
        acc.record("bob", "s1/q1", gaussian_entry());
        assert_eq!(acc.user_count(), 2);
        assert_eq!(acc.releases_of("alice"), 2);
        assert_eq!(acc.releases_of("bob"), 1);
        assert_eq!(acc.releases_of("carol"), 0);
        let d = Delta::new(1e-5);
        assert!(acc.loss_of("alice", d).epsilon.value() > acc.loss_of("bob", d).epsilon.value());
        assert_eq!(acc.loss_of("carol", d), PrivacyLoss::ZERO);
    }

    #[test]
    fn loss_distribution_and_max() {
        let acc = Accountant::new();
        acc.record("a", "t", gaussian_entry());
        acc.record("b", "t", ReleaseKind::Raw);
        let d = Delta::new(1e-5);
        let dist = acc.loss_distribution(d);
        assert_eq!(dist.len(), 2);
        assert!(acc.max_loss(d).is_infinite());
    }

    #[test]
    fn epsilon_summary_statistics() {
        let acc = Accountant::new();
        assert_eq!(acc.epsilon_summary(Delta::new(1e-5)).users, 0);
        assert_eq!(acc.epsilon_summary(Delta::new(1e-5)).max, 0.0);

        // Ten users with 1..=10 pure releases of ε=0.1 each.
        for (i, n) in (1..=10).enumerate() {
            for r in 0..n {
                acc.record(
                    &format!("u{i}"),
                    format!("t{r}"),
                    ReleaseKind::Pure { epsilon: 0.1 },
                );
            }
        }
        let d = Delta::new(1e-5);
        let s = acc.epsilon_summary(d);
        assert_eq!(s.users, 10);
        assert_eq!(s.unbounded, 0);
        assert!((s.mean - 0.55).abs() < 1e-9, "mean = {}", s.mean);
        assert!((s.p50 - 0.5).abs() < 1e-9, "p50 = {}", s.p50);
        assert!((s.p90 - 0.9).abs() < 1e-9, "p90 = {}", s.p90);
        assert!((s.p99 - 1.0).abs() < 1e-9, "p99 = {}", s.p99);
        assert!((s.max - 1.0).abs() < 1e-9, "max = {}", s.max);

        // One raw release flips max to +inf but leaves quantiles finite.
        acc.record("leaker", "t", ReleaseKind::Raw);
        let s = acc.epsilon_summary(d);
        assert_eq!(s.users, 11);
        assert_eq!(s.unbounded, 1);
        assert!(s.max.is_infinite());
        assert!(s.p99.is_finite());
    }

    #[test]
    fn quantile_sorted_nearest_rank() {
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
        assert_eq!(quantile_sorted(&[3.0], 0.99), 3.0);
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 0.5), 2.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
    }

    #[test]
    fn ledger_serde_round_trip() {
        let mut l = UserLedger::new();
        l.record("s/q", gaussian_entry());
        l.record("s/q2", ReleaseKind::Pure { epsilon: 1.0 });
        let json = serde_json::to_string(&l).unwrap();
        let back: UserLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert!(
            (back.basic_loss().epsilon.value() - l.basic_loss().epsilon.value()).abs() < 1e-12
        );
    }

    #[test]
    fn ledger_shard_routing_is_deterministic() {
        // Same user id must hit the same internal shard in any process
        // (restart/replay stability) — pin a few values so a hash change
        // is a conscious decision, not an accident.
        for user in ["alice", "bob", "t0-u63", ""] {
            assert_eq!(user_shard(user), user_shard(&user.to_string()));
            assert!(user_shard(user) < LEDGER_SHARDS);
        }
        assert_eq!(user_shard("alice"), 7);
        assert_eq!(user_shard("bob"), 4);
    }

    #[test]
    fn count_users_by_walks_every_shard() {
        let acc = Accountant::new();
        for i in 0..40 {
            acc.record(&format!("u{i}"), "t", gaussian_entry());
        }
        // Bucket by the same internal router: totals must agree with
        // user_count and out-of-range buckets must be dropped, not panic.
        let counts = acc.count_users_by(LEDGER_SHARDS, user_shard);
        assert_eq!(counts.iter().sum::<usize>(), acc.user_count());
        let none = acc.count_users_by(1, |_| 7);
        assert_eq!(none, vec![0]);
    }

    #[test]
    fn accountant_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Accountant>();
    }
}
