//! Path routing with `:param` captures.
//!
//! Routes are registered as `(method, pattern, handler)`; patterns are
//! literal segments or `:name` captures (`/surveys/:id`). Dispatch is a
//! linear scan — the API has a dozen routes, and a linear scan over split
//! segments is both obvious and fast enough by orders of magnitude.

use crate::http::{Method, Request, Response, StatusCode};
use std::collections::HashMap;
use std::sync::Arc;

/// Captured path parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    values: HashMap<String, String>,
}

impl Params {
    /// The capture for `:name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A capture parsed to a type, `None` if missing or unparsable.
    pub fn parse<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.get(name)?.parse().ok()
    }
}

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

/// Renders framework-level errors (404/405 from dispatch, parse
/// rejections from the server loop) as `(status, machine code, human
/// message)`. Installing one lets the application impose a uniform error
/// body shape — e.g. a JSON envelope — without the router knowing about
/// serialization formats.
pub type ErrorRenderer = Arc<dyn Fn(StatusCode, &str, &str) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

enum Segment {
    Literal(String),
    Capture(String),
}

/// Method + pattern router.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    error_renderer: Option<ErrorRenderer>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Router({} routes)", self.routes.len())
    }
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a route. A leading `/` is implied: `"health"` and
    /// `"/health"` register the same pattern (matching normalizes both
    /// sides to their non-empty segments).
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        let segments = pattern
            .trim_start_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| match s.strip_prefix(':') {
                Some(name) => Segment::Capture(name.to_string()),
                None => Segment::Literal(s.to_string()),
            })
            .collect();
        self.routes.push(Route {
            method,
            segments,
            handler: Arc::new(handler),
        });
        self
    }

    /// Shorthand for GET routes.
    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.route(Method::Get, pattern, handler)
    }

    /// Shorthand for POST routes.
    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.route(Method::Post, pattern, handler)
    }

    /// Dispatches a request: 404 when no pattern matches, 405 when a
    /// pattern matches but only under other methods. HEAD requests with
    /// no dedicated route fall back to the GET handler for the same
    /// pattern (the server's write path suppresses the body).
    pub fn dispatch(&self, request: &Request) -> Response {
        let path_segments: Vec<&str> = request
            .path
            .trim_start_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();

        let mut saw_path_match = false;
        for route in &self.routes {
            let Some(params) = match_segments(&route.segments, &path_segments) else {
                continue;
            };
            saw_path_match = true;
            if route.method == request.method {
                return (route.handler)(request, &params);
            }
        }
        if request.method == Method::Head {
            for route in &self.routes {
                if route.method != Method::Get {
                    continue;
                }
                if let Some(params) = match_segments(&route.segments, &path_segments) {
                    return (route.handler)(request, &params);
                }
            }
        }
        if saw_path_match {
            self.render_error(
                StatusCode::METHOD_NOT_ALLOWED,
                "method_not_allowed",
                "method not allowed",
            )
        } else {
            self.render_error(StatusCode::NOT_FOUND, "not_found", "not found")
        }
    }

    /// Installs the error renderer used for 404/405 and parse errors.
    pub fn set_error_renderer(
        &mut self,
        renderer: impl Fn(StatusCode, &str, &str) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.error_renderer = Some(Arc::new(renderer));
        self
    }

    /// Renders a framework-level error through the installed renderer,
    /// falling back to a plain-text body.
    pub fn render_error(&self, status: StatusCode, code: &str, message: &str) -> Response {
        match &self.error_renderer {
            Some(render) => render(status, code, message),
            None => Response::text(status, message),
        }
    }
}

fn match_segments(pattern: &[Segment], path: &[&str]) -> Option<Params> {
    if pattern.len() != path.len() {
        return None;
    }
    let mut params = Params::default();
    for (seg, &got) in pattern.iter().zip(path) {
        match seg {
            Segment::Literal(want) => {
                if want != got {
                    return None;
                }
            }
            Segment::Capture(name) => {
                params.values.insert(name.clone(), got.to_string());
            }
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/surveys", |_, _| Response::text(StatusCode::OK, "list"));
        r.get("/surveys/:id", |_, p| {
            Response::text(StatusCode::OK, format!("survey {}", p.get("id").unwrap()))
        });
        r.post("/surveys/:id/responses", |req, p| {
            Response::text(
                StatusCode::CREATED,
                format!(
                    "submitted {} bytes to {}",
                    req.body.len(),
                    p.get("id").unwrap()
                ),
            )
        });
        r
    }

    fn get(path: &str) -> Request {
        Request::new(Method::Get, path)
    }

    #[test]
    fn literal_match() {
        let resp = router().dispatch(&get("/surveys"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"list");
    }

    #[test]
    fn capture_match() {
        let resp = router().dispatch(&get("/surveys/42"));
        assert_eq!(&resp.body[..], b"survey 42");
    }

    #[test]
    fn nested_capture_with_post() {
        let req = Request::new(Method::Post, "/surveys/7/responses").with_body("xyz");
        let resp = router().dispatch(&req);
        assert_eq!(resp.status, StatusCode::CREATED);
        assert_eq!(&resp.body[..], b"submitted 3 bytes to 7");
    }

    #[test]
    fn not_found() {
        let resp = router().dispatch(&get("/nope"));
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        // Length mismatch also 404s.
        let resp = router().dispatch(&get("/surveys/1/2/3"));
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn method_not_allowed() {
        let req = Request::new(Method::Post, "/surveys");
        let resp = router().dispatch(&req);
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn head_falls_back_to_get_handler() {
        let resp = router().dispatch(&Request::new(Method::Head, "/surveys/9"));
        assert_eq!(resp.status, StatusCode::OK);
        // The handler runs in full — body suppression happens in the
        // server's write path, so Content-Length stays truthful.
        assert_eq!(&resp.body[..], b"survey 9");
    }

    #[test]
    fn head_without_any_match_is_404() {
        let resp = router().dispatch(&Request::new(Method::Head, "/nope"));
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn explicit_head_route_wins_over_get_fallback() {
        let mut r = Router::new();
        r.get("/x", |_, _| Response::text(StatusCode::OK, "get"));
        r.route(Method::Head, "/x", |_, _| Response::status(StatusCode::NO_CONTENT));
        let resp = r.dispatch(&Request::new(Method::Head, "/x"));
        assert_eq!(resp.status, StatusCode::NO_CONTENT);
    }

    #[test]
    fn head_on_post_only_route_is_405() {
        let resp = router().dispatch(&Request::new(Method::Head, "/surveys/1/responses"));
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn trailing_slash_is_tolerated() {
        let resp = router().dispatch(&get("/surveys/"));
        assert_eq!(resp.status, StatusCode::OK);
    }

    #[test]
    fn params_parse_types() {
        let mut r = Router::new();
        r.get("/n/:num", |_, p| {
            match p.parse::<u32>("num") {
                Some(n) => Response::text(StatusCode::OK, format!("{}", n * 2)),
                None => Response::text(StatusCode::BAD_REQUEST, "nan"),
            }
        });
        assert_eq!(&r.dispatch(&get("/n/21")).body[..], b"42");
        assert_eq!(r.dispatch(&get("/n/xyz")).status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn slashless_pattern_matches_like_its_slashed_twin() {
        let mut r = Router::new();
        r.get("surveys", |_, _| Response::status(StatusCode::OK));
        assert_eq!(r.dispatch(&get("/surveys")).status, StatusCode::OK);
        assert_eq!(r.dispatch(&get("/other")).status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn default_error_renderer_is_plain_text() {
        let r = router();
        let resp = r.render_error(StatusCode::BAD_REQUEST, "bad_param", "id must be numeric");
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        assert_eq!(&resp.body[..], b"id must be numeric");
    }

    #[test]
    fn custom_error_renderer_shapes_dispatch_errors() {
        let mut r = router();
        r.set_error_renderer(|status, code, message| {
            Response::text(status, format!("[{code}] {message}"))
        });
        let resp = r.dispatch(&get("/nope"));
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        assert_eq!(&resp.body[..], b"[not_found] not found");
        let resp = r.dispatch(&Request::new(Method::Post, "/surveys"));
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
        assert_eq!(&resp.body[..], b"[method_not_allowed] method not allowed");
    }
}
