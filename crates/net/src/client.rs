//! A minimal blocking HTTP/1.1 client.
//!
//! One connection per request (`Connection: close`): simple, obviously
//! correct, and plenty for the app library and tests. The response is
//! read to completion using Content-Length when present, EOF otherwise.

use crate::http::{Headers, Method, Request, Response, StatusCode};
use bytes::Bytes;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client errors.
#[derive(Debug)]
pub enum ClientError {
    /// URL did not start with `http://host:port`.
    BadUrl(String),
    /// Socket-level failure.
    Io(std::io::Error),
    /// The response could not be parsed.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadUrl(u) => write!(f, "bad url: {u}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::BadResponse(e) => write!(f, "bad response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Blocking HTTP client bound to a base URL.
#[derive(Debug, Clone)]
pub struct HttpClient {
    host_port: String,
    timeout: Duration,
}

impl HttpClient {
    /// Creates a client for a base URL like `http://127.0.0.1:8080`.
    pub fn new(base_url: &str) -> Result<HttpClient, ClientError> {
        let rest = base_url
            .strip_prefix("http://")
            .ok_or_else(|| ClientError::BadUrl(base_url.to_string()))?;
        let host_port = rest.trim_end_matches('/').to_string();
        if host_port.is_empty() {
            return Err(ClientError::BadUrl(base_url.to_string()));
        }
        Ok(HttpClient {
            host_port,
            timeout: Duration::from_secs(10),
        })
    }

    /// Sets the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> HttpClient {
        self.timeout = timeout;
        self
    }

    /// Issues a GET.
    pub fn get(&self, path: &str) -> Result<Response, ClientError> {
        self.send(Request::new(Method::Get, path))
    }

    /// Issues a HEAD. The returned response has an empty body even
    /// though `Content-Length` advertises the GET body's size — that is
    /// the HEAD contract, and the parser accounts for it.
    pub fn head(&self, path: &str) -> Result<Response, ClientError> {
        self.send(Request::new(Method::Head, path))
    }

    /// Issues a POST with a body and content type.
    pub fn post(
        &self,
        path: &str,
        content_type: &str,
        body: impl Into<Bytes>,
    ) -> Result<Response, ClientError> {
        let mut req = Request::new(Method::Post, path).with_body(body);
        req.headers.insert("Content-Type", content_type);
        self.send(req)
    }

    /// Sends an arbitrary request.
    pub fn send(&self, request: Request) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect(&self.host_port)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;

        let target = if request.query.is_empty() {
            request.path.clone()
        } else {
            format!("{}?{}", request.path, request.query)
        };
        let mut wire = Vec::with_capacity(256 + request.body.len());
        wire.extend_from_slice(
            format!("{} {} HTTP/1.1\r\n", request.method, target).as_bytes(),
        );
        wire.extend_from_slice(format!("Host: {}\r\n", self.host_port).as_bytes());
        for (n, v) in request.headers.iter() {
            wire.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        wire.extend_from_slice(
            format!("Content-Length: {}\r\n", request.body.len()).as_bytes(),
        );
        wire.extend_from_slice(b"Connection: close\r\n\r\n");
        wire.extend_from_slice(&request.body);
        stream.write_all(&wire)?;

        let mut raw = Vec::with_capacity(4096);
        stream.read_to_end(&mut raw)?;
        // HEAD responses carry the GET body's Content-Length but no
        // body octets; telling the parser avoids a bogus "truncated
        // body" error.
        parse_response_for(&raw, request.method == Method::Head)
    }
}

/// Parses a complete HTTP/1.1 response to a non-HEAD request.
fn parse_response(raw: &[u8]) -> Result<Response, ClientError> {
    parse_response_for(raw, false)
}

/// Parses a complete HTTP/1.1 response. Every byte access is checked —
/// a malformed or truncated response becomes a [`ClientError`], never a
/// panic. When `is_head` is set, `Content-Length` is treated as
/// advisory and the body is empty by definition.
fn parse_response_for(raw: &[u8], is_head: bool) -> Result<Response, ClientError> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::BadResponse("no header terminator".into()))?;
    let head = std::str::from_utf8(raw.get(..header_end).unwrap_or_default())
        .map_err(|_| ClientError::BadResponse("non-utf8 headers".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| ClientError::BadResponse("empty response".into()))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::BadResponse(format!(
            "bad status line: {status_line}"
        )));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| ClientError::BadResponse("bad status code".into()))?;

    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (n, v) = line
            .split_once(':')
            .ok_or_else(|| ClientError::BadResponse(format!("bad header: {line}")))?;
        headers.insert(n.trim(), v.trim());
    }

    let body_start = header_end + 4;
    let body = if is_head {
        Bytes::new()
    } else {
        match headers.content_length() {
            Some(len) => {
                let body_end = body_start
                    .checked_add(len)
                    .ok_or_else(|| ClientError::BadResponse("bad content length".into()))?;
                let bytes = raw
                    .get(body_start..body_end)
                    .ok_or_else(|| ClientError::BadResponse("truncated body".into()))?;
                Bytes::copy_from_slice(bytes)
            }
            None => Bytes::copy_from_slice(raw.get(body_start..).unwrap_or_default()),
        }
    };
    Ok(Response {
        status: StatusCode(code),
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Router;
    use crate::server::{Server, ServerConfig};

    fn demo_server() -> crate::server::ServerHandle {
        let mut r = Router::new();
        r.get("/hello", |_, _| Response::text(StatusCode::OK, "world"));
        r.post("/double", |req, _| {
            let n: i64 = String::from_utf8_lossy(&req.body).trim().parse().unwrap_or(0);
            Response::text(StatusCode::OK, format!("{}", n * 2))
        });
        r.get("/q", |req, _| {
            Response::text(
                StatusCode::OK,
                req.query_param("name").unwrap_or("anon").to_string(),
            )
        });
        Server::spawn("127.0.0.1:0", r, ServerConfig::default()).unwrap()
    }

    #[test]
    fn get_round_trip() {
        let h = demo_server();
        let c = HttpClient::new(&h.base_url()).unwrap();
        let resp = c.get("/hello").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"world");
        h.shutdown();
    }

    #[test]
    fn post_round_trip() {
        let h = demo_server();
        let c = HttpClient::new(&h.base_url()).unwrap();
        let resp = c.post("/double", "text/plain", "21").unwrap();
        assert_eq!(&resp.body[..], b"42");
        h.shutdown();
    }

    #[test]
    fn query_parameters_travel() {
        let h = demo_server();
        let c = HttpClient::new(&h.base_url()).unwrap();
        let resp = c.get("/q?name=loki").unwrap();
        assert_eq!(&resp.body[..], b"loki");
        h.shutdown();
    }

    #[test]
    fn missing_route_is_404() {
        let h = demo_server();
        let c = HttpClient::new(&h.base_url()).unwrap();
        let resp = c.get("/nope").unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        h.shutdown();
    }

    #[test]
    fn bad_urls_rejected() {
        assert!(HttpClient::new("ftp://x").is_err());
        assert!(HttpClient::new("http://").is_err());
        assert!(HttpClient::new("http://127.0.0.1:1").is_ok());
    }

    #[test]
    fn connection_refused_is_io_error() {
        // Port 1 on loopback is essentially never listening.
        let c = HttpClient::new("http://127.0.0.1:1")
            .unwrap()
            .with_timeout(Duration::from_millis(300));
        match c.get("/x") {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"NOPE 200 OK\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nshort").is_err());
        // A content length near usize::MAX must error, not overflow.
        assert!(parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Length: 18446744073709551615\r\n\r\nx"
        )
        .is_err());
    }

    #[test]
    fn parse_response_without_content_length_reads_to_eof() {
        let r = parse_response(b"HTTP/1.1 200 OK\r\n\r\neverything").unwrap();
        assert_eq!(&r.body[..], b"everything");
    }

    #[test]
    fn head_response_with_advertised_length_parses_empty() {
        // A correct HEAD reply: full Content-Length, zero body octets.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n";
        assert!(parse_response(raw).is_err(), "non-HEAD parse must reject");
        let r = parse_response_for(raw, true).unwrap();
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.headers.content_length(), Some(5));
        assert!(r.body.is_empty());
    }

    #[test]
    fn head_round_trip_against_get_route() {
        let h = demo_server();
        let c = HttpClient::new(&h.base_url()).unwrap();
        let resp = c.head("/hello").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.content_length(), Some(5), "GET length kept");
        assert!(resp.body.is_empty(), "HEAD body suppressed");
        h.shutdown();
    }
}
