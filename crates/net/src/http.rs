//! HTTP message types.

use bytes::Bytes;
use std::fmt;

/// Request methods the framework supports (enough for a REST API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
    Head,
    Options,
}

impl Method {
    /// Parses a method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            "OPTIONS" => Some(Method::Options),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP protocol version of a request. The framework speaks HTTP/1.1;
/// HTTP/1.0 clients are served with 1.0 connection semantics (close by
/// default, keep-alive only on request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Version {
    /// `HTTP/1.0`: connections close after the response unless the
    /// client sent `Connection: keep-alive`.
    Http10,
    /// `HTTP/1.1`: connections persist unless `Connection: close`.
    #[default]
    Http11,
}

impl Version {
    /// Parses a version token from a request line.
    pub fn parse(s: &str) -> Option<Version> {
        match s {
            "HTTP/1.0" => Some(Version::Http10),
            "HTTP/1.1" => Some(Version::Http11),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Response status codes used by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 201 Created.
    pub const CREATED: StatusCode = StatusCode(201);
    /// 204 No Content.
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 409 Conflict.
    pub const CONFLICT: StatusCode = StatusCode(409);
    /// 413 Payload Too Large.
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 422 Unprocessable Entity.
    pub const UNPROCESSABLE: StatusCode = StatusCode(422);
    /// 500 Internal Server Error.
    pub const INTERNAL_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// The standard reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Whether the status is 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// Response header carrying the request's trace id as 16 hex digits;
/// `GET /v1/traces/{id}` resolves a retained id to its span tree.
pub const TRACE_ID_HEADER: &str = "x-loki-trace-id";

/// An ordered, case-insensitive header map (few headers → linear scan
/// beats a hash map and preserves order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header (duplicates allowed, as in HTTP).
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// First value of a header, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values of a header, case-insensitively, in insertion order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `Content-Length` value. Strict per RFC 9110 §8.6: the value
    /// must be a plain run of ASCII digits — a sign (`"+42"`), inner
    /// whitespace, or any other decoration returns `None` so the caller
    /// rejects the message instead of guessing (request-smuggling
    /// defense).
    pub fn content_length(&self) -> Option<usize> {
        let v = self.get("content-length")?;
        if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        v.parse().ok()
    }

    /// Whether any `Connection` header carries the given token.
    /// `Connection` is a comma-separated token list and may appear more
    /// than once; tokens match case-insensitively.
    pub fn has_connection_token(&self, token: &str) -> bool {
        self.get_all("connection")
            .flat_map(|v| v.split(','))
            .any(|t| t.trim().eq_ignore_ascii_case(token))
    }

    /// Whether the client asked to close the connection
    /// (`Connection: close` anywhere in the token list).
    pub fn wants_close(&self) -> bool {
        self.has_connection_token("close")
    }

    /// Whether the client asked to keep the connection open
    /// (`Connection: keep-alive` anywhere in the token list) — the
    /// HTTP/1.0 opt-in.
    pub fn wants_keep_alive(&self) -> bool {
        self.has_connection_token("keep-alive")
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path component of the target (query string split off).
    pub path: String,
    /// Raw query string (without `?`), empty if none.
    pub query: String,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Bytes,
    /// Protocol version from the request line (1.1 when constructed
    /// programmatically).
    pub version: Version,
}

impl Request {
    /// Creates a request (used by the client and tests).
    pub fn new(method: Method, path: impl Into<String>) -> Request {
        let full: String = path.into();
        let (path, query) = match full.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (full, String::new()),
        };
        Request {
            method,
            path,
            query,
            headers: Headers::new(),
            body: Bytes::new(),
            version: Version::Http11,
        }
    }

    /// Whether the connection should close after this exchange, under
    /// the request's own version semantics: HTTP/1.1 persists unless
    /// `Connection: close`; HTTP/1.0 closes unless
    /// `Connection: keep-alive`.
    pub fn wants_close(&self) -> bool {
        match self.version {
            Version::Http11 => self.headers.wants_close(),
            Version::Http10 => !self.headers.wants_keep_alive(),
        }
    }

    /// Sets the body and a matching `Content-Length`.
    pub fn with_body(mut self, body: impl Into<Bytes>) -> Request {
        self.body = body.into();
        self
    }

    /// A query parameter value (simple `k=v&k2=v2` parsing, no
    /// percent-decoding — the API uses plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers (Content-Length is added at serialization).
    pub headers: Headers,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// An empty response with a status.
    pub fn status(status: StatusCode) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: StatusCode, body: impl Into<String>) -> Response {
        let mut r = Response::status(status);
        r.headers.insert("Content-Type", "text/plain; charset=utf-8");
        r.body = Bytes::from(body.into());
        r
    }

    /// An `application/json` response from pre-serialized bytes.
    pub fn json_bytes(status: StatusCode, body: Vec<u8>) -> Response {
        let mut r = Response::status(status);
        r.headers.insert("Content-Type", "application/json");
        r.body = Bytes::from(body);
        r
    }

    /// Serializes the response to wire format, appending Content-Length
    /// and the connection directive.
    pub fn to_bytes(&self, close: bool) -> Vec<u8> {
        self.serialize(close, false)
    }

    /// Serializes the response, optionally suppressing the body for a
    /// HEAD exchange. The `Content-Length` of the full body is always
    /// emitted — HEAD promises the metadata of the equivalent GET — but
    /// with `head` set no body octets follow the blank line.
    pub fn serialize(&self, close: bool, head: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + if head { 0 } else { self.body.len() });
        out.extend_from_slice(format!("HTTP/1.1 {}\r\n", self.status).as_bytes());
        for (n, v) in self.headers.iter() {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if close {
            b"Connection: close\r\n"
        } else {
            b"Connection: keep-alive\r\n"
        });
        out.extend_from_slice(b"\r\n");
        if !head {
            out.extend_from_slice(&self.body);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trip() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Head,
            Method::Options,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }

    #[test]
    fn status_reasons() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode(404).reason(), "Not Found");
        assert!(StatusCode::CREATED.is_success());
        assert!(!StatusCode::BAD_REQUEST.is_success());
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.insert("Content-Type", "application/json");
        assert_eq!(h.get("content-type"), Some("application/json"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("application/json"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        h.insert("Content-Length", "42");
        assert_eq!(h.content_length(), Some(42));
        let mut bad = Headers::new();
        bad.insert("Content-Length", "nope");
        assert_eq!(bad.content_length(), None);
    }

    #[test]
    fn content_length_rejects_sign_and_whitespace() {
        // "+42" parses under str::parse::<usize> — a classic smuggling
        // vector where two hops disagree on the body length. The strict
        // digits-only reading returns None for every decorated form.
        for v in ["+42", "-42", " 42", "42 ", "4 2", "0x2a", ""] {
            let mut h = Headers::new();
            h.insert("Content-Length", v);
            assert_eq!(h.content_length(), None, "value {v:?} must not parse");
        }
    }

    #[test]
    fn content_length_get_all_sees_duplicates() {
        let mut h = Headers::new();
        h.insert("Content-Length", "10");
        h.insert("content-length", "20");
        let all: Vec<&str> = h.get_all("Content-Length").collect();
        assert_eq!(all, ["10", "20"]);
    }

    #[test]
    fn connection_close_detection() {
        let mut h = Headers::new();
        h.insert("Connection", "Close");
        assert!(h.wants_close());
        assert!(!Headers::new().wants_close());
    }

    #[test]
    fn connection_token_lists_split_on_commas() {
        let mut h = Headers::new();
        h.insert("Connection", "keep-alive, Close");
        assert!(h.wants_close());
        assert!(h.wants_keep_alive());

        let mut spaced = Headers::new();
        spaced.insert("Connection", "upgrade ,  CLOSE");
        assert!(spaced.wants_close());

        let mut other = Headers::new();
        other.insert("Connection", "keep-alive, upgrade");
        assert!(!other.wants_close());

        // Token match, not substring match.
        let mut sub = Headers::new();
        sub.insert("Connection", "not-close");
        assert!(!sub.wants_close());
    }

    #[test]
    fn connection_tokens_across_repeated_headers() {
        let mut h = Headers::new();
        h.insert("Connection", "upgrade");
        h.insert("Connection", "close");
        assert!(h.wants_close());
    }

    #[test]
    fn request_close_semantics_by_version() {
        let mut r10 = Request::new(Method::Get, "/");
        r10.version = Version::Http10;
        assert!(r10.wants_close(), "HTTP/1.0 defaults to close");
        r10.headers.insert("Connection", "Keep-Alive");
        assert!(!r10.wants_close(), "HTTP/1.0 keep-alive is honored");

        let mut r11 = Request::new(Method::Get, "/");
        assert!(!r11.wants_close(), "HTTP/1.1 defaults to keep-alive");
        r11.headers.insert("Connection", "x, close");
        assert!(r11.wants_close());
    }

    #[test]
    fn request_splits_query() {
        let r = Request::new(Method::Get, "/results/3?bin=high&limit=5");
        assert_eq!(r.path, "/results/3");
        assert_eq!(r.query_param("bin"), Some("high"));
        assert_eq!(r.query_param("limit"), Some("5"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn response_serialization() {
        let r = Response::text(StatusCode::OK, "hi");
        let bytes = r.to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn keep_alive_serialization() {
        let r = Response::status(StatusCode::NO_CONTENT);
        let text = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Length: 0\r\n"));
    }

    #[test]
    fn head_serialization_keeps_length_drops_body() {
        let r = Response::text(StatusCode::OK, "hello");
        let text = String::from_utf8(r.serialize(false, true)).unwrap();
        assert!(text.contains("Content-Length: 5\r\n"), "true GET length kept");
        assert!(text.ends_with("\r\n\r\n"), "no body octets follow: {text:?}");
        // And the non-HEAD path is unchanged.
        let full = String::from_utf8(r.serialize(false, false)).unwrap();
        assert!(full.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn version_round_trip() {
        assert_eq!(Version::parse("HTTP/1.1"), Some(Version::Http11));
        assert_eq!(Version::parse("HTTP/1.0"), Some(Version::Http10));
        assert_eq!(Version::parse("HTTP/2"), None);
        assert_eq!(Version::Http10.to_string(), "HTTP/1.0");
    }
}
