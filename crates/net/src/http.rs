//! HTTP message types.

use bytes::Bytes;
use std::fmt;

/// Request methods the framework supports (enough for a REST API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
    Head,
    Options,
}

impl Method {
    /// Parses a method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            "OPTIONS" => Some(Method::Options),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Response status codes used by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 201 Created.
    pub const CREATED: StatusCode = StatusCode(201);
    /// 204 No Content.
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 409 Conflict.
    pub const CONFLICT: StatusCode = StatusCode(409);
    /// 413 Payload Too Large.
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 422 Unprocessable Entity.
    pub const UNPROCESSABLE: StatusCode = StatusCode(422);
    /// 500 Internal Server Error.
    pub const INTERNAL_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// The standard reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Whether the status is 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// Response header carrying the request's trace id as 16 hex digits;
/// `GET /v1/traces/{id}` resolves a retained id to its span tree.
pub const TRACE_ID_HEADER: &str = "x-loki-trace-id";

/// An ordered, case-insensitive header map (few headers → linear scan
/// beats a hash map and preserves order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header (duplicates allowed, as in HTTP).
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// First value of a header, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `Content-Length` value, if present and numeric.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length")?.trim().parse().ok()
    }

    /// Whether the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path component of the target (query string split off).
    pub path: String,
    /// Raw query string (without `?`), empty if none.
    pub query: String,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Bytes,
}

impl Request {
    /// Creates a request (used by the client and tests).
    pub fn new(method: Method, path: impl Into<String>) -> Request {
        let full: String = path.into();
        let (path, query) = match full.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (full, String::new()),
        };
        Request {
            method,
            path,
            query,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// Sets the body and a matching `Content-Length`.
    pub fn with_body(mut self, body: impl Into<Bytes>) -> Request {
        self.body = body.into();
        self
    }

    /// A query parameter value (simple `k=v&k2=v2` parsing, no
    /// percent-decoding — the API uses plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers (Content-Length is added at serialization).
    pub headers: Headers,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// An empty response with a status.
    pub fn status(status: StatusCode) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: StatusCode, body: impl Into<String>) -> Response {
        let mut r = Response::status(status);
        r.headers.insert("Content-Type", "text/plain; charset=utf-8");
        r.body = Bytes::from(body.into());
        r
    }

    /// An `application/json` response from pre-serialized bytes.
    pub fn json_bytes(status: StatusCode, body: Vec<u8>) -> Response {
        let mut r = Response::status(status);
        r.headers.insert("Content-Type", "application/json");
        r.body = Bytes::from(body);
        r
    }

    /// Serializes the response to wire format, appending Content-Length
    /// and the connection directive.
    pub fn to_bytes(&self, close: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {}\r\n", self.status).as_bytes());
        for (n, v) in self.headers.iter() {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if close {
            b"Connection: close\r\n"
        } else {
            b"Connection: keep-alive\r\n"
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trip() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Head,
            Method::Options,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }

    #[test]
    fn status_reasons() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode(404).reason(), "Not Found");
        assert!(StatusCode::CREATED.is_success());
        assert!(!StatusCode::BAD_REQUEST.is_success());
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.insert("Content-Type", "application/json");
        assert_eq!(h.get("content-type"), Some("application/json"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("application/json"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        h.insert("Content-Length", " 42 ");
        assert_eq!(h.content_length(), Some(42));
        let mut bad = Headers::new();
        bad.insert("Content-Length", "nope");
        assert_eq!(bad.content_length(), None);
    }

    #[test]
    fn connection_close_detection() {
        let mut h = Headers::new();
        h.insert("Connection", "Close");
        assert!(h.wants_close());
        assert!(!Headers::new().wants_close());
    }

    #[test]
    fn request_splits_query() {
        let r = Request::new(Method::Get, "/results/3?bin=high&limit=5");
        assert_eq!(r.path, "/results/3");
        assert_eq!(r.query_param("bin"), Some("high"));
        assert_eq!(r.query_param("limit"), Some("5"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn response_serialization() {
        let r = Response::text(StatusCode::OK, "hi");
        let bytes = r.to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn keep_alive_serialization() {
        let r = Response::status(StatusCode::NO_CONTENT);
        let text = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Length: 0\r\n"));
    }
}
