//! Incremental HTTP/1.1 request parsing out of a byte buffer.
//!
//! The parser consumes from a `BytesMut` the connection loop keeps
//! appending to. [`RequestParser::parse`] returns:
//!
//! * `Ok(Some(request))` — a complete request was consumed from the
//!   buffer (leftover bytes stay for the next pipelined request);
//! * `Ok(None)` — more bytes are needed;
//! * `Err(_)` — the input is malformed or exceeds limits; the connection
//!   should answer with the error's status and close.
//!
//! Limits guard every dimension an attacker controls: request-line
//! length, header count and size, and body size.

use crate::http::{Headers, Method, Request, Version};
use crate::http::StatusCode;
use bytes::{Buf, Bytes, BytesMut};
use std::fmt;

/// Parser limits.
#[derive(Debug, Clone, Copy)]
pub struct ParserConfig {
    /// Maximum bytes in the request line.
    pub max_request_line: usize,
    /// Maximum total bytes of the header section.
    pub max_header_bytes: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum body size in bytes.
    pub max_body: usize,
}

impl Default for ParserConfig {
    fn default() -> Self {
        ParserConfig {
            max_request_line: 8 * 1024,
            max_header_bytes: 32 * 1024,
            max_headers: 100,
            max_body: 1024 * 1024,
        }
    }
}

/// Parse failures, each mapping to the HTTP status the connection should
/// send before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is not `METHOD target HTTP/1.1`.
    BadRequestLine,
    /// Unknown method token.
    BadMethod,
    /// Unsupported HTTP version.
    BadVersion,
    /// A header line has no colon or invalid characters.
    BadHeader,
    /// Request line longer than the limit.
    RequestLineTooLong,
    /// Header section exceeds limits.
    HeadersTooLarge,
    /// Declared body exceeds the limit.
    BodyTooLarge,
    /// `Content-Length` missing on a method that requires a body, or
    /// unparsable.
    BadContentLength,
}

impl ParseError {
    /// The status code to answer with.
    pub fn status(&self) -> StatusCode {
        match self {
            ParseError::BodyTooLarge => StatusCode::PAYLOAD_TOO_LARGE,
            ParseError::HeadersTooLarge | ParseError::RequestLineTooLong => StatusCode(431),
            _ => StatusCode::BAD_REQUEST,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::BadRequestLine => "malformed request line",
            ParseError::BadMethod => "unknown method",
            ParseError::BadVersion => "unsupported HTTP version",
            ParseError::BadHeader => "malformed header",
            ParseError::RequestLineTooLong => "request line too long",
            ParseError::HeadersTooLarge => "headers too large",
            ParseError::BodyTooLarge => "body too large",
            ParseError::BadContentLength => "bad content length",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Incremental request parser. Stateless between complete requests — all
/// intermediate state lives in the caller's buffer, which keeps the
/// connection loop trivially correct under pipelining.
#[derive(Debug, Clone, Copy)]
pub struct RequestParser {
    config: ParserConfig,
}

impl Default for RequestParser {
    fn default() -> Self {
        RequestParser::new(ParserConfig::default())
    }
}

impl RequestParser {
    /// Creates a parser with custom limits.
    pub fn new(config: ParserConfig) -> RequestParser {
        RequestParser { config }
    }

    fn config(&self) -> &ParserConfig {
        &self.config
    }

    /// Attempts to parse one complete request from the front of `buf`,
    /// consuming it on success.
    pub fn parse(&self, buf: &mut BytesMut) -> Result<Option<Request>, ParseError> {
        let cfg = self.config();

        // Find the end of the header section.
        let Some(header_end) = find_double_crlf(buf) else {
            // Even incomplete, enforce limits so a slow-loris peer can't
            // grow the buffer forever.
            if let Some(line_end) = find_crlf(buf) {
                if line_end > cfg.max_request_line {
                    return Err(ParseError::RequestLineTooLong);
                }
            } else if buf.len() > cfg.max_request_line {
                return Err(ParseError::RequestLineTooLong);
            }
            if buf.len() > cfg.max_header_bytes {
                return Err(ParseError::HeadersTooLarge);
            }
            return Ok(None);
        };
        if header_end > cfg.max_header_bytes {
            return Err(ParseError::HeadersTooLarge);
        }

        // Parse the head into owned values so the borrow of `buf` ends
        // before the consuming `advance` below.
        let (method, target, version, headers) = {
            // header_end is the CRLFCRLF offset found inside buf, so the
            // slice is in-bounds by construction.
            // lint:allow panic-path
            let head = &buf[..header_end];
            let mut lines = split_crlf(head);
            let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
            if request_line.len() > cfg.max_request_line {
                return Err(ParseError::RequestLineTooLong);
            }
            let request_line =
                std::str::from_utf8(request_line).map_err(|_| ParseError::BadRequestLine)?;
            let mut parts = request_line.split(' ');
            let method = parts
                .next()
                .filter(|s| !s.is_empty())
                .ok_or(ParseError::BadRequestLine)?;
            let target = parts.next().ok_or(ParseError::BadRequestLine)?;
            let version = parts.next().ok_or(ParseError::BadRequestLine)?;
            if parts.next().is_some() {
                return Err(ParseError::BadRequestLine);
            }
            let method = Method::parse(method).ok_or(ParseError::BadMethod)?;
            let version = Version::parse(version).ok_or(ParseError::BadVersion)?;

            let mut headers = Headers::new();
            for line in lines {
                if line.is_empty() {
                    continue;
                }
                if headers.len() >= cfg.max_headers {
                    return Err(ParseError::HeadersTooLarge);
                }
                let line = std::str::from_utf8(line).map_err(|_| ParseError::BadHeader)?;
                let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
                let name = name.trim();
                if name.is_empty() || name.contains(' ') {
                    return Err(ParseError::BadHeader);
                }
                headers.insert(name, value.trim());
            }
            (method, target.to_string(), version, headers)
        };

        // Body handling: only via Content-Length (no chunked uploads —
        // the API clients never send them, and rejecting is safer than
        // half-implementing). Duplicate Content-Length headers with
        // conflicting values are a request-smuggling vector (two hops
        // framing the stream differently), so any disagreement is fatal;
        // identical repeats are tolerated per RFC 9110 §8.6.
        let body_len = match headers.get("transfer-encoding") {
            Some(_) => return Err(ParseError::BadContentLength),
            None => {
                let mut values = headers.get_all("content-length");
                match values.next() {
                    Some(first) => {
                        if values.any(|v| v != first) {
                            return Err(ParseError::BadContentLength);
                        }
                        headers
                            .content_length()
                            .ok_or(ParseError::BadContentLength)?
                    }
                    None => 0,
                }
            }
        };
        if body_len > cfg.max_body {
            return Err(ParseError::BodyTooLarge);
        }
        let total = header_end + 4 + body_len;
        if buf.len() < total {
            return Ok(None);
        }

        // Consume: head + CRLFCRLF + body.
        buf.advance(header_end + 4);
        let body: Bytes = buf.split_to(body_len).freeze();

        let mut request = Request::new(method, target);
        request.headers = headers;
        request.body = body;
        request.version = version;
        Ok(Some(request))
    }
}

/// Byte offset of the first `\r\n\r\n`, if present (offset of its start).
fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Byte offset of the first `\r\n`.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Splits a header block on CRLF boundaries.
fn split_crlf(head: &[u8]) -> impl Iterator<Item = &[u8]> {
    head.split(|&b| b == b'\n')
        .map(|line| line.strip_suffix(b"\r").unwrap_or(line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(input: &str) -> Result<Option<Request>, ParseError> {
        let mut buf = BytesMut::from(input.as_bytes());
        RequestParser::default().parse(&mut buf)
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse_all("GET /surveys HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/surveys");
        assert_eq!(r.headers.get("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse_all("POST /responses HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(&r.body[..], b"abcd");
    }

    #[test]
    fn incremental_feeding() {
        let parser = RequestParser::default();
        let full = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut buf = BytesMut::new();
        for (i, &b) in full.iter().enumerate() {
            buf.extend_from_slice(&[b]);
            let out = parser.parse(&mut buf).unwrap();
            if i + 1 < full.len() {
                assert!(out.is_none(), "completed early at byte {i}");
            } else {
                let r = out.expect("complete at the last byte");
                assert_eq!(&r.body[..], b"hello");
            }
        }
        assert!(buf.is_empty(), "buffer fully consumed");
    }

    #[test]
    fn pipelined_requests_leave_leftover() {
        let parser = RequestParser::default();
        let mut buf = BytesMut::from(
            &b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"[..],
        );
        let r1 = parser.parse(&mut buf).unwrap().unwrap();
        assert_eq!(r1.path, "/a");
        let r2 = parser.parse(&mut buf).unwrap().unwrap();
        assert_eq!(r2.path, "/b");
        assert!(parser.parse(&mut buf).unwrap().is_none());
    }

    #[test]
    fn query_string_split() {
        let r = parse_all("GET /r?x=1&y=2 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.path, "/r");
        assert_eq!(r.query_param("y"), Some("2"));
    }

    #[test]
    fn rejects_bad_method() {
        assert_eq!(
            parse_all("BREW /pot HTTP/1.1\r\n\r\n").unwrap_err(),
            ParseError::BadMethod
        );
    }

    #[test]
    fn rejects_bad_version() {
        assert_eq!(
            parse_all("GET / HTTP/2\r\n\r\n").unwrap_err(),
            ParseError::BadVersion
        );
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert_eq!(
            parse_all("GET /\r\n\r\n").unwrap_err(),
            ParseError::BadRequestLine
        );
        assert_eq!(
            parse_all("GET / HTTP/1.1 extra\r\n\r\n").unwrap_err(),
            ParseError::BadRequestLine
        );
    }

    #[test]
    fn rejects_header_without_colon() {
        assert_eq!(
            parse_all("GET / HTTP/1.1\r\nbroken header\r\n\r\n").unwrap_err(),
            ParseError::BadHeader
        );
    }

    #[test]
    fn rejects_bad_content_length() {
        assert_eq!(
            parse_all("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err(),
            ParseError::BadContentLength
        );
    }

    #[test]
    fn rejects_chunked() {
        assert_eq!(
            parse_all("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            ParseError::BadContentLength
        );
    }

    #[test]
    fn body_limit_enforced() {
        let parser = RequestParser::new(ParserConfig {
            max_body: 10,
            ..ParserConfig::default()
        });
        let mut buf = BytesMut::from(&b"POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n"[..]);
        assert_eq!(parser.parse(&mut buf).unwrap_err(), ParseError::BodyTooLarge);
    }

    #[test]
    fn request_line_limit_enforced_before_completion() {
        // A request line that never ends must be rejected once over limit,
        // not buffered forever.
        let parser = RequestParser::new(ParserConfig {
            max_request_line: 64,
            ..ParserConfig::default()
        });
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"GET /");
        buf.extend_from_slice(&[b'a'; 100]);
        assert_eq!(
            parser.parse(&mut buf).unwrap_err(),
            ParseError::RequestLineTooLong
        );
    }

    #[test]
    fn header_count_limit() {
        let parser = RequestParser::new(ParserConfig {
            max_headers: 2,
            ..ParserConfig::default()
        });
        let mut buf = BytesMut::from(
            &b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n"[..],
        );
        assert_eq!(parser.parse(&mut buf).unwrap_err(), ParseError::HeadersTooLarge);
    }

    #[test]
    fn http_1_0_accepted() {
        let r = parse_all("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.version, Version::Http10);
        assert!(r.wants_close(), "HTTP/1.0 closes by default");
    }

    #[test]
    fn http_1_0_keep_alive_honored() {
        let r = parse_all("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.version, Version::Http10);
        assert!(!r.wants_close());
    }

    #[test]
    fn http_1_1_version_recorded() {
        let r = parse_all("GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.version, Version::Http11);
        assert!(!r.wants_close());
    }

    #[test]
    fn connection_token_list_close_detected() {
        let r = parse_all("GET / HTTP/1.1\r\nConnection: keep-alive, Close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(r.wants_close(), "close token inside a list must win");
    }

    #[test]
    fn rejects_signed_content_length() {
        // "+42" satisfies str::parse::<usize> but is not a valid
        // Content-Length; hops that parse it differently disagree on
        // where the next request starts (smuggling).
        assert_eq!(
            parse_all("POST / HTTP/1.1\r\nContent-Length: +4\r\n\r\nabcd").unwrap_err(),
            ParseError::BadContentLength
        );
    }

    #[test]
    fn rejects_conflicting_duplicate_content_length() {
        assert_eq!(
            parse_all("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 40\r\n\r\nabcd")
                .unwrap_err(),
            ParseError::BadContentLength
        );
    }

    #[test]
    fn tolerates_identical_duplicate_content_length() {
        let r = parse_all("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(&r.body[..], b"abcd");
    }

    #[test]
    fn rejects_content_length_with_transfer_encoding() {
        // CL + TE together is the classic smuggling split; TE alone is
        // already rejected (no chunked support), and the combination
        // must not downgrade to the CL framing.
        assert_eq!(
            parse_all(
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\nabcd"
            )
            .unwrap_err(),
            ParseError::BadContentLength
        );
    }

    #[test]
    fn error_statuses() {
        assert_eq!(ParseError::BodyTooLarge.status(), StatusCode::PAYLOAD_TOO_LARGE);
        assert_eq!(ParseError::BadMethod.status(), StatusCode::BAD_REQUEST);
        assert_eq!(ParseError::HeadersTooLarge.status().0, 431);
    }
}
