//! Thin zero-dependency readiness-polling wrapper.
//!
//! The reactor needs exactly four OS facilities: create a poller,
//! (de)register file descriptors with a token, block until readiness,
//! and wake the blocked thread from outside. This module wraps them in
//! a [`Poller`]/[`Waker`] pair with no `libc` crate — the handful of
//! syscalls are declared directly, in keeping with the workspace
//! no-heavy-deps style.
//!
//! * On Linux the backend is **epoll** (level-triggered) plus an
//!   `eventfd` waker — O(ready) wakeups independent of the number of
//!   registered connections, which is what lets the edge hold 10k+ idle
//!   keep-alive sockets on a handful of threads.
//! * On other Unixes the backend is **poll(2)** plus a pipe waker —
//!   O(n) per wait, but the same API, so the crate stays portable for
//!   development on e.g. macOS.
//!
//! Everything `unsafe` in the crate lives behind this module's API: the
//! FFI declarations and the calls into them. Each call site passes
//! either a kernel-owned fd or a pointer+length pair derived from a
//! live Rust slice, so the invariants are local and checkable.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;
use std::time::Duration;

/// A readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// Readable (or peer hung up / error — reading surfaces the cause).
    pub readable: bool,
    /// Writable (or error — writing surfaces the cause).
    pub writable: bool,
}

/// Milliseconds for the backend call: round up so a sub-millisecond
/// timeout never becomes a busy-loop zero, clamp into `c_int`.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if ms == 0 && !t.is_zero() { 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(not(unix))]
compile_error!("loki-net's evented server needs a POSIX readiness API (epoll or poll)");

// ---------------------------------------------------------------- Linux

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    // x86 keeps the struct packed for binary compatibility with the
    // original 32-bit layout; other architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// Level-triggered epoll instance.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub(crate) struct Poller {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Creates the poller.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if readable {
            events |= sys::EPOLLIN;
        }
        if writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent { events, data: token };
        // SAFETY: `ev` is a live stack value for the duration of the call;
        // the kernel copies it and keeps no reference.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interests.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Changes the interests of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Deregisters an fd. Best-effort: closing the fd also deregisters
    /// it, so errors here are ignorable.
    pub fn remove(&self, fd: RawFd) {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `ctl`; a non-null event pointer keeps pre-2.6.9
        // kernel semantics happy.
        let _ = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Blocks until readiness or timeout, appending events to `out`.
    /// `EINTR` returns `Ok` with no events.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        const CAP: usize = 256;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        // SAFETY: `buf` is a live, writable array of CAP elements; the
        // kernel writes at most `CAP` entries and returns how many.
        let n = unsafe {
            sys::epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, timeout_ms(timeout))
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in buf.iter().take(n as usize) {
            let ev = *ev; // copy out of the (possibly packed) struct
            let flags = ev.events;
            let closed = flags & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            out.push(Event {
                token: ev.data,
                readable: flags & sys::EPOLLIN != 0 || closed,
                writable: flags & sys::EPOLLOUT != 0 || closed,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own exactly once.
        let _ = unsafe { sys::close(self.epfd) };
    }
}

#[cfg(target_os = "linux")]
#[derive(Debug)]
struct WakerInner {
    fd: RawFd,
}

#[cfg(target_os = "linux")]
impl Drop for WakerInner {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own exactly once.
        let _ = unsafe { sys::close(self.fd) };
    }
}

/// Wakes a [`Poller::wait`] from another thread (eventfd-backed).
#[cfg(target_os = "linux")]
#[derive(Debug, Clone)]
pub(crate) struct Waker {
    inner: Arc<WakerInner>,
}

#[cfg(target_os = "linux")]
impl Waker {
    /// Creates a waker registered on `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let inner = Arc::new(WakerInner { fd });
        poller.add(fd, token, true, false)?;
        Ok(Waker { inner })
    }

    /// Signals the poller. Best-effort: a full eventfd counter still
    /// leaves the fd readable, which is all a wakeup needs.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a live u64; the kernel copies.
        let _ = unsafe {
            sys::write(
                self.inner.fd,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Clears pending wakeups so level-triggered polling settles.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reading into a live 8-byte buffer we own.
        let _ = unsafe { sys::read(self.inner.fd, buf.as_mut_ptr().cast(), buf.len()) };
    }
}

// ------------------------------------------------- portable poll(2) path

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use std::os::raw::{c_int, c_void};

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub const F_SETFL: c_int = 4;
    // BSD-family value; Linux takes the dedicated module above.
    pub const O_NONBLOCK: c_int = 0x0004;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// poll(2)-backed poller: a registration table rebuilt into a `pollfd`
/// array per wait. O(n), but behaviorally identical to the epoll path.
#[cfg(all(unix, not(target_os = "linux")))]
#[derive(Debug)]
pub(crate) struct Poller {
    interest: std::sync::Mutex<Vec<(RawFd, u64, bool, bool)>>,
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Poller {
    /// Creates the poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            interest: std::sync::Mutex::new(Vec::new()),
        })
    }

    fn table(&self) -> std::sync::MutexGuard<'_, Vec<(RawFd, u64, bool, bool)>> {
        match self.interest.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers `fd` under `token` with the given interests.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.table().push((fd, token, readable, writable));
        Ok(())
    }

    /// Changes the interests of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut table = self.table();
        for entry in table.iter_mut() {
            if entry.0 == fd {
                *entry = (fd, token, readable, writable);
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    /// Deregisters an fd.
    pub fn remove(&self, fd: RawFd) {
        self.table().retain(|entry| entry.0 != fd);
    }

    /// Blocks until readiness or timeout, appending events to `out`.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let snapshot: Vec<(RawFd, u64, bool, bool)> = self.table().clone();
        let mut fds: Vec<sys::PollFd> = snapshot
            .iter()
            .map(|&(fd, _, readable, writable)| sys::PollFd {
                fd,
                events: if readable { sys::POLLIN } else { 0 }
                    | if writable { sys::POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        // SAFETY: `fds` is a live, writable slice; the kernel fills
        // `revents` in place and keeps no reference past the call.
        let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (pfd, &(_, token, _, _)) in fds.iter().zip(snapshot.iter()) {
            let closed = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
            if pfd.revents != 0 {
                out.push(Event {
                    token,
                    readable: pfd.revents & sys::POLLIN != 0 || closed,
                    writable: pfd.revents & sys::POLLOUT != 0 || closed,
                });
            }
        }
        Ok(())
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
#[derive(Debug)]
struct WakerInner {
    read_fd: RawFd,
    write_fd: RawFd,
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Drop for WakerInner {
    fn drop(&mut self) {
        // SAFETY: closing fds we own exactly once.
        unsafe {
            let _ = sys::close(self.read_fd);
            let _ = sys::close(self.write_fd);
        }
    }
}

/// Wakes a [`Poller::wait`] from another thread (pipe-backed).
#[cfg(all(unix, not(target_os = "linux")))]
#[derive(Debug, Clone)]
pub(crate) struct Waker {
    inner: Arc<WakerInner>,
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Waker {
    /// Creates a waker registered on `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live 2-element array the kernel fills.
        let rc = unsafe { sys::pipe(fds.as_mut_ptr()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        // lint:allow panic-path -- slice *pattern* on a [i32; 2], infallible.
        let [read_fd, write_fd] = fds;
        let inner = Arc::new(WakerInner { read_fd, write_fd });
        // SAFETY: setting O_NONBLOCK on fds we just created.
        unsafe {
            let _ = sys::fcntl(inner.read_fd, sys::F_SETFL, sys::O_NONBLOCK);
            let _ = sys::fcntl(inner.write_fd, sys::F_SETFL, sys::O_NONBLOCK);
        }
        poller.add(inner.read_fd, token, true, false)?;
        Ok(Waker { inner })
    }

    /// Signals the poller (best-effort).
    pub fn wake(&self) {
        let one = [1u8];
        // SAFETY: writing 1 byte from a live buffer; the kernel copies.
        let _ = unsafe { sys::write(self.inner.write_fd, one.as_ptr().cast(), 1) };
    }

    /// Clears pending wakeups.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a live buffer we own.
            let n = unsafe { sys::read(self.inner.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 || (n as usize) < buf.len() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn listener_readiness_on_connect() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(listener.as_raw_fd(), 7, true, false).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "no connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while events.is_empty() && Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn stream_readiness_on_data() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller.add(server_side.as_raw_fd(), 42, true, false).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while events.is_empty() && Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
    }

    #[test]
    fn waker_interrupts_wait() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Waker::new(&poller, u64::MAX).unwrap();
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w2.wake();
        });
        let mut events = Vec::new();
        let started = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(started.elapsed() < Duration::from_secs(5), "woken, not timed out");
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        waker.drain();
        t.join().unwrap();
    }

    #[test]
    fn timeout_expires_without_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn modify_switches_interest() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        // Readable interest off: a fresh socket reports nothing.
        poller.add(server_side.as_raw_fd(), 1, false, false).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        // Writable interest on: a fresh socket is instantly writable.
        poller
            .modify(server_side.as_raw_fd(), 1, false, true)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        poller.remove(server_side.as_raw_fd());
    }
}
