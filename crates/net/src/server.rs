//! The connection-handling server: accept loop + fixed thread pool.
//!
//! One thread accepts; a fixed pool of workers owns connections end to
//! end (read → parse → dispatch → write, with keep-alive). Connections
//! are passed to workers over a crossbeam channel. Shutdown is graceful:
//! a flag flips, the listener is woken with a loopback connection, the
//! channel closes, and workers drain.

use crate::http::Response;
use crate::parser::{ParserConfig, RequestParser};
use crate::router::Router;
use bytes::BytesMut;
use crossbeam::channel::{bounded, Sender};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-request timing measured by the connection loop, handed to the
/// [`RequestObserver`] alongside the request/response pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestTiming {
    /// Time spent parsing this request out of the receive buffer,
    /// accumulated across partial reads of a slow-trickling client.
    pub parse: Duration,
    /// Time spent in routing + handler.
    pub dispatch: Duration,
    /// Whether this connection had already served an earlier request —
    /// i.e. the request rode a reused keep-alive connection.
    pub reused: bool,
}

/// Observer invoked after every dispatched request (access logging,
/// metrics). Runs on the connection's worker thread; keep it cheap.
pub type RequestObserver =
    Arc<dyn Fn(&crate::http::Request, &Response, &RequestTiming) + Send + Sync>;

/// Observer invoked each time the accept loop sheds a connection because
/// the worker queue is full. Runs on the accept thread; keep it cheap.
/// Without one installed, saturation is invisible — the whole point of
/// wiring this up is that dropped connections leave a trace.
pub type ShedObserver = Arc<dyn Fn() + Send + Sync>;

/// Server tuning.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-read socket timeout; a connection idle longer is dropped.
    pub read_timeout: Duration,
    /// Parser limits.
    pub parser: ParserConfig,
    /// Maximum queued connections awaiting a worker.
    pub backlog: usize,
    /// Optional per-request observer (access log / metrics hook).
    pub observer: Option<RequestObserver>,
    /// Optional observer for connections shed by a full worker queue.
    pub shed_observer: Option<ShedObserver>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("read_timeout", &self.read_timeout)
            .field("parser", &self.parser)
            .field("backlog", &self.backlog)
            .field("observer", &self.observer.is_some())
            .field("shed_observer", &self.shed_observer.is_some())
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_secs(10),
            parser: ParserConfig::default(),
            backlog: 256,
            observer: None,
            shed_observer: None,
        }
    }
}

/// A bound, running server.
#[derive(Debug)]
pub struct Server;

/// Handle to a running server: address + shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `router` until the handle is shut down or dropped.
    pub fn spawn(
        addr: &str,
        router: Router,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);

        let (tx, rx) = bounded::<TcpStream>(config.backlog);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let router = Arc::clone(&router);
                let config = config.clone();
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        // A broken connection affects only itself.
                        let _ = handle_connection(stream, &router, &config);
                    }
                })
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let shed_observer = config.shed_observer.clone();
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, tx, accept_shutdown, shed_observer);
        });

        Ok(ServerHandle {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    shutdown: Arc<AtomicBool>,
    shed_observer: Option<ShedObserver>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        match stream {
            Ok(s) => {
                // If the queue is full the connection is dropped — load
                // shedding beats unbounded queueing — but every shed is
                // reported so saturation stays diagnosable.
                if let Err(e) = tx.try_send(s) {
                    if e.is_full() {
                        if let Some(observer) = &shed_observer {
                            observer();
                        }
                    }
                }
            }
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
    // Dropping `tx` closes the channel; workers drain and exit.
}

/// Serves one connection until close, error, or idle timeout.
fn handle_connection(
    mut stream: TcpStream,
    router: &Router,
    config: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_nodelay(true)?;
    let parser = RequestParser::new(config.parser);
    let mut buf = BytesMut::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut served = 0usize;
    // Parse time accumulates across partial reads and resets per request.
    let mut parse_spent = Duration::ZERO;

    loop {
        // Parse everything already buffered before reading again.
        loop {
            let parse_started = Instant::now();
            let parsed = parser.parse(&mut buf);
            parse_spent += parse_started.elapsed();
            match parsed {
                Ok(Some(request)) => {
                    let close = request.headers.wants_close();
                    let dispatch_started = Instant::now();
                    let response = router.dispatch(&request);
                    let timing = RequestTiming {
                        parse: parse_spent,
                        dispatch: dispatch_started.elapsed(),
                        reused: served > 0,
                    };
                    parse_spent = Duration::ZERO;
                    served += 1;
                    if let Some(observer) = &config.observer {
                        observer(&request, &response, &timing);
                    }
                    stream.write_all(&response.to_bytes(close))?;
                    if close {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let status = e.status();
                    let response =
                        router.render_error(status, parse_error_code(status), &e.to_string());
                    let _ = stream.write_all(&response.to_bytes(true));
                    return Ok(());
                }
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or(&chunk));
    }
}

/// Machine-readable code for a parse-level error status, fed to the
/// router's error renderer so parser rejections share the application's
/// error body shape.
fn parse_error_code(status: crate::http::StatusCode) -> &'static str {
    match status.0 {
        413 => "payload_too_large",
        431 => "headers_too_large",
        _ => "bad_request",
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL for clients, e.g. `http://127.0.0.1:41234`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Requests shutdown and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::StatusCode;
    use std::io::BufRead;

    fn demo_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_, _| Response::text(StatusCode::OK, "pong"));
        r.post("/echo", |req, _| {
            Response::text(
                StatusCode::OK,
                String::from_utf8_lossy(&req.body).into_owned(),
            )
        });
        r
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_and_shuts_down() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.ends_with("pong"));
        h.shutdown();
    }

    #[test]
    fn echo_post_body() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
        );
        assert!(reply.ends_with("hello"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = std::io::BufReader::new(&s);
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            assert!(status.starts_with("HTTP/1.1 200"), "{status}");
            // Drain headers + body (Content-Length: 4).
            let mut line = String::new();
            let mut content_length = 0usize;
            loop {
                line.clear();
                reader.read_line(&mut line).unwrap();
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
                if line == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            assert_eq!(&body, b"pong");
        }
        h.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(h.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn unknown_route_is_404() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(h.addr(), "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn concurrent_requests_across_workers() {
        let h = Arc::new(
            Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap(),
        );
        let addr = h.addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let reply = raw_roundtrip(
                            addr,
                            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
                        );
                        assert!(reply.ends_with("pong"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn oversized_body_rejected_with_413() {
        let config = ServerConfig {
            parser: ParserConfig {
                max_body: 8,
                ..ParserConfig::default()
            },
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn observer_sees_every_request() {
        use std::sync::atomic::AtomicUsize;
        let hits = Arc::new(AtomicUsize::new(0));
        let statuses = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let config = ServerConfig {
            observer: Some({
                let hits = Arc::clone(&hits);
                let statuses = Arc::clone(&statuses);
                Arc::new(move |req, resp, timing| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    statuses
                        .lock()
                        .push((req.path.clone(), resp.status.0, *timing));
                })
            }),
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        raw_roundtrip(h.addr(), "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
        raw_roundtrip(h.addr(), "GET /missing HTTP/1.1\r\nConnection: close\r\n\r\n");
        h.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        let seen = statuses.lock();
        assert!(seen.iter().any(|(p, s, _)| p == "/ping" && *s == 200));
        assert!(seen.iter().any(|(p, s, _)| p == "/missing" && *s == 404));
        for (_, _, timing) in seen.iter() {
            assert!(timing.parse > Duration::ZERO, "parse time measured");
            assert!(!timing.reused, "fresh connections are not reuses");
        }
    }

    #[test]
    fn observer_timing_marks_keepalive_reuse() {
        let reuses = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let config = ServerConfig {
            observer: Some({
                let reuses = Arc::clone(&reuses);
                Arc::new(move |_req, _resp, timing: &RequestTiming| {
                    reuses.lock().push(timing.reused);
                })
            }),
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = std::io::BufReader::new(&s);
            let mut line = String::new();
            loop {
                line.clear();
                reader.read_line(&mut line).unwrap();
                if line == "\r\n" {
                    break;
                }
            }
            let mut body = [0u8; 4]; // "pong"
            reader.read_exact(&mut body).unwrap();
        }
        drop(s);
        h.shutdown();
        assert_eq!(&*reuses.lock(), &[false, true, true]);
    }

    #[test]
    fn sheds_are_observed_when_the_worker_queue_is_full() {
        use std::sync::atomic::AtomicUsize;
        let sheds = Arc::new(AtomicUsize::new(0));
        let config = ServerConfig {
            workers: 1,
            backlog: 1,
            read_timeout: Duration::from_millis(300),
            shed_observer: Some({
                let sheds = Arc::clone(&sheds);
                Arc::new(move || {
                    sheds.fetch_add(1, Ordering::SeqCst);
                })
            }),
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        // Stall the single worker with a half-sent request: it blocks in
        // read() until the timeout.
        let mut stall = TcpStream::connect(h.addr()).unwrap();
        stall.write_all(b"GET /ping HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // Flood: the 1-slot queue fills, the rest must be shed — and
        // every shed counted.
        let flood: Vec<_> = (0..16)
            .map(|_| TcpStream::connect(h.addr()).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            sheds.load(Ordering::SeqCst) >= 1,
            "saturation left no trace: 0 sheds observed"
        );
        drop(flood);
        drop(stall);
        h.shutdown();
    }

    #[test]
    fn parse_errors_render_through_the_router_error_renderer() {
        let mut router = demo_router();
        router.set_error_renderer(|status, code, message| {
            Response::text(status, format!("{code}: {message}"))
        });
        let config = ServerConfig {
            parser: ParserConfig {
                max_body: 8,
                ..ParserConfig::default()
            },
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", router, config).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        assert!(reply.contains("payload_too_large:"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let addr;
        {
            let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
            addr = h.addr();
            // handle dropped here
        }
        // After drop, connections should fail (give the OS a moment).
        std::thread::sleep(Duration::from_millis(50));
        let outcome = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        // Either refused outright, or accepted by a dying socket backlog —
        // but a subsequent request must not be served.
        if let Ok(mut s) = outcome {
            let _ = s.write_all(b"GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(!out.contains("pong"), "server still alive after drop");
        }
    }
}
