//! The connection-handling server: per-core reactor shards over a
//! shared non-blocking listener.
//!
//! `workers` reactor threads each run an epoll readiness loop
//! ([`crate::reactor`]): every shard registers a clone of the listener,
//! accepts into its own connection slab (so a connection lives on the
//! shard that accepted it), and multiplexes reads, dispatch, and writes
//! over non-blocking sockets. Thread count is therefore a function of
//! configuration, not of open connections — 10k idle keep-alive sockets
//! cost table entries, not stacks.
//!
//! Shedding happens at accept: past `backlog` open connections per
//! shard, new arrivals get a best-effort `503` envelope with
//! `Retry-After: 1` and are closed, and every shed is observable.
//! Shutdown flips a flag and wakes every shard; each drops all of its
//! connections — idle keep-alive ones included — on the next loop turn,
//! so `ServerHandle::shutdown()` is bounded by a poll wakeup, not by
//! `read_timeout`.

use crate::epoll::{Poller, Waker};
use crate::http::Response;
use crate::parser::ParserConfig;
use crate::reactor::{self, ShardContext, LISTENER_TOKEN, WAKER_TOKEN};
use crate::router::Router;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-request timing measured by the connection loop, handed to the
/// [`RequestObserver`] alongside the request/response pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestTiming {
    /// Time spent parsing this request out of the receive buffer,
    /// accumulated across partial reads of a slow-trickling client.
    pub parse: Duration,
    /// Time spent in routing + handler.
    pub dispatch: Duration,
    /// Whether this connection had already served an earlier request —
    /// i.e. the request rode a reused keep-alive connection.
    pub reused: bool,
}

/// Observer invoked after every dispatched request (access logging,
/// metrics). Runs on the connection's reactor shard; keep it cheap.
pub type RequestObserver =
    Arc<dyn Fn(&crate::http::Request, &Response, &RequestTiming) + Send + Sync>;

/// Observer invoked each time a shard sheds a connection because it is
/// at its open-connection cap. Runs on the reactor thread; keep it
/// cheap. Without one installed, saturation is invisible — the whole
/// point of wiring this up is that shed connections leave a trace.
pub type ShedObserver = Arc<dyn Fn() + Send + Sync>;

/// Server tuning.
#[derive(Clone)]
pub struct ServerConfig {
    /// Reactor shards (threads) multiplexing connections.
    pub workers: usize,
    /// Request deadline and keep-alive idle timeout: a connection must
    /// complete a request within this much of accept (or of its last
    /// response) or it is closed. Partial bytes do not extend the
    /// deadline — the anti-slow-loris property.
    pub read_timeout: Duration,
    /// Parser limits.
    pub parser: ParserConfig,
    /// Maximum open connections per reactor shard; arrivals beyond the
    /// cap are shed with a best-effort 503.
    pub backlog: usize,
    /// Optional per-request observer (access log / metrics hook).
    pub observer: Option<RequestObserver>,
    /// Optional observer for shed connections.
    pub shed_observer: Option<ShedObserver>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("read_timeout", &self.read_timeout)
            .field("parser", &self.parser)
            .field("backlog", &self.backlog)
            .field("observer", &self.observer.is_some())
            .field("shed_observer", &self.shed_observer.is_some())
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_secs(10),
            parser: ParserConfig::default(),
            backlog: 256,
            observer: None,
            shed_observer: None,
        }
    }
}

/// Live counters maintained by the reactor shards, exposed through
/// [`ServerHandle::stats`] so the metrics layer can publish
/// `loki_net_open_conns` / `loki_net_reactor_wakeups_total` gauges
/// without the hot path knowing about any metrics registry.
#[derive(Debug)]
pub struct NetStats {
    open: Vec<AtomicU64>,
    wakeups: Vec<AtomicU64>,
    // Per-shard like open/wakeups, so shard imbalance at the accept
    // gate (a hot listener shard, one shard shedding while others sit
    // idle) is visible in the `shard=` metric children, not averaged
    // away in a process-global total.
    accepted: Vec<AtomicU64>,
    shed: Vec<AtomicU64>,
}

impl NetStats {
    /// Creates a stats block for `shards` reactor shards.
    pub fn new(shards: usize) -> NetStats {
        let shards = shards.max(1);
        NetStats {
            open: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            wakeups: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            accepted: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of reactor shards.
    pub fn shards(&self) -> usize {
        self.open.len()
    }

    /// Open connections across all shards.
    pub fn open_conns(&self) -> u64 {
        self.open.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Open connections on one shard (0 for out-of-range shards).
    pub fn open_conns_for(&self, shard: usize) -> u64 {
        self.open
            .get(shard)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Reactor loop wakeups across all shards.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Reactor loop wakeups on one shard.
    pub fn wakeups_for(&self, shard: usize) -> u64 {
        self.wakeups
            .get(shard)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Total connections accepted (admitted or shed), across all shards.
    pub fn accepted(&self) -> u64 {
        self.accepted.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Connections accepted by one shard (0 for out-of-range shards).
    pub fn accepted_for(&self, shard: usize) -> u64 {
        self.accepted
            .get(shard)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Total connections shed at the accept gate, across all shards.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Connections shed by one shard (0 for out-of-range shards).
    pub fn shed_for(&self, shard: usize) -> u64 {
        self.shed
            .get(shard)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    pub(crate) fn record_open(&self, shard: usize) {
        if let Some(c) = self.open.get(shard) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_close(&self, shard: usize) {
        if let Some(c) = self.open.get(shard) {
            c.fetch_sub(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_wakeup(&self, shard: usize) {
        if let Some(c) = self.wakeups.get(shard) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_accept(&self, shard: usize) {
        if let Some(c) = self.accepted.get(shard) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_shed(&self, shard: usize) {
        if let Some(c) = self.shed.get(shard) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A bound, running server.
#[derive(Debug)]
pub struct Server;

/// Handle to a running server: address, live stats, shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shards: Vec<JoinHandle<()>>,
    wakers: Vec<Waker>,
    stats: Arc<NetStats>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `router` until the handle is shut down or dropped.
    pub fn spawn(
        addr: &str,
        router: Router,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let shard_count = config.workers.max(1);
        let stats = Arc::new(NetStats::new(shard_count));

        let mut wakers = Vec::with_capacity(shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let poller = Poller::new()?;
            let waker = Waker::new(&poller, WAKER_TOKEN)?;
            // Every shard polls its own clone of the listener fd
            // (level-triggered): accept races are resolved by the
            // kernel, and a connection stays on the shard that won it.
            let shard_listener = listener.try_clone()?;
            poller.add(shard_listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
            wakers.push(waker.clone());
            let ctx = ShardContext {
                shard,
                listener: shard_listener,
                poller,
                waker,
                router: Arc::clone(&router),
                config: config.clone(),
                shutdown: Arc::clone(&shutdown),
                stats: Arc::clone(&stats),
            };
            shards.push(
                std::thread::Builder::new()
                    .name(format!("loki-net-reactor-{shard}"))
                    .spawn(move || reactor::run(ctx))?,
            );
        }

        Ok(ServerHandle {
            addr: local,
            shutdown,
            shards,
            wakers,
            stats,
        })
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL for clients, e.g. `http://127.0.0.1:41234`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Live reactor counters (open connections, wakeups, sheds).
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Number of reactor shards serving this listener — the server's
    /// whole thread count, independent of open connections.
    pub fn reactor_shards(&self) -> usize {
        self.stats.shards()
    }

    /// Requests shutdown and joins all shards. Bounded: shards drop
    /// idle keep-alive connections on the next wakeup instead of
    /// waiting out `read_timeout`.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for waker in &self.wakers {
            waker.wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
        self.wakers.clear();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shards.is_empty() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::StatusCode;
    use crate::parser::ParserConfig;
    use std::io::{BufRead, Read, Write};
    use std::net::TcpStream;
    use std::time::Instant;

    fn demo_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_, _| Response::text(StatusCode::OK, "pong"));
        r.post("/echo", |req, _| {
            Response::text(
                StatusCode::OK,
                String::from_utf8_lossy(&req.body).into_owned(),
            )
        });
        r
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    /// Reads one response (status line + headers + Content-Length body)
    /// off a keep-alive connection.
    fn read_one_response(reader: &mut impl BufRead) -> (String, Vec<u8>) {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut line = String::new();
        let mut content_length = 0usize;
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
            if line == "\r\n" {
                break;
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn serves_and_shuts_down() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.ends_with("pong"));
        h.shutdown();
    }

    #[test]
    fn echo_post_body() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
        );
        assert!(reply.ends_with("hello"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = std::io::BufReader::new(&s);
            let (status, body) = read_one_response(&mut reader);
            assert!(status.starts_with("HTTP/1.1 200"), "{status}");
            assert_eq!(&body, b"pong");
        }
        h.shutdown();
    }

    #[test]
    fn pipelined_requests_all_answered() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Two requests in one segment; the second asks to close, so the
        // whole conversation is readable to EOF.
        s.write_all(
            b"GET /ping HTTP/1.1\r\n\r\nGET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 2, "{out}");
        assert!(out.ends_with("pong"));
        h.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(h.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn unknown_route_is_404() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(h.addr(), "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn http_1_0_closes_by_default() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        // No Connection header at all: 1.0 semantics close the socket,
        // so read_to_string terminates without our asking.
        let reply = raw_roundtrip(h.addr(), "GET /ping HTTP/1.0\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("Connection: close\r\n"), "{reply}");
        assert!(reply.ends_with("pong"));
        h.shutdown();
    }

    #[test]
    fn http_1_0_keep_alive_is_honored() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        for _ in 0..2 {
            s.write_all(b"GET /ping HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap();
            let mut reader = std::io::BufReader::new(&s);
            let (status, body) = read_one_response(&mut reader);
            assert!(status.starts_with("HTTP/1.1 200"), "{status}");
            assert_eq!(&body, b"pong");
        }
        h.shutdown();
    }

    #[test]
    fn connection_close_token_list_is_respected() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        // "keep-alive, close" — the buggy first-token-only reading kept
        // this open and the client would hang reading to EOF.
        let reply = raw_roundtrip(
            h.addr(),
            "GET /ping HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.ends_with("pong"));
        h.shutdown();
    }

    #[test]
    fn head_suppresses_body_but_keeps_content_length() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(h.addr(), "HEAD /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(
            reply.contains("Content-Length: 4\r\n"),
            "true GET length advertised: {reply}"
        );
        assert!(reply.ends_with("\r\n\r\n"), "no body octets: {reply:?}");
        h.shutdown();
    }

    #[test]
    fn concurrent_requests_across_workers() {
        let h = Arc::new(
            Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap(),
        );
        let addr = h.addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let reply = raw_roundtrip(
                            addr,
                            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
                        );
                        assert!(reply.ends_with("pong"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn oversized_body_rejected_with_413() {
        let config = ServerConfig {
            parser: ParserConfig {
                max_body: 8,
                ..ParserConfig::default()
            },
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn smuggling_shaped_content_length_is_rejected() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: +5\r\nConnection: close\r\n\r\nhello",
        );
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!",
        );
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn observer_sees_every_request() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Mutex;
        let hits = Arc::new(AtomicUsize::new(0));
        let statuses = Arc::new(Mutex::new(Vec::new()));
        let config = ServerConfig {
            observer: Some({
                let hits = Arc::clone(&hits);
                let statuses = Arc::clone(&statuses);
                Arc::new(move |req, resp, timing| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    statuses
                        .lock()
                        .unwrap()
                        .push((req.path.clone(), resp.status.0, *timing));
                })
            }),
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        raw_roundtrip(h.addr(), "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
        raw_roundtrip(h.addr(), "GET /missing HTTP/1.1\r\nConnection: close\r\n\r\n");
        h.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        let seen = statuses.lock().unwrap();
        assert!(seen.iter().any(|(p, s, _)| p == "/ping" && *s == 200));
        assert!(seen.iter().any(|(p, s, _)| p == "/missing" && *s == 404));
        for (_, _, timing) in seen.iter() {
            assert!(timing.parse > Duration::ZERO, "parse time measured");
            assert!(!timing.reused, "fresh connections are not reuses");
        }
    }

    #[test]
    fn observer_timing_marks_keepalive_reuse() {
        use std::sync::Mutex;
        let reuses = Arc::new(Mutex::new(Vec::new()));
        let config = ServerConfig {
            observer: Some({
                let reuses = Arc::clone(&reuses);
                Arc::new(move |_req, _resp, timing: &RequestTiming| {
                    reuses.lock().unwrap().push(timing.reused);
                })
            }),
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = std::io::BufReader::new(&s);
            let _ = read_one_response(&mut reader);
        }
        drop(s);
        h.shutdown();
        assert_eq!(&*reuses.lock().unwrap(), &[false, true, true]);
    }

    #[test]
    fn sheds_are_observed_when_the_worker_queue_is_full() {
        use std::sync::atomic::AtomicUsize;
        let sheds = Arc::new(AtomicUsize::new(0));
        // An application-style JSON renderer, to pin the envelope shape
        // a shed client actually receives.
        let mut router = demo_router();
        router.set_error_renderer(|status, code, _message| {
            Response::json_bytes(
                status,
                format!("{{\"error\":{{\"code\":\"{code}\"}}}}").into_bytes(),
            )
        });
        let config = ServerConfig {
            workers: 1,
            backlog: 1,
            read_timeout: Duration::from_millis(500),
            shed_observer: Some({
                let sheds = Arc::clone(&sheds);
                Arc::new(move || {
                    sheds.fetch_add(1, Ordering::SeqCst);
                })
            }),
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", router, config).unwrap();
        // Occupy the single connection slot with a half-sent request.
        let mut stall = TcpStream::connect(h.addr()).unwrap();
        stall.write_all(b"GET /ping HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Flood: every arrival past the cap must be shed — observably,
        // and with a 503 envelope rather than a silent RST.
        let flood: Vec<_> = (0..8)
            .map(|_| TcpStream::connect(h.addr()).unwrap())
            .collect();
        let mut envelopes = 0;
        for mut s in flood {
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut reply = String::new();
            if s.read_to_string(&mut reply).is_ok() && !reply.is_empty() {
                assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
                assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
                assert!(reply.contains("\"code\":\"shed\""), "{reply}");
                envelopes += 1;
            }
        }
        assert!(
            sheds.load(Ordering::SeqCst) >= 1,
            "saturation left no trace: 0 sheds observed"
        );
        assert!(envelopes >= 1, "no shed client saw the 503 envelope");
        assert!(h.stats().shed_total() >= 1, "stats missed the sheds");
        drop(stall);
        h.shutdown();
    }

    #[test]
    fn completed_requests_refresh_the_keepalive_deadline() {
        // The companion edge to the slow-loris rule: byte trickles never
        // refresh the deadline, but *completed* requests always do. Three
        // requests spaced just inside the timeout add up to well past it;
        // the connection must survive because each completion re-arms.
        let config = ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        let s = TcpStream::connect(h.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut writer = s.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(s);
        let started = Instant::now();
        for round in 0..3 {
            writer.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
            let (status, body) = read_one_response(&mut reader);
            assert!(status.contains("200"), "round {round}: {status}");
            assert_eq!(body, b"pong", "round {round}");
            std::thread::sleep(Duration::from_millis(220));
        }
        assert!(
            started.elapsed() > Duration::from_millis(600),
            "the rounds must outlive the 300ms idle deadline in total"
        );
        h.shutdown();
    }

    #[test]
    fn slow_loris_is_deadlined_without_blocking_others() {
        let config = ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", demo_router(), config).unwrap();
        // The loris: a partial request line, then a trickle.
        let mut loris = TcpStream::connect(h.addr()).unwrap();
        loris.write_all(b"GET /ping HTTP/1.1\r\nX-Slow: ").unwrap();

        // With one shard and the loris pending, normal traffic must
        // still be served promptly — the old thread-per-connection
        // design parked its only worker here for read_timeout.
        let started = Instant::now();
        let reply = raw_roundtrip(h.addr(), "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.ends_with("pong"), "{reply}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "request behind a loris took {:?}",
            started.elapsed()
        );

        // Trickling bytes does NOT extend the deadline: only a completed
        // request does. The loris gets closed ~read_timeout after accept.
        for _ in 0..6 {
            let _ = loris.write(b"a");
            std::thread::sleep(Duration::from_millis(150));
        }
        loris
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut sink = Vec::new();
        let outcome = loris.read_to_end(&mut sink);
        assert!(
            outcome.is_ok(),
            "loris socket should be closed by deadline, got {outcome:?}"
        );
        h.shutdown();
    }

    #[test]
    fn shutdown_is_bounded_despite_idle_keepalive_conns() {
        // Default read_timeout is 10s; shutdown must not wait it out.
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(&s);
        let (status, _) = read_one_response(&mut reader);
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        // `s` now sits idle in a shard's slab.
        let started = Instant::now();
        h.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "shutdown stalled {:?} behind an idle keep-alive connection",
            started.elapsed()
        );
    }

    #[test]
    fn stats_track_open_connections() {
        let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
        let stats = h.stats();
        assert_eq!(stats.shards(), 4);
        assert_eq!(stats.open_conns(), 0);
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(&s);
        let _ = read_one_response(&mut reader);
        assert_eq!(stats.open_conns(), 1, "keep-alive conn is counted");
        assert!(stats.accepted() >= 1);
        assert!(stats.wakeups() >= 1);
        drop(s);
        // The reactor notices the close on its next wakeup.
        let deadline = Instant::now() + Duration::from_secs(2);
        while stats.open_conns() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(stats.open_conns(), 0, "close was not accounted");
        h.shutdown();
    }

    #[test]
    fn parse_errors_render_through_the_router_error_renderer() {
        let mut router = demo_router();
        router.set_error_renderer(|status, code, message| {
            Response::text(status, format!("{code}: {message}"))
        });
        let config = ServerConfig {
            parser: ParserConfig {
                max_body: 8,
                ..ParserConfig::default()
            },
            ..ServerConfig::default()
        };
        let h = Server::spawn("127.0.0.1:0", router, config).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        assert!(reply.contains("payload_too_large:"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn bad_content_length_renders_its_own_code() {
        let mut router = demo_router();
        router.set_error_renderer(|status, code, message| {
            Response::text(status, format!("{code}: {message}"))
        });
        let h = Server::spawn("127.0.0.1:0", router, ServerConfig::default()).unwrap();
        let reply = raw_roundtrip(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello",
        );
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(reply.contains("bad_content_length:"), "{reply}");
        h.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let addr;
        {
            let h = Server::spawn("127.0.0.1:0", demo_router(), ServerConfig::default()).unwrap();
            addr = h.addr();
            // handle dropped here
        }
        // After drop, connections should fail (give the OS a moment).
        std::thread::sleep(Duration::from_millis(50));
        let outcome = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        // Either refused outright, or accepted by a dying socket backlog —
        // but a subsequent request must not be served.
        if let Ok(mut s) = outcome {
            let _ = s.write_all(b"GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(!out.contains("pong"), "server still alive after drop");
        }
    }
}
