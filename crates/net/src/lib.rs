//! # loki-net — a minimal blocking HTTP/1.1 framework over `std::net`
//!
//! The Django-substrate of the reproduction: the smallest web framework
//! that makes the Loki backend real rather than mocked. Design follows
//! the session's networking guides:
//!
//! * **Event-driven, explicit buffers** — requests are parsed
//!   incrementally out of a `bytes::BytesMut` receive buffer
//!   ([`parser`]); no line-at-a-time `BufRead` trickery, no hidden
//!   copies.
//! * **Simplicity over type tricks** — handlers are plain
//!   `Fn(&Request, &Params) -> Response` closures behind an `Arc`
//!   ([`router`]); no macro DSL, no generic middleware towers.
//! * **Robustness** — strict limits on request-line, header and body
//!   sizes; malformed input produces 4xx responses, never panics
//!   ([`parser`] error taxonomy); connections are handled by a fixed
//!   thread pool with graceful shutdown ([`server`]).
//! * **Std naming** — types mirror `std`/common-crate conventions:
//!   [`http::Request`], [`http::Response`], [`http::StatusCode`].
//!
//! The [`client`] module provides the matching blocking client used by
//! the Loki app library and the integration tests.

//! # Example
//!
//! ```
//! use loki_net::http::{Response, StatusCode};
//! use loki_net::router::Router;
//! use loki_net::server::{Server, ServerConfig};
//! use loki_net::client::HttpClient;
//!
//! let mut router = Router::new();
//! router.get("/hello/:name", |_, params| {
//!     Response::text(StatusCode::OK, format!("hi {}", params.get("name").unwrap()))
//! });
//! let handle = Server::spawn("127.0.0.1:0", router, ServerConfig::default()).unwrap();
//!
//! let client = HttpClient::new(&handle.base_url()).unwrap();
//! let reply = client.get("/hello/loki").unwrap();
//! assert_eq!(&reply.body[..], b"hi loki");
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod parser;
pub mod router;
pub mod server;

pub use client::HttpClient;
pub use http::{Headers, Method, Request, Response, StatusCode};
pub use router::{ErrorRenderer, Params, Router};
pub use server::{RequestObserver, RequestTiming, Server, ServerConfig, ServerHandle};
