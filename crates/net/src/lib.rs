//! # loki-net — a minimal evented HTTP/1.1 framework over `std::net`
//!
//! The Django-substrate of the reproduction: the smallest web framework
//! that makes the Loki backend real rather than mocked. Design follows
//! the session's networking guides:
//!
//! * **Event-driven, explicit buffers** — requests are parsed
//!   incrementally out of a `bytes::BytesMut` receive buffer
//!   ([`parser`]); no line-at-a-time `BufRead` trickery, no hidden
//!   copies.
//! * **C100K edge** — connections are multiplexed by a fixed set of
//!   per-core reactor shards over non-blocking sockets and an epoll
//!   readiness loop ([`server`]); thread count is a function of
//!   configuration, never of open connections. A timer wheel gives
//!   every connection a header deadline and keep-alive idle timeout, so
//!   slow-loris clients are structurally evicted and shutdown is
//!   bounded.
//! * **Simplicity over type tricks** — handlers are plain
//!   `Fn(&Request, &Params) -> Response` closures behind an `Arc`
//!   ([`router`]); no macro DSL, no generic middleware towers.
//! * **Robustness** — strict limits on request-line, header and body
//!   sizes; malformed input (including smuggling-shaped
//!   `Content-Length` values) produces 4xx responses, never panics
//!   ([`parser`] error taxonomy); connections past the per-shard cap
//!   are shed with an observable best-effort 503.
//! * **Std naming** — types mirror `std`/common-crate conventions:
//!   [`http::Request`], [`http::Response`], [`http::StatusCode`].
//!
//! The [`client`] module provides the matching blocking client used by
//! the Loki app library and the integration tests.

//! # Example
//!
//! ```
//! use loki_net::http::{Response, StatusCode};
//! use loki_net::router::Router;
//! use loki_net::server::{Server, ServerConfig};
//! use loki_net::client::HttpClient;
//!
//! let mut router = Router::new();
//! router.get("/hello/:name", |_, params| {
//!     Response::text(StatusCode::OK, format!("hi {}", params.get("name").unwrap()))
//! });
//! let handle = Server::spawn("127.0.0.1:0", router, ServerConfig::default()).unwrap();
//!
//! let client = HttpClient::new(&handle.base_url()).unwrap();
//! let reply = client.get("/hello/loki").unwrap();
//! assert_eq!(&reply.body[..], b"hi loki");
//! handle.shutdown();
//! ```

// The raw epoll/eventfd syscall wrapper is the one place unsafe is
// allowed (module-scoped in `epoll`); everything above it is safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod epoll;
pub mod http;
pub mod json;
pub mod parser;
mod reactor;
pub mod router;
pub mod server;

pub use client::HttpClient;
pub use http::{Headers, Method, Request, Response, StatusCode, Version};
pub use router::{ErrorRenderer, Params, Router};
pub use server::{
    NetStats, RequestObserver, RequestTiming, Server, ServerConfig, ServerHandle,
};
