//! JSON request/response helpers bridging serde and the HTTP types.

use crate::http::{Request, Response, StatusCode};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Serializes `value` into a JSON response with the given status.
///
/// Serialization failure becomes a 500 — it indicates a server bug, not
/// client input.
pub fn json_response<T: Serialize>(status: StatusCode, value: &T) -> Response {
    match serde_json::to_vec(value) {
        Ok(body) => Response::json_bytes(status, body),
        Err(e) => Response::text(
            StatusCode::INTERNAL_ERROR,
            format!("serialization failure: {e}"),
        ),
    }
}

/// An error JSON body `{"error": "..."}` with the given status.
pub fn json_error(status: StatusCode, message: impl AsRef<str>) -> Response {
    #[derive(Serialize)]
    struct ErrorBody<'a> {
        error: &'a str,
    }
    json_response(
        status,
        &ErrorBody {
            error: message.as_ref(),
        },
    )
}

/// Deserializes a request body, mapping failure to a 400/422 response the
/// handler can return directly.
pub fn parse_json_body<T: DeserializeOwned>(request: &Request) -> Result<T, Response> {
    if request.body.is_empty() {
        return Err(json_error(StatusCode::BAD_REQUEST, "empty body"));
    }
    serde_json::from_slice(&request.body)
        .map_err(|e| json_error(StatusCode::UNPROCESSABLE, format!("invalid JSON body: {e}")))
}

/// Deserializes a response body (client side).
pub fn parse_json_response<T: DeserializeOwned>(response: &Response) -> Result<T, String> {
    serde_json::from_slice(&response.body)
        .map_err(|e| format!("invalid JSON response ({}): {e}", response.status))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Payload {
        x: u32,
        name: String,
    }

    #[test]
    fn response_round_trip() {
        let p = Payload {
            x: 7,
            name: "loki".into(),
        };
        let resp = json_response(StatusCode::OK, &p);
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("content-type"), Some("application/json"));
        let back: Payload = parse_json_response(&resp).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn body_round_trip() {
        let req = Request::new(Method::Post, "/x")
            .with_body(serde_json::to_vec(&Payload { x: 1, name: "a".into() }).unwrap());
        let p: Payload = parse_json_body(&req).unwrap();
        assert_eq!(p.x, 1);
    }

    #[test]
    fn empty_body_is_400() {
        let req = Request::new(Method::Post, "/x");
        let err = parse_json_body::<Payload>(&req).unwrap_err();
        assert_eq!(err.status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn malformed_body_is_422() {
        let req = Request::new(Method::Post, "/x").with_body("{not json");
        let err = parse_json_body::<Payload>(&req).unwrap_err();
        assert_eq!(err.status, StatusCode::UNPROCESSABLE);
        assert!(String::from_utf8_lossy(&err.body).contains("invalid JSON"));
    }

    #[test]
    fn error_body_shape() {
        let resp = json_error(StatusCode::NOT_FOUND, "missing");
        let v: serde_json::Value = parse_json_response(&resp).unwrap();
        assert_eq!(v["error"], "missing");
    }

    #[test]
    fn bad_json_response_reported() {
        let resp = Response::text(StatusCode::OK, "not-json");
        assert!(parse_json_response::<Payload>(&resp).is_err());
    }
}
