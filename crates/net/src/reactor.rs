//! Per-shard readiness loop: the evented replacement for
//! thread-per-connection.
//!
//! Each reactor shard owns a [`Poller`], a clone of the shared
//! non-blocking listener, and every connection it accepts, end to end.
//! A connection is a small state machine — reading → dispatching →
//! writing → keep-alive idle — driven by readiness events over the
//! existing incremental [`RequestParser`], so one thread multiplexes
//! thousands of idle keep-alive sockets instead of parking on one.
//!
//! A hashed timer wheel gives every connection a single deadline:
//! complete a request within `read_timeout` of accept (or of the last
//! served response) or be closed. Because the deadline only refreshes on
//! *completed* requests, a slow-loris client trickling header bytes
//! cannot extend it — the structural fix for the "one byte per 9 s pins
//! a worker forever" bug. The same mechanism bounds shutdown: the flag
//! flips, wakers fire, and each shard drops its connections (idle ones
//! included) on the next loop turn instead of stalling out a blocking
//! `read`.

use crate::epoll::{Event, Poller, Waker};
use crate::http::{Method, StatusCode};
use crate::parser::{ParseError, RequestParser};
use crate::router::Router;
use crate::server::{NetStats, RequestTiming, ServerConfig};
use bytes::BytesMut;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poller token for the shared listener.
pub(crate) const LISTENER_TOKEN: u64 = u64::MAX;
/// Poller token for the shard's waker.
pub(crate) const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Timer wheel granularity. Deadlines fire up to one tick late, never
/// early.
const TICK: Duration = Duration::from_millis(100);
/// Timer wheel slots; horizon = TICK × SLOTS (51.2 s). Deadlines beyond
/// the horizon park at the last slot and re-insert on fire.
const WHEEL_SLOTS: usize = 512;
/// Per-readiness-event read budget (chunks of 4 KiB) so one firehose
/// client cannot starve the rest of the shard; level-triggered polling
/// re-delivers whatever is left.
const READ_CHUNKS_PER_EVENT: usize = 16;
/// Accepts drained per listener event, for the same fairness reason.
const ACCEPTS_PER_EVENT: usize = 256;

/// Everything a shard thread owns.
pub(crate) struct ShardContext {
    pub shard: usize,
    pub listener: TcpListener,
    pub poller: Poller,
    pub waker: Waker,
    pub router: Arc<Router>,
    pub config: ServerConfig,
    pub shutdown: Arc<AtomicBool>,
    pub stats: Arc<NetStats>,
}

fn pack(idx: u32, gen: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(idx)
}

fn unpack(token: u64) -> (u32, u32) {
    (token as u32, (token >> 32) as u32)
}

// ------------------------------------------------------------------ conn

/// One connection's state between readiness events.
struct Conn {
    stream: TcpStream,
    /// Receive buffer the incremental parser consumes from.
    buf: BytesMut,
    /// Serialized responses awaiting the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Requests served (drives `RequestTiming::reused`).
    served: usize,
    /// Parse time accumulated across partial reads of the current
    /// request.
    parse_spent: Duration,
    /// Absolute deadline: complete a request by then or be closed.
    deadline: Instant,
    close_after_write: bool,
    peer_eof: bool,
    /// Whether the poller registration currently includes writability.
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, deadline: Instant) -> Conn {
        Conn {
            stream,
            buf: BytesMut::with_capacity(4096),
            out: Vec::new(),
            out_pos: 0,
            served: 0,
            parse_spent: Duration::ZERO,
            deadline,
            close_after_write: false,
            peer_eof: false,
            want_write: false,
        }
    }

    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

// ------------------------------------------------------------------ slab

/// Generation-tagged connection slab: tokens carry `(index, generation)`
/// so a readiness event for a closed-and-reused slot is detected as
/// stale instead of driving the wrong connection.
struct Slab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn insert(&mut self, conn: Conn) -> (u32, u32) {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                slot.conn = Some(conn);
                return (idx, slot.gen);
            }
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot {
            gen: 0,
            conn: Some(conn),
        });
        (idx, 0)
    }

    fn get_mut(&mut self, idx: u32, gen: u32) -> Option<&mut Conn> {
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.gen != gen {
            return None;
        }
        slot.conn.as_mut()
    }

    /// Frees a slot, bumping its generation so in-flight tokens go
    /// stale.
    fn remove(&mut self, idx: u32) -> Option<Conn> {
        let slot = self.slots.get_mut(idx as usize)?;
        let conn = slot.conn.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        Some(conn)
    }

    fn drain(&mut self) -> Vec<Conn> {
        let mut out = Vec::with_capacity(self.live);
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if let Some(conn) = slot.conn.take() {
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(idx as u32);
                out.push(conn);
            }
        }
        self.live = 0;
        out
    }
}

// ----------------------------------------------------------- timer wheel

/// Hashed timer wheel over fixed ticks. Entries are `(idx, gen)` hints:
/// on fire the connection's *actual* deadline is consulted, and entries
/// whose deadline moved (the connection served another request) or went
/// stale (closed slot) are re-inserted or dropped. Lazy re-insertion
/// keeps `schedule` O(1) with no removal bookkeeping.
struct TimerWheel {
    slots: Vec<Vec<(u32, u32)>>,
    tick: Duration,
    start: Instant,
    /// Next tick index not yet fired.
    cursor: u64,
}

impl TimerWheel {
    fn new(tick: Duration, nslots: usize, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..nslots.max(2)).map(|_| Vec::new()).collect(),
            tick,
            start: now,
            cursor: 0,
        }
    }

    fn tick_index(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.start).as_nanos();
        (since / self.tick.as_nanos().max(1)) as u64
    }

    fn schedule(&mut self, idx: u32, gen: u32, deadline: Instant) {
        let n = self.slots.len() as u64;
        // +1: fire on the first tick boundary at-or-after the deadline.
        let mut t = self.tick_index(deadline) + 1;
        if t < self.cursor {
            t = self.cursor;
        }
        if t >= self.cursor + n {
            // Beyond the horizon: park at the last slot; the fire-time
            // deadline check re-inserts for the remainder.
            t = self.cursor + n - 1;
        }
        if let Some(slot) = self.slots.get_mut((t % n) as usize) {
            slot.push((idx, gen));
        }
    }

    /// Time until the next tick with entries, `None` when the wheel is
    /// empty (sleep until externally woken).
    fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        let n = self.slots.len() as u64;
        let t = (0..n)
            .map(|off| self.cursor + off)
            .find(|t| {
                self.slots
                    .get((t % n) as usize)
                    .is_some_and(|s| !s.is_empty())
            })?;
        let fire_at = self.start + Duration::from_nanos((self.tick.as_nanos() as u64).saturating_mul(t));
        Some(fire_at.saturating_duration_since(now))
    }

    /// Fires every entry in ticks up to `now`.
    fn advance(&mut self, now: Instant, mut expired: impl FnMut(u32, u32)) {
        let target = self.tick_index(now);
        if target < self.cursor {
            return;
        }
        let n = self.slots.len() as u64;
        // A long sleep may skip more than a full rotation; each slot
        // only needs visiting once.
        let span = (target - self.cursor + 1).min(n);
        for i in 0..span {
            let t = self.cursor + i;
            if let Some(slot) = self.slots.get_mut((t % n) as usize) {
                for (idx, gen) in std::mem::take(slot) {
                    expired(idx, gen);
                }
            }
        }
        self.cursor = target + 1;
    }
}

// ------------------------------------------------------------- the loop

/// Runs one reactor shard until shutdown.
pub(crate) fn run(ctx: ShardContext) {
    let ShardContext {
        shard,
        listener,
        poller,
        waker,
        router,
        config,
        shutdown,
        stats,
    } = ctx;
    let mut slab = Slab::new();
    let mut wheel = TimerWheel::new(TICK, WHEEL_SLOTS, Instant::now());
    let mut events: Vec<Event> = Vec::with_capacity(256);
    // Continuous profiling: each shard thread is sampled by name; the
    // phase tags below split its wall-clock into epoll wait vs. accept
    // vs. connection I/O + dispatch vs. timer work.
    let _prof = loki_obs::prof::register_thread("net.reactor", shard.min(usize::from(u16::MAX)) as u16);

    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let timeout = wheel.next_wakeup(Instant::now());
        events.clear();
        loki_obs::phase!("reactor.epoll_wait");
        if poller.wait(&mut events, timeout).is_err() {
            // A broken poller is unrecoverable for this shard; other
            // shards keep the listener served.
            break;
        }
        stats.record_wakeup(shard);
        if shutdown.load(Ordering::Acquire) {
            break;
        }

        for i in 0..events.len() {
            let Some(ev) = events.get(i).copied() else {
                break;
            };
            match ev.token {
                WAKER_TOKEN => waker.drain(),
                LISTENER_TOKEN => {
                    loki_obs::phase!("reactor.accept");
                    accept_burst(
                        &listener, &poller, &mut slab, &mut wheel, &router, &config, &stats,
                        shard,
                    );
                }
                token => {
                    let (idx, gen) = unpack(token);
                    // Covers reads, router dispatch and writes; the
                    // store's own tags refine it during a submit.
                    loki_obs::phase!("reactor.dispatch");
                    drive_conn(
                        &poller, &mut slab, &mut wheel, &router, &config, &shutdown, &stats,
                        shard, idx, gen, ev,
                    );
                }
            }
        }

        // Fire deadlines. Entries are hints: a connection whose deadline
        // moved since scheduling is re-armed for the remainder.
        loki_obs::phase!("reactor.timers");
        let now = Instant::now();
        let mut fired: Vec<(u32, u32)> = Vec::new();
        wheel.advance(now, |idx, gen| fired.push((idx, gen)));
        for (idx, gen) in fired {
            let deadline = match slab.get_mut(idx, gen) {
                Some(conn) => conn.deadline,
                None => continue,
            };
            if deadline <= now {
                close_conn(&poller, &mut slab, &stats, shard, idx);
            } else {
                wheel.schedule(idx, gen, deadline);
            }
        }
    }

    // Shutdown: drop every connection — including idle keep-alive ones,
    // which is what bounds `ServerHandle::shutdown()`.
    for conn in slab.drain() {
        poller.remove(conn.stream.as_raw_fd());
        stats.record_close(shard);
    }
}

/// Drains the accept queue: admit up to the per-shard cap, shed the
/// rest with a best-effort 503 envelope.
#[allow(clippy::too_many_arguments)]
fn accept_burst(
    listener: &TcpListener,
    poller: &Poller,
    slab: &mut Slab,
    wheel: &mut TimerWheel,
    router: &Router,
    config: &ServerConfig,
    stats: &NetStats,
    shard: usize,
) {
    for _ in 0..ACCEPTS_PER_EVENT {
        match listener.accept() {
            Ok((stream, _)) => {
                stats.record_accept(shard);
                if slab.len() >= config.backlog.max(1) {
                    shed(stream, router, config);
                    stats.record_shed(shard);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let deadline = Instant::now() + config.read_timeout;
                let fd = stream.as_raw_fd();
                let (idx, gen) = slab.insert(Conn::new(stream, deadline));
                if poller.add(fd, pack(idx, gen), true, false).is_err() {
                    slab.remove(idx);
                    continue;
                }
                wheel.schedule(idx, gen, deadline);
                stats.record_open(shard);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Sheds a connection at capacity: observer, best-effort
/// `503 Retry-After: 1` through the router's error renderer, close. A
/// silent RST would leave clients guessing; the envelope tells them to
/// back off briefly and retry.
fn shed(mut stream: TcpStream, router: &Router, config: &ServerConfig) {
    if let Some(observer) = &config.shed_observer {
        observer();
    }
    let mut response = router.render_error(
        StatusCode::SERVICE_UNAVAILABLE,
        "shed",
        "server at connection capacity",
    );
    response.headers.insert("Retry-After", "1");
    let bytes = response.serialize(true, false);
    // One non-blocking write: a fresh socket's send buffer takes a small
    // envelope essentially always, and a peer that can't is not worth
    // waiting on while at capacity.
    let _ = stream.set_nonblocking(true);
    let _ = stream.write(&bytes);
}

enum Flush {
    Done,
    Pending,
    Broken,
}

fn flush_out(conn: &mut Conn) -> Flush {
    while conn.out_pending() {
        let rest = conn.out.get(conn.out_pos..).unwrap_or_default();
        match conn.stream.write(rest) {
            Ok(0) => return Flush::Broken,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flush::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Broken,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    Flush::Done
}

/// Reads a bounded burst into the connection buffer. Returns `false` on
/// a fatal socket error.
fn read_burst(conn: &mut Conn) -> bool {
    let mut chunk = [0u8; 4096];
    for _ in 0..READ_CHUNKS_PER_EVENT {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => conn.buf.extend_from_slice(chunk.get(..n).unwrap_or(&chunk)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

/// Parses and dispatches every complete request in the buffer,
/// serializing responses into `out`. Returns whether any request
/// completed (which refreshes the deadline).
fn process_requests(
    conn: &mut Conn,
    parser: &RequestParser,
    router: &Router,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> bool {
    let mut progressed = false;
    loop {
        let parse_started = Instant::now();
        let parsed = parser.parse(&mut conn.buf);
        conn.parse_spent += parse_started.elapsed();
        match parsed {
            Ok(Some(request)) => {
                // In-flight requests finish during shutdown, but their
                // connections don't outlive it.
                let close = request.wants_close() || shutdown.load(Ordering::Acquire);
                let head = request.method == Method::Head;
                let dispatch_started = Instant::now();
                let response = router.dispatch(&request);
                let timing = RequestTiming {
                    parse: conn.parse_spent,
                    dispatch: dispatch_started.elapsed(),
                    reused: conn.served > 0,
                };
                conn.parse_spent = Duration::ZERO;
                conn.served += 1;
                if let Some(observer) = &config.observer {
                    observer(&request, &response, &timing);
                }
                conn.out.extend_from_slice(&response.serialize(close, head));
                progressed = true;
                if close {
                    conn.close_after_write = true;
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                conn.parse_spent = Duration::ZERO;
                let response =
                    router.render_error(e.status(), parse_error_code(&e), &e.to_string());
                conn.out.extend_from_slice(&response.serialize(true, false));
                conn.close_after_write = true;
                break;
            }
        }
    }
    progressed
}

/// Machine-readable code for a parse-level error, fed to the router's
/// error renderer so parser rejections share the application's error
/// body shape.
pub(crate) fn parse_error_code(e: &ParseError) -> &'static str {
    match e {
        ParseError::BodyTooLarge => "payload_too_large",
        ParseError::HeadersTooLarge | ParseError::RequestLineTooLong => "headers_too_large",
        ParseError::BadContentLength => "bad_content_length",
        _ => "bad_request",
    }
}

/// Drives one connection through its state machine for one readiness
/// event.
#[allow(clippy::too_many_arguments)]
fn drive_conn(
    poller: &Poller,
    slab: &mut Slab,
    wheel: &mut TimerWheel,
    router: &Router,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    stats: &NetStats,
    shard: usize,
    idx: u32,
    gen: u32,
    ev: Event,
) {
    let parser = RequestParser::new(config.parser);
    enum Verdict {
        Keep,
        Close,
    }
    let verdict = 'conn: {
        let Some(conn) = slab.get_mut(idx, gen) else {
            return; // stale token: slot was closed (and possibly reused)
        };

        if ev.writable && conn.out_pending() {
            if let Flush::Broken = flush_out(conn) {
                break 'conn Verdict::Close;
            }
        }

        // Backpressure: while a response is queued, the socket's read
        // side stays idle so a pipelining firehose can't balloon `out`.
        if ev.readable && !conn.peer_eof && !conn.out_pending() && !read_burst(conn) {
            break 'conn Verdict::Close;
        }

        if !conn.close_after_write && !conn.out_pending() {
            let progressed = process_requests(conn, &parser, router, config, shutdown);
            if progressed {
                conn.deadline = Instant::now() + config.read_timeout;
                wheel.schedule(idx, gen, conn.deadline);
            }
        }

        match flush_out(conn) {
            Flush::Broken => break 'conn Verdict::Close,
            Flush::Done => {
                if conn.close_after_write || conn.peer_eof {
                    break 'conn Verdict::Close;
                }
                if conn.want_write {
                    conn.want_write = false;
                    let fd = conn.stream.as_raw_fd();
                    if poller.modify(fd, pack(idx, gen), true, false).is_err() {
                        break 'conn Verdict::Close;
                    }
                }
            }
            Flush::Pending => {
                if !conn.want_write {
                    conn.want_write = true;
                    let fd = conn.stream.as_raw_fd();
                    if poller.modify(fd, pack(idx, gen), false, true).is_err() {
                        break 'conn Verdict::Close;
                    }
                }
            }
        }
        Verdict::Keep
    };
    if let Verdict::Close = verdict {
        close_conn(poller, slab, stats, shard, idx);
    }
}

fn close_conn(poller: &Poller, slab: &mut Slab, stats: &NetStats, shard: usize, idx: u32) {
    if let Some(conn) = slab.remove(idx) {
        poller.remove(conn.stream.as_raw_fd());
        stats.record_close(shard);
        // Dropping the stream closes the fd.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_conn(deadline: Instant) -> Conn {
        // A socket pair is overkill for slab bookkeeping tests; a bound
        // listener-backed stream is the cheapest real TcpStream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Conn::new(stream, deadline)
    }

    #[test]
    fn slab_reuses_slots_with_fresh_generations() {
        let mut slab = Slab::new();
        let deadline = Instant::now();
        let (i0, g0) = slab.insert(dummy_conn(deadline));
        assert_eq!((i0, g0), (0, 0));
        assert!(slab.get_mut(i0, g0).is_some());
        assert!(slab.get_mut(i0, g0 + 1).is_none(), "wrong gen is stale");

        slab.remove(i0).unwrap();
        assert_eq!(slab.len(), 0);
        assert!(slab.get_mut(i0, g0).is_none(), "freed slot is stale");

        let (i1, g1) = slab.insert(dummy_conn(deadline));
        assert_eq!(i1, i0, "slot reused");
        assert_eq!(g1, g0 + 1, "generation bumped");
        assert!(slab.get_mut(i0, g0).is_none(), "old token stays stale");
        assert!(slab.get_mut(i1, g1).is_some());
    }

    #[test]
    fn slab_drain_empties_everything() {
        let mut slab = Slab::new();
        let deadline = Instant::now();
        for _ in 0..5 {
            slab.insert(dummy_conn(deadline));
        }
        assert_eq!(slab.len(), 5);
        assert_eq!(slab.drain().len(), 5);
        assert_eq!(slab.len(), 0);
    }

    #[test]
    fn wheel_fires_after_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 16, t0);
        wheel.schedule(1, 0, t0 + Duration::from_millis(25));

        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(20), |i, g| fired.push((i, g)));
        assert!(fired.is_empty(), "not due yet");
        wheel.advance(t0 + Duration::from_millis(50), |i, g| fired.push((i, g)));
        assert_eq!(fired, vec![(1, 0)]);
    }

    #[test]
    fn wheel_parks_beyond_horizon_entries_at_the_rim() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4, t0);
        // Horizon is 40ms; a 10s deadline must still fire eventually
        // (the caller re-inserts using the conn's real deadline).
        wheel.schedule(9, 3, t0 + Duration::from_secs(10));
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(100), |i, g| fired.push((i, g)));
        assert_eq!(fired, vec![(9, 3)], "rim entry fires within one rotation");
    }

    #[test]
    fn wheel_next_wakeup_tracks_earliest_entry() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 64, t0);
        assert!(wheel.next_wakeup(t0).is_none(), "empty wheel sleeps forever");
        wheel.schedule(1, 0, t0 + Duration::from_millis(200));
        let wake = wheel.next_wakeup(t0).unwrap();
        assert!(wake >= Duration::from_millis(190), "{wake:?}");
        assert!(wake <= Duration::from_millis(220), "{wake:?}");
    }

    #[test]
    fn wheel_long_idle_fires_all_slots_once() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 8, t0);
        for i in 0..8u32 {
            wheel.schedule(i, 0, t0 + Duration::from_millis(u64::from(i)));
        }
        // Sleep far past several full rotations.
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_secs(5), |i, _| fired.push(i));
        fired.sort_unstable();
        assert_eq!(fired, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn wheel_boundary_exact_deadline_fires_strictly_after_not_at() {
        // A deadline that lands *exactly* on a tick boundary must not
        // fire at that boundary: `schedule`'s +1 puts it on the first
        // boundary at-or-after the deadline, so a request finishing at
        // the instant its tick fires can never be evicted by the very
        // tick that saw it complete.
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(tick, 16, t0);
        let boundary = t0 + tick * 3; // exactly tick index 3
        wheel.schedule(5, 0, boundary);

        let mut fired = Vec::new();
        wheel.advance(boundary, |i, g| fired.push((i, g)));
        assert!(fired.is_empty(), "fired at its own boundary: {fired:?}");
        wheel.advance(boundary + tick, |i, g| fired.push((i, g)));
        assert_eq!(fired, vec![(5, 0)], "fires on the next boundary");
    }

    #[test]
    fn completed_request_on_tick_boundary_rearms_without_eviction() {
        // Regression for the PR-8 keep-alive rule, replaying the event
        // loop's own fire-time check: a request completes exactly on a
        // wheel-tick boundary and refreshes `conn.deadline`; the stale
        // wheel entry later fires as a *hint*, and because the real
        // deadline moved, the loop re-arms instead of closing. Only the
        // connection's deadline is authoritative — never the hint.
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        let timeout = tick * 4;
        let mut wheel = TimerWheel::new(tick, 16, t0);
        let mut slab = Slab::new();

        let first_deadline = t0 + timeout; // exactly tick index 4
        let (idx, gen) = slab.insert(dummy_conn(first_deadline));
        wheel.schedule(idx, gen, first_deadline);

        // The request completes exactly at the original deadline's
        // boundary; run() refreshes on completed requests only.
        let refreshed = first_deadline + timeout;
        slab.get_mut(idx, gen).unwrap().deadline = refreshed;
        wheel.schedule(idx, gen, refreshed);

        // The stale hint fires one tick after the old boundary; the
        // loop's check sees deadline > now and must keep the conn.
        let mut evicted = Vec::new();
        let mut fired = Vec::new();
        wheel.advance(first_deadline + tick, |i, g| fired.push((i, g)));
        assert!(!fired.is_empty(), "stale hint fires");
        for (i, g) in fired.drain(..) {
            let deadline = slab.get_mut(i, g).unwrap().deadline;
            let now = first_deadline + tick;
            if deadline <= now {
                evicted.push((i, g));
            } else {
                wheel.schedule(i, g, deadline);
            }
        }
        assert!(evicted.is_empty(), "spurious eviction: {evicted:?}");
        assert!(slab.get_mut(idx, gen).is_some(), "connection survives");

        // With no further requests, the refreshed deadline does evict —
        // trickling time (or bytes) past it never re-arms anything. The
        // hint may fire more than once (refresh + re-arm both scheduled
        // an entry); duplicates are harmless because the first close
        // leaves the slot stale for the rest.
        wheel.advance(refreshed + tick, |i, g| fired.push((i, g)));
        let due: Vec<_> = fired
            .drain(..)
            .filter(|&(i, g)| {
                slab.get_mut(i, g)
                    .is_some_and(|c| c.deadline <= refreshed + tick)
            })
            .collect();
        assert!(!due.is_empty(), "idle conn expires at the refreshed deadline");
        assert!(due.iter().all(|&e| e == (idx, gen)), "{due:?}");
    }

    #[test]
    fn token_packing_round_trips() {
        for (idx, gen) in [(0, 0), (1, 0), (0, 1), (77, 12345), (u32::MAX - 2, 7)] {
            assert_eq!(unpack(pack(idx, gen)), (idx, gen));
        }
        assert_ne!(pack(u32::MAX - 2, u32::MAX), LISTENER_TOKEN);
    }

    #[test]
    fn parse_error_codes_map() {
        assert_eq!(parse_error_code(&ParseError::BodyTooLarge), "payload_too_large");
        assert_eq!(parse_error_code(&ParseError::HeadersTooLarge), "headers_too_large");
        assert_eq!(
            parse_error_code(&ParseError::BadContentLength),
            "bad_content_length"
        );
        assert_eq!(parse_error_code(&ParseError::BadMethod), "bad_request");
    }
}
