//! The marketplace: a deterministic discrete-event simulator.
//!
//! In the spirit of the event-driven networking stacks in the guides, the
//! engine is a single binary-heap event queue with no threads and no
//! global clock — given the same seed and worker pool, a campaign replays
//! identically.
//!
//! The model: a requester posts a survey task with a response quota.
//! Each eligible worker (one who hasn't taken this survey) browses the
//! task list and arrives after an exponentially-distributed delay; on
//! arrival they accept with a reward-dependent probability, then complete
//! the survey after a service time. Completions are paid and recorded
//! until the quota fills.

use crate::behavior::BehaviorModel;
use crate::cost::CostLedger;
use crate::idpolicy::IdPolicy;
use crate::spec::SurveySpec;
use crate::worker::{WorkerId, WorkerProfile};
use loki_survey::response::ResponseSet;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Tuning knobs for the marketplace.
#[derive(Debug, Clone, Copy)]
pub struct MarketplaceConfig {
    /// Secret key from which reported worker IDs are derived.
    pub platform_key: u64,
    /// How worker IDs are reported to requesters.
    pub id_policy: IdPolicy,
    /// Aggregator markup in basis points (2000 = 20%, CrowdFlower-style).
    pub markup_bps: u32,
    /// Mean hours until an eligible worker notices a posted task.
    pub mean_arrival_hours: f64,
    /// Mean minutes to complete a survey once accepted.
    pub mean_service_minutes: f64,
    /// Probability an arriving worker accepts the task.
    pub acceptance_prob: f64,
}

impl Default for MarketplaceConfig {
    fn default() -> Self {
        MarketplaceConfig {
            platform_key: 0x10C4_15EA_F00D_CAFE,
            id_policy: IdPolicy::Stable,
            markup_bps: 1500,
            mean_arrival_hours: 24.0,
            mean_service_minutes: 6.0,
            acceptance_prob: 0.85,
        }
    }
}

/// What a posted task produced.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// Collected responses, in completion order, keyed by *reported* IDs.
    pub responses: ResponseSet,
    /// Simulated hours from posting to the last completion (0 if none).
    pub elapsed_hours: f64,
    /// Number of workers who saw the task but declined.
    pub declined: usize,
}

/// Simulated event: a worker arrives at the task, or finishes it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival(WorkerId),
    Completion(WorkerId),
}

/// Queue entry ordered by time. Ties break on the sequence number so heap
/// order (and therefore the whole simulation) is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time_hours: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time_hours
            .total_cmp(&other.time_hours)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The marketplace itself: a worker pool plus campaign state.
#[derive(Debug)]
pub struct Marketplace {
    config: MarketplaceConfig,
    workers: Vec<(WorkerProfile, BehaviorModel)>,
    taken: HashMap<WorkerId, HashSet<loki_survey::SurveyId>>,
    costs: CostLedger,
    rng: ChaCha20Rng,
    submission_seq: u64,
}

impl Marketplace {
    /// Creates a marketplace over a worker pool.
    pub fn new(
        config: MarketplaceConfig,
        workers: Vec<(WorkerProfile, BehaviorModel)>,
        seed: u64,
    ) -> Marketplace {
        let costs = CostLedger::new(config.markup_bps);
        Marketplace {
            config,
            workers,
            taken: HashMap::new(),
            costs,
            rng: ChaCha20Rng::seed_from_u64(seed),
            submission_seq: 0,
        }
    }

    /// Number of workers in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The cost ledger so far.
    pub fn costs(&self) -> &CostLedger {
        &self.costs
    }

    /// How many distinct surveys a worker has completed.
    pub fn surveys_taken(&self, worker: WorkerId) -> usize {
        self.taken.get(&worker).map_or(0, HashSet::len)
    }

    /// Exponential service/arrival delay with the given mean.
    fn exp_delay(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() * mean
    }

    /// Posts a survey task with a response quota and runs the simulation
    /// until the quota fills or no eligible workers remain.
    ///
    /// # Panics
    /// Panics if `quota == 0`.
    pub fn post_task(&mut self, spec: &SurveySpec, quota: usize) -> TaskOutcome {
        assert!(quota > 0, "task quota must be positive");

        // Schedule arrivals for every eligible worker.
        let mut events = BinaryHeap::new();
        let mut seq = 0u64;
        let eligible: Vec<WorkerId> = self
            .workers
            .iter()
            .map(|(w, _)| w.id)
            .filter(|id| {
                self.taken
                    .get(id)
                    .is_none_or(|s| !s.contains(&spec.survey.id))
            })
            .collect();
        for id in eligible {
            let t = self.exp_delay(self.config.mean_arrival_hours);
            events.push(Reverse(Event {
                time_hours: t,
                seq,
                kind: EventKind::Arrival(id),
            }));
            seq += 1;
        }

        let mut responses = ResponseSet::new();
        let mut declined = 0usize;
        let mut accepted = 0usize; // accepted but not yet completed + completed
        let mut last_completion = 0.0f64;

        while let Some(Reverse(ev)) = events.pop() {
            match ev.kind {
                EventKind::Arrival(id) => {
                    if accepted >= quota {
                        // Task already fully claimed; the worker moves on.
                        continue;
                    }
                    if self.rng.gen_bool(self.config.acceptance_prob.clamp(0.0, 1.0)) {
                        accepted += 1;
                        let service = self.exp_delay(self.config.mean_service_minutes / 60.0);
                        events.push(Reverse(Event {
                            time_hours: ev.time_hours + service,
                            seq,
                            kind: EventKind::Completion(id),
                        }));
                        seq += 1;
                    } else {
                        declined += 1;
                    }
                }
                EventKind::Completion(id) => {
                    let (profile, behavior) = self
                        .workers
                        .iter()
                        .find(|(w, _)| w.id == id)
                        .expect("completion for unknown worker")
                        .clone();
                    let reported = self.config.id_policy.reported_id(
                        self.config.platform_key,
                        id,
                        spec.survey.id,
                        self.submission_seq,
                    );
                    self.submission_seq += 1;
                    let response = behavior.respond(&mut self.rng, &profile, spec, &reported);
                    debug_assert!(response.validate(&spec.survey).is_ok());
                    responses.push(response);
                    self.taken.entry(id).or_default().insert(spec.survey.id);
                    self.costs
                        .record_payment(spec.survey.id, spec.survey.reward_cents);
                    last_completion = last_completion.max(ev.time_hours);
                    if responses.len() >= quota {
                        break;
                    }
                }
            }
        }

        TaskOutcome {
            responses,
            elapsed_hours: last_completion,
            declined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_surveys;
    use crate::worker::{HealthProfile, PrivacyAttitude};
    use loki_survey::demographics::{BirthDate, Gender, QuasiIdentifier, ZipCode};

    fn pool(n: u64) -> Vec<(WorkerProfile, BehaviorModel)> {
        (0..n)
            .map(|i| {
                let w = WorkerProfile::new(
                    WorkerId(i),
                    QuasiIdentifier {
                        birth: BirthDate::new(1960 + (i % 40) as u16, 1 + (i % 12) as u8, 1 + (i % 28) as u8)
                            .unwrap(),
                        gender: if i % 2 == 0 { Gender::Female } else { Gender::Male },
                        zip: ZipCode::new((10_000 + i % 100) as u32).unwrap(),
                    },
                    HealthProfile {
                        smoking_level: 1 + (i % 5) as u8,
                        cough_level: 1 + (i % 5) as u8,
                    },
                    PrivacyAttitude {
                        aware_of_profiling: i % 4 == 0,
                        would_participate_if_profiled: i % 4 == 0,
                    },
                );
                (w, BehaviorModel::Honest { opinion_noise: 0.3 })
            })
            .collect()
    }

    #[test]
    fn quota_is_met_when_pool_suffices() {
        let mut m = Marketplace::new(MarketplaceConfig::default(), pool(200), 1);
        let specs = paper_surveys();
        let out = m.post_task(&specs[0], 100);
        assert_eq!(out.responses.len(), 100);
        assert!(out.elapsed_hours > 0.0);
    }

    #[test]
    fn small_pool_caps_responses() {
        let mut m = Marketplace::new(
            MarketplaceConfig {
                acceptance_prob: 1.0,
                ..MarketplaceConfig::default()
            },
            pool(30),
            2,
        );
        let specs = paper_surveys();
        let out = m.post_task(&specs[0], 100);
        assert_eq!(out.responses.len(), 30);
    }

    #[test]
    fn workers_do_not_retake_surveys() {
        let mut m = Marketplace::new(
            MarketplaceConfig {
                acceptance_prob: 1.0,
                ..MarketplaceConfig::default()
            },
            pool(50),
            3,
        );
        let specs = paper_surveys();
        let first = m.post_task(&specs[0], 50);
        assert_eq!(first.responses.len(), 50);
        let second = m.post_task(&specs[0], 50);
        assert_eq!(second.responses.len(), 0, "no eligible workers remain");
    }

    #[test]
    fn stable_policy_reuses_ids_across_surveys() {
        let mut m = Marketplace::new(
            MarketplaceConfig {
                acceptance_prob: 1.0,
                ..MarketplaceConfig::default()
            },
            pool(40),
            4,
        );
        let specs = paper_surveys();
        let o1 = m.post_task(&specs[0], 40);
        let o2 = m.post_task(&specs[1], 40);
        let ids1: std::collections::HashSet<_> =
            o1.responses.workers().into_iter().map(String::from).collect();
        let ids2: std::collections::HashSet<_> =
            o2.responses.workers().into_iter().map(String::from).collect();
        assert!(!ids1.is_disjoint(&ids2), "stable IDs must overlap");
    }

    #[test]
    fn per_survey_policy_never_links() {
        let mut m = Marketplace::new(
            MarketplaceConfig {
                id_policy: IdPolicy::PerSurvey,
                acceptance_prob: 1.0,
                ..MarketplaceConfig::default()
            },
            pool(40),
            5,
        );
        let specs = paper_surveys();
        let o1 = m.post_task(&specs[0], 40);
        let o2 = m.post_task(&specs[1], 40);
        let ids1: std::collections::HashSet<_> =
            o1.responses.workers().into_iter().map(String::from).collect();
        let ids2: std::collections::HashSet<_> =
            o2.responses.workers().into_iter().map(String::from).collect();
        assert!(ids1.is_disjoint(&ids2), "per-survey IDs must never overlap");
    }

    #[test]
    fn costs_accumulate_with_markup() {
        let mut m = Marketplace::new(
            MarketplaceConfig {
                acceptance_prob: 1.0,
                markup_bps: 2000,
                ..MarketplaceConfig::default()
            },
            pool(20),
            6,
        );
        let specs = paper_surveys();
        let out = m.post_task(&specs[0], 20);
        assert_eq!(out.responses.len(), 20);
        // 20 × 2c = 40c base + 20% = 48c.
        assert_eq!(m.costs().base_cents(), 40);
        assert_eq!(m.costs().total_cents(), 48);
    }

    #[test]
    fn same_seed_replays_identically() {
        let specs = paper_surveys();
        let run = |seed| {
            let mut m = Marketplace::new(MarketplaceConfig::default(), pool(60), seed);
            let out = m.post_task(&specs[0], 30);
            out.responses
                .workers()
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn elapsed_time_scales_with_arrival_rate() {
        let specs = paper_surveys();
        let elapsed = |mean_arrival_hours: f64| {
            let mut m = Marketplace::new(
                MarketplaceConfig {
                    mean_arrival_hours,
                    acceptance_prob: 1.0,
                    ..MarketplaceConfig::default()
                },
                pool(300),
                7,
            );
            m.post_task(&specs[0], 100).elapsed_hours
        };
        let fast = elapsed(2.0);
        let slow = elapsed(50.0);
        assert!(
            slow > fast * 3.0,
            "slow arrivals {slow}h not ≫ fast {fast}h"
        );
    }

    #[test]
    #[should_panic(expected = "quota must be positive")]
    fn zero_quota_rejected() {
        let mut m = Marketplace::new(MarketplaceConfig::default(), pool(5), 8);
        let specs = paper_surveys();
        let _ = m.post_task(&specs[0], 0);
    }
}
