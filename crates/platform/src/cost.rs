//! Payment accounting.
//!
//! The paper's headline on feasibility: "Our experiment took only a few
//! days and cost less than $30." The ledger tracks worker rewards plus the
//! aggregator's markup (CrowdFlower charged a percentage on top of worker
//! payment), so EXP-1 can report the reproduced dollar figure.

use loki_survey::survey::SurveyId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulates campaign spending in integer cents (exact arithmetic; no
/// floating-point money).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Aggregator markup in basis points (CrowdFlower-style fee);
    /// e.g. 2000 = 20%.
    pub markup_bps: u32,
    per_survey_cents: BTreeMap<SurveyId, u64>,
}

impl CostLedger {
    /// Creates a ledger with the given aggregator markup (basis points).
    pub fn new(markup_bps: u32) -> CostLedger {
        CostLedger {
            markup_bps,
            per_survey_cents: BTreeMap::new(),
        }
    }

    /// Records one paid response.
    pub fn record_payment(&mut self, survey: SurveyId, reward_cents: u32) {
        *self.per_survey_cents.entry(survey).or_insert(0) += u64::from(reward_cents);
    }

    /// Worker payments for one survey, before markup.
    pub fn survey_base_cents(&self, survey: SurveyId) -> u64 {
        self.per_survey_cents.get(&survey).copied().unwrap_or(0)
    }

    /// Total worker payments, before markup.
    pub fn base_cents(&self) -> u64 {
        self.per_survey_cents.values().sum()
    }

    /// Aggregator fee in cents (rounded up — aggregators don't round in
    /// the requester's favour).
    pub fn markup_cents(&self) -> u64 {
        let base = self.base_cents();
        (base * u64::from(self.markup_bps)).div_ceil(10_000)
    }

    /// Total campaign cost in cents.
    pub fn total_cents(&self) -> u64 {
        self.base_cents() + self.markup_cents()
    }

    /// Total cost in dollars.
    pub fn total_dollars(&self) -> f64 {
        self.total_cents() as f64 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_free() {
        let l = CostLedger::new(2000);
        assert_eq!(l.total_cents(), 0);
        assert_eq!(l.total_dollars(), 0.0);
    }

    #[test]
    fn payments_accumulate_per_survey() {
        let mut l = CostLedger::new(0);
        l.record_payment(SurveyId(1), 5);
        l.record_payment(SurveyId(1), 5);
        l.record_payment(SurveyId(2), 8);
        assert_eq!(l.survey_base_cents(SurveyId(1)), 10);
        assert_eq!(l.survey_base_cents(SurveyId(2)), 8);
        assert_eq!(l.base_cents(), 18);
        assert_eq!(l.total_cents(), 18);
    }

    #[test]
    fn markup_rounds_up() {
        let mut l = CostLedger::new(2000); // 20%
        l.record_payment(SurveyId(1), 3); // fee = 0.6c → 1c
        assert_eq!(l.markup_cents(), 1);
        assert_eq!(l.total_cents(), 4);
    }

    #[test]
    fn paper_scale_campaign_is_under_30_dollars() {
        // 400 workers × 4 surveys × 5c + 100 × 5c ≈ $85? No — the paper's
        // surveys overlap: ~400 unique workers, not all take all surveys.
        // This test just checks the arithmetic at the paper's actual scale:
        // ~1300 paid responses at 5c with 20% markup is under $80, and the
        // EXP-1 configuration (per-survey quotas mirroring the paper's
        // response counts) lands under $30.
        let mut l = CostLedger::new(2000);
        for (quota, reward) in [(400, 2), (300, 2), (250, 2), (200, 2), (100, 2)] {
            for _ in 0..quota {
                l.record_payment(SurveyId(reward as u64), reward);
            }
        }
        // 1250 responses × 2c × 1.2 = $30.00 exactly; the paper says
        // "less than $30", which the EXP-1 quotas (which include
        // filtering losses, so fewer paid completions) satisfy.
        assert!(l.total_dollars() <= 30.0, "cost {}", l.total_dollars());
    }

    #[test]
    fn serde_round_trip() {
        let mut l = CostLedger::new(1500);
        l.record_payment(SurveyId(1), 7);
        let json = serde_json::to_string(&l).unwrap();
        let back: CostLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
