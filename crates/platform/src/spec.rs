//! Survey specs: questions plus *semantics*.
//!
//! A [`loki_survey::Survey`] says a question is "a rating 1–5"; it does not
//! say what the question is *really about*. To simulate respondents we
//! attach a [`QuestionSemantics`] to every question: which piece of worker
//! ground truth it discloses. This is also what makes the attack harness
//! honest — the linkage code reads disclosed answers exactly as a real
//! requester would, not the worker's hidden profile.
//!
//! [`SurveySpecBuilder`] assembles spec'd surveys, and [`paper_surveys`]
//! reconstructs the paper's five-survey campaign.

use loki_survey::question::{Question, QuestionKind};
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use serde::{Deserialize, Serialize};

/// What a question actually asks about, i.e. which ground-truth field of
/// the worker determines an honest answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuestionSemantics {
    /// Day of the month of birth (numeric 1–31).
    BirthDay,
    /// Month of birth (numeric 1–12).
    BirthMonth,
    /// Year of birth (numeric).
    BirthYear,
    /// Star sign (multiple choice over the 12 signs).
    StarSign,
    /// Gender (multiple choice: female/male).
    Gender,
    /// Home ZIP code (numeric 0–99999).
    ZipCode,
    /// Opinion rating on a topic (e.g. lecturer quality, astrology
    /// services). `topic` indexes the latent opinion; `topic_mean` is the
    /// ground-truth mean used to generate it.
    Opinion {
        /// Topic index.
        topic: u32,
        /// Ground-truth topic mean on the 1–5 scale.
        topic_mean: f64,
    },
    /// Smoking frequency (rating 1–5, health-sensitive).
    SmokingLevel,
    /// Coughing frequency (rating 1–5, health-sensitive).
    CoughLevel,
    /// "Did you know you could be profiled?" (choice 0 = yes, 1 = no).
    AwareOfProfiling,
    /// "Would you participate if profiled?" (choice 0 = yes, 1 = no).
    WouldParticipateIfProfiled,
    /// Instructed-response attention check: the honest answer is the
    /// given rating.
    AttentionCheck {
        /// The instructed rating.
        expected: u8,
    },
}

impl QuestionSemantics {
    /// Infers the disclosure semantics of a question from its stored form
    /// alone (prompt text + kind) — the adversary's reading of a survey
    /// they did not write.
    ///
    /// The live server stores only [`loki_survey::Survey`]; it never sees
    /// a [`SurveySpec`]. This classifier is what lets the streaming
    /// privacy observatory recognize quasi-identifier harvesting at
    /// publish time, deterministically: it is a pure function of data
    /// that survives snapshot and WAL replay, so a rebuilt store always
    /// re-derives the same semantics. Only disclosure-relevant classes
    /// are recognized (the Sweeney triple fields, star sign, and the
    /// health questions); opinion and attitude questions return `None`.
    ///
    /// The paper-campaign phrasings in [`paper_surveys`] are all
    /// recognized — pinned by a parity test.
    pub fn infer(question: &Question) -> Option<QuestionSemantics> {
        let text = question.text.to_lowercase();
        let numeric = matches!(question.kind, QuestionKind::Numeric { .. });
        let rating = matches!(question.kind, QuestionKind::Rating { .. });
        let choices = match &question.kind {
            QuestionKind::MultipleChoice { options } => options.len(),
            _ => 0,
        };

        if choices == 12 && (text.contains("star sign") || text.contains("zodiac")) {
            return Some(QuestionSemantics::StarSign);
        }
        if choices == 2 && (text.contains("gender") || text.contains("your sex")) {
            return Some(QuestionSemantics::Gender);
        }
        if numeric && (text.contains("born") || text.contains("birth")) {
            // "Day of the month you were born" names both units; the
            // finer unit wins, so test day before month before year.
            if text.contains("day") {
                return Some(QuestionSemantics::BirthDay);
            }
            if text.contains("month") {
                return Some(QuestionSemantics::BirthMonth);
            }
            if text.contains("year") {
                return Some(QuestionSemantics::BirthYear);
            }
            return None;
        }
        if numeric && (text.contains("zip") || text.contains("postal")) {
            return Some(QuestionSemantics::ZipCode);
        }
        if rating && text.contains("smok") {
            return Some(QuestionSemantics::SmokingLevel);
        }
        if rating && text.contains("cough") {
            return Some(QuestionSemantics::CoughLevel);
        }
        None
    }
}

/// A survey plus per-question semantics, in question order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveySpec {
    /// The survey as respondents see it.
    pub survey: Survey,
    /// Semantics of each question, parallel to `survey.questions`.
    pub semantics: Vec<QuestionSemantics>,
}

impl SurveySpec {
    /// Semantics of a question by id.
    pub fn semantics_of(&self, q: QuestionId) -> Option<&QuestionSemantics> {
        let idx = self.survey.questions.iter().position(|qq| qq.id == q)?;
        self.semantics.get(idx)
    }
}

/// Builds a [`SurveySpec`], keeping questions and semantics in lock-step.
#[derive(Debug)]
pub struct SurveySpecBuilder {
    builder: SurveyBuilder,
    semantics: Vec<QuestionSemantics>,
}

impl SurveySpecBuilder {
    /// Starts a spec.
    pub fn new(id: SurveyId, title: impl Into<String>) -> SurveySpecBuilder {
        SurveySpecBuilder {
            builder: SurveyBuilder::new(id, title),
            semantics: Vec::new(),
        }
    }

    /// Sets the per-response reward.
    pub fn reward_cents(mut self, cents: u32) -> SurveySpecBuilder {
        self.builder = self.builder.reward_cents(cents);
        self
    }

    /// Appends a question with its semantics.
    pub fn question(
        &mut self,
        text: impl Into<String>,
        kind: QuestionKind,
        sensitive: bool,
        sem: QuestionSemantics,
    ) -> QuestionId {
        let id = self.builder.question(text, kind, sensitive);
        self.semantics.push(sem);
        id
    }

    /// Declares a redundancy pair.
    pub fn redundant(&mut self, a: QuestionId, b: QuestionId) {
        self.builder.redundant(a, b);
    }

    /// Finalizes the spec.
    ///
    /// # Panics
    /// Panics if the underlying survey fails validation — specs are
    /// program-constructed, so an invalid one is a bug, not input error.
    pub fn build(self) -> SurveySpec {
        let survey = self.builder.build().expect("spec survey must be valid");
        SurveySpec {
            survey,
            semantics: self.semantics,
        }
    }
}

/// The twelve star-sign option labels, in zodiac order (the order
/// [`loki_survey::StarSign::all`] returns).
pub fn star_sign_options() -> Vec<String> {
    [
        "Aries",
        "Taurus",
        "Gemini",
        "Cancer",
        "Leo",
        "Virgo",
        "Libra",
        "Scorpio",
        "Sagittarius",
        "Capricorn",
        "Aquarius",
        "Pisces",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Reconstructs the paper's §2 campaign as five survey specs:
///
/// 1. astrology opinions (+ star sign, day/month of birth);
/// 2. match-making market research (+ gender, year of birth);
/// 3. mobile-coverage survey (+ ZIP code);
/// 4. anonymous smoking/coughing survey (the sensitive harvest);
/// 5. the follow-up profiling-awareness survey.
///
/// Each carries a redundancy pair so random responders can be filtered, as
/// the paper describes.
pub fn paper_surveys() -> Vec<SurveySpec> {
    let mut out = Vec::new();

    // Survey 1: astrology — harvests star sign + day/month of birth.
    let mut s1 = SurveySpecBuilder::new(SurveyId(1), "Opinions on astrology services")
        .reward_cents(2);
    let a = s1.question(
        "How much do you trust astrology services?",
        QuestionKind::likert5(),
        false,
        QuestionSemantics::Opinion {
            topic: 100,
            topic_mean: 2.4,
        },
    );
    let b = s1.question(
        "How accurate do you find astrology predictions?",
        QuestionKind::likert5(),
        false,
        QuestionSemantics::Opinion {
            topic: 100,
            topic_mean: 2.4,
        },
    );
    s1.redundant(a, b);
    s1.question(
        "What is your star sign?",
        QuestionKind::MultipleChoice {
            options: star_sign_options(),
        },
        true,
        QuestionSemantics::StarSign,
    );
    s1.question(
        "Day of the month you were born (for your horoscope)",
        QuestionKind::Numeric { min: 1, max: 31 },
        true,
        QuestionSemantics::BirthDay,
    );
    s1.question(
        "Month you were born (for your horoscope)",
        QuestionKind::Numeric { min: 1, max: 12 },
        true,
        QuestionSemantics::BirthMonth,
    );
    out.push(s1.build());

    // Survey 2: match-making — harvests gender + birth year.
    let mut s2 = SurveySpecBuilder::new(SurveyId(2), "Online match-making market research")
        .reward_cents(2);
    let a = s2.question(
        "How useful are online match-making services?",
        QuestionKind::likert5(),
        false,
        QuestionSemantics::Opinion {
            topic: 101,
            topic_mean: 3.1,
        },
    );
    let b = s2.question(
        "Rate the overall value of online dating platforms",
        QuestionKind::likert5(),
        false,
        QuestionSemantics::Opinion {
            topic: 101,
            topic_mean: 3.1,
        },
    );
    s2.redundant(a, b);
    s2.question(
        "What is your gender?",
        QuestionKind::MultipleChoice {
            options: vec!["Female".into(), "Male".into()],
        },
        true,
        QuestionSemantics::Gender,
    );
    s2.question(
        "What year were you born? (to match age groups)",
        QuestionKind::Numeric {
            min: 1900,
            max: 2000,
        },
        true,
        QuestionSemantics::BirthYear,
    );
    out.push(s2.build());

    // Survey 3: phone coverage — harvests ZIP code.
    let mut s3 = SurveySpecBuilder::new(SurveyId(3), "Mobile phone coverage survey")
        .reward_cents(2);
    let a = s3.question(
        "Rate your mobile coverage at home",
        QuestionKind::likert5(),
        false,
        QuestionSemantics::Opinion {
            topic: 102,
            topic_mean: 3.6,
        },
    );
    let b = s3.question(
        "How satisfied are you with signal strength at home?",
        QuestionKind::likert5(),
        false,
        QuestionSemantics::Opinion {
            topic: 102,
            topic_mean: 3.6,
        },
    );
    s3.redundant(a, b);
    s3.question(
        "What is your ZIP code? (to map coverage)",
        QuestionKind::Numeric { min: 0, max: 99_999 },
        true,
        QuestionSemantics::ZipCode,
    );
    out.push(s3.build());

    // Survey 4: "anonymous" health survey — the sensitive harvest.
    let mut s4 = SurveySpecBuilder::new(
        SurveyId(4),
        "Anonymous survey on smoking habits and coughing",
    )
    .reward_cents(2);
    let a = s4.question(
        "How often do you smoke?",
        QuestionKind::likert5(),
        true,
        QuestionSemantics::SmokingLevel,
    );
    let b = s4.question(
        "Rate your smoking frequency",
        QuestionKind::likert5(),
        true,
        QuestionSemantics::SmokingLevel,
    );
    s4.redundant(a, b);
    s4.question(
        "How frequently do you cough?",
        QuestionKind::likert5(),
        true,
        QuestionSemantics::CoughLevel,
    );
    out.push(s4.build());

    // Survey 5: profiling-awareness follow-up.
    let mut s5 = SurveySpecBuilder::new(SurveyId(5), "Survey participation attitudes")
        .reward_cents(2);
    s5.question(
        "Did you know survey requesters can profile you across surveys?",
        QuestionKind::MultipleChoice {
            options: vec!["Yes".into(), "No".into()],
        },
        false,
        QuestionSemantics::AwareOfProfiling,
    );
    s5.question(
        "Would you participate if you knew you were being profiled?",
        QuestionKind::MultipleChoice {
            options: vec!["Yes".into(), "No".into()],
        },
        false,
        QuestionSemantics::WouldParticipateIfProfiled,
    );
    out.push(s5.build());

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_has_five_surveys() {
        let specs = paper_surveys();
        assert_eq!(specs.len(), 5);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.survey.id, SurveyId(i as u64 + 1));
            assert_eq!(
                spec.semantics.len(),
                spec.survey.questions.len(),
                "survey {i} semantics out of lock-step"
            );
        }
    }

    #[test]
    fn first_three_surveys_have_redundancy_pairs() {
        let specs = paper_surveys();
        for spec in &specs[..4] {
            assert!(
                !spec.survey.redundancy_pairs.is_empty(),
                "{} lacks redundancy",
                spec.survey.title
            );
        }
    }

    #[test]
    fn demographic_harvest_is_spread_across_surveys() {
        let specs = paper_surveys();
        let has = |spec: &SurveySpec, sem: &QuestionSemantics| {
            spec.semantics.iter().any(|s| s == sem)
        };
        assert!(has(&specs[0], &QuestionSemantics::BirthDay));
        assert!(has(&specs[0], &QuestionSemantics::BirthMonth));
        assert!(has(&specs[1], &QuestionSemantics::Gender));
        assert!(has(&specs[1], &QuestionSemantics::BirthYear));
        assert!(has(&specs[2], &QuestionSemantics::ZipCode));
        assert!(has(&specs[3], &QuestionSemantics::SmokingLevel));
        // No single survey harvests the full triple.
        for spec in &specs {
            let full = has(spec, &QuestionSemantics::BirthDay)
                && has(spec, &QuestionSemantics::BirthYear)
                && has(spec, &QuestionSemantics::ZipCode);
            assert!(!full, "{} harvests the full QI alone", spec.survey.title);
        }
    }

    #[test]
    fn semantics_lookup_by_question_id() {
        let specs = paper_surveys();
        let s1 = &specs[0];
        let star_q = s1
            .survey
            .questions
            .iter()
            .find(|q| matches!(s1.semantics_of(q.id), Some(QuestionSemantics::StarSign)))
            .expect("survey 1 has a star-sign question");
        assert!(star_q.sensitive);
        assert!(s1.semantics_of(QuestionId(99)).is_none());
    }

    #[test]
    fn star_sign_options_match_zodiac() {
        assert_eq!(star_sign_options().len(), 12);
        assert_eq!(star_sign_options()[0], "Aries");
        assert_eq!(star_sign_options()[11], "Pisces");
    }

    #[test]
    fn infer_matches_every_paper_survey_declaration() {
        // The server-side classifier must re-derive exactly the declared
        // semantics of the paper campaign for the disclosure classes it
        // recognizes, and stay silent (None) on opinion/attitude
        // questions — never a misclassification.
        let recognized = |s: &QuestionSemantics| {
            matches!(
                s,
                QuestionSemantics::BirthDay
                    | QuestionSemantics::BirthMonth
                    | QuestionSemantics::BirthYear
                    | QuestionSemantics::StarSign
                    | QuestionSemantics::Gender
                    | QuestionSemantics::ZipCode
                    | QuestionSemantics::SmokingLevel
                    | QuestionSemantics::CoughLevel
            )
        };
        for spec in paper_surveys() {
            for (q, declared) in spec.survey.questions.iter().zip(&spec.semantics) {
                let inferred = QuestionSemantics::infer(q);
                if recognized(declared) {
                    assert_eq!(
                        inferred.as_ref(),
                        Some(declared),
                        "{}: {:?}",
                        spec.survey.title,
                        q.text
                    );
                } else {
                    assert_eq!(inferred, None, "{}: {:?}", spec.survey.title, q.text);
                }
            }
        }
    }

    #[test]
    fn infer_requires_matching_kind() {
        // Trigger words without the matching response shape stay None:
        // a free-text "what is your gender" question is not choice-coded
        // and cannot be folded into the QI sketch.
        let q = |text: &str, kind: QuestionKind| Question {
            id: QuestionId(0),
            text: text.into(),
            kind,
            sensitive: false,
        };
        assert_eq!(
            QuestionSemantics::infer(&q("What is your gender?", QuestionKind::FreeText)),
            None
        );
        assert_eq!(
            QuestionSemantics::infer(&q(
                "What year were you born?",
                QuestionKind::likert5()
            )),
            None
        );
        assert_eq!(
            QuestionSemantics::infer(&q(
                "Rate your day so far",
                QuestionKind::likert5()
            )),
            None,
            "'day' without birth context is not a QI"
        );
        assert_eq!(
            QuestionSemantics::infer(&q(
                "What is your ZIP code?",
                QuestionKind::Numeric { min: 0, max: 99_999 }
            )),
            Some(QuestionSemantics::ZipCode)
        );
    }

    #[test]
    fn builder_keeps_lockstep() {
        let mut b = SurveySpecBuilder::new(SurveyId(9), "t");
        b.question(
            "q",
            QuestionKind::likert5(),
            false,
            QuestionSemantics::Opinion {
                topic: 1,
                topic_mean: 3.0,
            },
        );
        let spec = b.build();
        assert_eq!(spec.survey.len(), spec.semantics.len());
    }
}
