//! Requester-side campaign orchestration.
//!
//! A *campaign* is what §2's adversary actually ran: several surveys
//! posted independently over days, each with a quota, with random
//! responders filtered out before analysis. [`Campaign`] packages that
//! loop — post, collect, filter, account — so experiments and tests
//! share one implementation.

use crate::marketplace::Marketplace;
use crate::spec::SurveySpec;
use loki_survey::redundancy::ConsistencyFilter;
use loki_survey::response::ResponseSet;
use loki_survey::survey::SurveyId;
use serde::{Deserialize, Serialize};

/// One survey to post: the spec plus its response quota.
#[derive(Debug, Clone)]
pub struct CampaignItem {
    /// What to post.
    pub spec: SurveySpec,
    /// How many responses to pay for.
    pub quota: usize,
}

/// A requester's multi-survey campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    items: Vec<CampaignItem>,
    /// Redundancy-filter threshold (mean |pair disagreement|); `None`
    /// disables filtering.
    pub filter_threshold: Option<f64>,
}

/// Per-survey outcome of a campaign run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurveyRun {
    /// Which survey.
    pub survey: SurveyId,
    /// Its title.
    pub title: String,
    /// The requested quota.
    pub quota: usize,
    /// Responses collected.
    pub collected: usize,
    /// Responses surviving the redundancy filter.
    pub kept: usize,
    /// Simulated days from posting to the last completion.
    pub days: f64,
}

/// The whole campaign's outcome.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Filtered responses per survey, in posting order.
    pub responses: Vec<(SurveySpec, ResponseSet)>,
    /// Per-survey funnel rows.
    pub runs: Vec<SurveyRun>,
    /// Total spend in dollars (including aggregator markup) across the
    /// campaign's marketplace.
    pub total_dollars: f64,
    /// Wall time: surveys post independently, so the campaign takes as
    /// long as its slowest survey.
    pub wall_days: f64,
}

impl Campaign {
    /// Creates a campaign with the paper's default filtering (threshold
    /// 1.0 scale points).
    pub fn new(items: Vec<CampaignItem>) -> Campaign {
        Campaign {
            items,
            filter_threshold: Some(1.0),
        }
    }

    /// Disables the redundancy filter.
    pub fn without_filter(mut self) -> Campaign {
        self.filter_threshold = None;
        self
    }

    /// Runs the campaign on a marketplace.
    ///
    /// # Panics
    /// Panics if the campaign has no items (nothing to run).
    pub fn run(&self, market: &mut Marketplace) -> CampaignOutcome {
        assert!(!self.items.is_empty(), "campaign has no surveys");
        let start_dollars = market.costs().total_dollars();
        let mut responses = Vec::with_capacity(self.items.len());
        let mut runs = Vec::with_capacity(self.items.len());
        let mut wall_days = 0.0f64;
        for item in &self.items {
            let outcome = market.post_task(&item.spec, item.quota);
            let collected = outcome.responses.len();
            let kept_set = match self.filter_threshold {
                Some(threshold) => {
                    let filter = ConsistencyFilter::new(threshold);
                    filter.filter(&item.spec.survey, &outcome.responses).0
                }
                None => outcome.responses,
            };
            let days = outcome.elapsed_hours / 24.0;
            wall_days = wall_days.max(days);
            runs.push(SurveyRun {
                survey: item.spec.survey.id,
                title: item.spec.survey.title.clone(),
                quota: item.quota,
                collected,
                kept: kept_set.len(),
                days,
            });
            responses.push((item.spec.clone(), kept_set));
        }
        CampaignOutcome {
            responses,
            runs,
            total_dollars: market.costs().total_dollars() - start_dollars,
            wall_days,
        }
    }
}

/// The paper's §2 campaign: the four harvest surveys at EXP-1's quotas.
pub fn paper_campaign() -> Campaign {
    let specs = crate::spec::paper_surveys();
    let quotas = [400usize, 350, 300, 250];
    Campaign::new(
        specs
            .into_iter()
            .take(4)
            .zip(quotas)
            .map(|(spec, quota)| CampaignItem { spec, quota })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BehaviorModel;
    use crate::marketplace::MarketplaceConfig;
    use crate::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
    use loki_survey::demographics::{BirthDate, Gender, QuasiIdentifier, ZipCode};

    fn pool(n: u64, random_every: u64) -> Vec<(WorkerProfile, BehaviorModel)> {
        (0..n)
            .map(|i| {
                let w = WorkerProfile::new(
                    WorkerId(i),
                    QuasiIdentifier {
                        birth: BirthDate::new(
                            1960 + (i % 40) as u16,
                            1 + (i % 12) as u8,
                            1 + (i % 28) as u8,
                        )
                        .unwrap(),
                        gender: if i % 2 == 0 { Gender::Female } else { Gender::Male },
                        zip: ZipCode::new((20_000 + i % 50) as u32).unwrap(),
                    },
                    HealthProfile {
                        smoking_level: 1,
                        cough_level: 1,
                    },
                    PrivacyAttitude {
                        aware_of_profiling: false,
                        would_participate_if_profiled: false,
                    },
                );
                let model = if random_every > 0 && i % random_every == 0 {
                    BehaviorModel::Random
                } else {
                    BehaviorModel::Honest { opinion_noise: 0.3 }
                };
                (w, model)
            })
            .collect()
    }

    #[test]
    fn paper_campaign_runs_four_surveys() {
        let mut market = Marketplace::new(MarketplaceConfig::default(), pool(450, 12), 1);
        let outcome = paper_campaign().run(&mut market);
        assert_eq!(outcome.runs.len(), 4);
        assert_eq!(outcome.responses.len(), 4);
        assert!(outcome.total_dollars > 0.0 && outcome.total_dollars < 30.0);
        assert!(outcome.wall_days > 0.0);
        for run in &outcome.runs {
            assert!(run.kept <= run.collected);
            assert!(run.collected <= run.quota);
        }
    }

    #[test]
    fn filter_drops_random_responders() {
        let mut market = Marketplace::new(
            MarketplaceConfig {
                acceptance_prob: 1.0,
                ..MarketplaceConfig::default()
            },
            pool(100, 2), // half random
            2,
        );
        let outcome = paper_campaign().run(&mut market);
        let first = &outcome.runs[0];
        assert!(
            first.kept < first.collected,
            "filter removed nothing: {first:?}"
        );
    }

    #[test]
    fn without_filter_keeps_everything() {
        let mut market = Marketplace::new(
            MarketplaceConfig {
                acceptance_prob: 1.0,
                ..MarketplaceConfig::default()
            },
            pool(100, 2),
            3,
        );
        let outcome = paper_campaign().without_filter().run(&mut market);
        for run in &outcome.runs {
            assert_eq!(run.kept, run.collected);
        }
    }

    #[test]
    fn wall_days_is_max_not_sum() {
        let mut market = Marketplace::new(MarketplaceConfig::default(), pool(450, 0), 4);
        let outcome = paper_campaign().run(&mut market);
        let max_days = outcome
            .runs
            .iter()
            .map(|r| r.days)
            .fold(0.0f64, f64::max);
        assert_eq!(outcome.wall_days, max_days);
        let sum: f64 = outcome.runs.iter().map(|r| r.days).sum();
        assert!(outcome.wall_days <= sum);
    }

    #[test]
    #[should_panic(expected = "no surveys")]
    fn empty_campaign_rejected() {
        let mut market = Marketplace::new(MarketplaceConfig::default(), pool(10, 0), 5);
        let _ = Campaign::new(vec![]).run(&mut market);
    }
}
