//! Respondent behaviour models.
//!
//! Four populations are modeled, matching what a real AMT campaign sees:
//!
//! * [`BehaviorModel::Honest`] — truthful answers with small per-response
//!   noise on opinion ratings;
//! * [`BehaviorModel::Random`] — uniform random answers (the population
//!   the paper's redundancy pairs exist to filter);
//! * [`BehaviorModel::Careless`] — honest, but each question is answered
//!   randomly with some probability (attention lapses);
//! * [`BehaviorModel::PrivacyProtective`] — honest on opinions but *lies*
//!   about demographics, the user-side folk defence the paper's Loki
//!   design replaces with principled noise.

use crate::spec::{QuestionSemantics, SurveySpec};
use crate::worker::WorkerProfile;
use loki_survey::demographics::{Gender, StarSign};
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a worker answers surveys.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BehaviorModel {
    /// Truthful; opinion ratings get ±`opinion_noise` uniform jitter
    /// before rounding to the scale.
    Honest {
        /// Magnitude of per-response opinion jitter (scale points).
        opinion_noise: f64,
    },
    /// Every answer drawn uniformly from the valid range.
    Random,
    /// Honest, but each question independently answered randomly with
    /// probability `lapse`.
    Careless {
        /// Per-question lapse probability in `[0, 1]`.
        lapse: f64,
    },
    /// Honest opinions, fabricated demographics.
    PrivacyProtective,
}

impl BehaviorModel {
    /// Produces this worker's response to a survey, reported under
    /// `reported_id` (whatever the platform's ID policy hands out).
    pub fn respond<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        worker: &WorkerProfile,
        spec: &SurveySpec,
        reported_id: &str,
    ) -> Response {
        let mut response = Response::new(reported_id, spec.survey.id);
        for (q, sem) in spec.survey.questions.iter().zip(&spec.semantics) {
            let answer = match self {
                BehaviorModel::Random => random_answer(rng, &q.kind),
                BehaviorModel::Honest { opinion_noise } => {
                    honest_answer(rng, worker, sem, &q.kind, *opinion_noise, false)
                }
                BehaviorModel::Careless { lapse } => {
                    if rng.gen_bool(lapse.clamp(0.0, 1.0)) {
                        random_answer(rng, &q.kind)
                    } else {
                        honest_answer(rng, worker, sem, &q.kind, 0.3, false)
                    }
                }
                BehaviorModel::PrivacyProtective => {
                    honest_answer(rng, worker, sem, &q.kind, 0.3, true)
                }
            };
            response.answer(q.id, answer);
        }
        response
    }
}

/// Uniform random valid answer for a question kind.
fn random_answer<R: Rng + ?Sized>(rng: &mut R, kind: &QuestionKind) -> Answer {
    match kind {
        QuestionKind::Rating { min, max } => {
            Answer::Rating(f64::from(rng.gen_range(*min..=*max)))
        }
        QuestionKind::MultipleChoice { options } => Answer::Choice(rng.gen_range(0..options.len())),
        QuestionKind::Numeric { min, max } => Answer::Numeric(rng.gen_range(*min..=*max)),
        QuestionKind::FreeText => Answer::Text(String::new()),
    }
}

/// Truthful answer derived from worker ground truth. With `lie_demo`,
/// demographic disclosures are fabricated uniformly instead.
fn honest_answer<R: Rng + ?Sized>(
    rng: &mut R,
    worker: &WorkerProfile,
    sem: &QuestionSemantics,
    kind: &QuestionKind,
    opinion_noise: f64,
    lie_demo: bool,
) -> Answer {
    let demo = &worker.demographics;
    match sem {
        QuestionSemantics::BirthDay => {
            if lie_demo {
                random_answer(rng, kind)
            } else {
                Answer::Numeric(i64::from(demo.birth.day))
            }
        }
        QuestionSemantics::BirthMonth => {
            if lie_demo {
                random_answer(rng, kind)
            } else {
                Answer::Numeric(i64::from(demo.birth.month))
            }
        }
        QuestionSemantics::BirthYear => {
            if lie_demo {
                random_answer(rng, kind)
            } else {
                Answer::Numeric(i64::from(demo.birth.year))
            }
        }
        QuestionSemantics::StarSign => {
            if lie_demo {
                random_answer(rng, kind)
            } else {
                let sign = demo.birth.star_sign();
                let idx = StarSign::all().iter().position(|s| *s == sign).unwrap();
                Answer::Choice(idx)
            }
        }
        QuestionSemantics::Gender => {
            if lie_demo {
                random_answer(rng, kind)
            } else {
                Answer::Choice(match demo.gender {
                    Gender::Female => 0,
                    Gender::Male => 1,
                })
            }
        }
        QuestionSemantics::ZipCode => {
            if lie_demo {
                random_answer(rng, kind)
            } else {
                Answer::Numeric(i64::from(demo.zip.0))
            }
        }
        QuestionSemantics::Opinion { topic, topic_mean } => {
            let latent = worker.opinion(*topic, *topic_mean, 0.8);
            let jitter = if opinion_noise > 0.0 {
                rng.gen_range(-opinion_noise..=opinion_noise)
            } else {
                0.0
            };
            Answer::Rating((latent + jitter).round().clamp(1.0, 5.0))
        }
        QuestionSemantics::SmokingLevel => Answer::Rating(f64::from(worker.health.smoking_level)),
        QuestionSemantics::CoughLevel => Answer::Rating(f64::from(worker.health.cough_level)),
        QuestionSemantics::AwareOfProfiling => {
            Answer::Choice(usize::from(!worker.attitude.aware_of_profiling))
        }
        QuestionSemantics::WouldParticipateIfProfiled => {
            Answer::Choice(usize::from(!worker.attitude.would_participate_if_profiled))
        }
        QuestionSemantics::AttentionCheck { expected } => Answer::Rating(f64::from(*expected)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_surveys;
    use crate::worker::{HealthProfile, PrivacyAttitude, WorkerId};
    use loki_survey::demographics::{BirthDate, QuasiIdentifier, ZipCode};
    use loki_survey::QuestionId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn worker() -> WorkerProfile {
        WorkerProfile::new(
            WorkerId(42),
            QuasiIdentifier {
                birth: BirthDate::new(1985, 7, 14).unwrap(),
                gender: Gender::Female,
                zip: ZipCode::new(90210).unwrap(),
            },
            HealthProfile {
                smoking_level: 5,
                cough_level: 4,
            },
            PrivacyAttitude {
                aware_of_profiling: false,
                would_participate_if_profiled: false,
            },
        )
    }

    #[test]
    fn honest_answers_are_valid_and_truthful() {
        let specs = paper_surveys();
        let w = worker();
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let model = BehaviorModel::Honest { opinion_noise: 0.3 };
        for spec in &specs {
            let r = model.respond(&mut rng, &w, spec, "W42");
            r.validate(&spec.survey).expect("honest response valid");
        }
        // Survey 1 discloses day/month truthfully.
        let r1 = model.respond(&mut rng, &w, &specs[0], "W42");
        let day_q = specs[0]
            .survey
            .questions
            .iter()
            .find(|q| matches!(specs[0].semantics_of(q.id), Some(QuestionSemantics::BirthDay)))
            .unwrap();
        assert_eq!(r1.get(day_q.id), Some(&Answer::Numeric(14)));
    }

    #[test]
    fn honest_star_sign_consistent_with_birthday() {
        let specs = paper_surveys();
        let w = worker(); // July 14 → Cancer (index 3)
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let model = BehaviorModel::Honest { opinion_noise: 0.0 };
        let r = model.respond(&mut rng, &w, &specs[0], "W42");
        let sign_q = specs[0]
            .survey
            .questions
            .iter()
            .find(|q| matches!(specs[0].semantics_of(q.id), Some(QuestionSemantics::StarSign)))
            .unwrap();
        assert_eq!(r.get(sign_q.id), Some(&Answer::Choice(3)));
    }

    #[test]
    fn honest_redundancy_pairs_agree_closely() {
        let specs = paper_surveys();
        let w = worker();
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let model = BehaviorModel::Honest { opinion_noise: 0.3 };
        let r = model.respond(&mut rng, &w, &specs[0], "W42");
        let (a, b) = specs[0].survey.redundancy_pairs[0];
        let va = r.get(a).unwrap().as_f64().unwrap();
        let vb = r.get(b).unwrap().as_f64().unwrap();
        assert!((va - vb).abs() <= 1.0, "honest pair disagreement {va} vs {vb}");
    }

    #[test]
    fn random_answers_are_valid_but_inconsistent_on_average() {
        let specs = paper_surveys();
        let w = worker();
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let mut total_disagreement = 0.0;
        let n = 200;
        for _ in 0..n {
            let r = BehaviorModel::Random.respond(&mut rng, &w, &specs[0], "W42");
            r.validate(&specs[0].survey).expect("random response valid");
            let (a, b) = specs[0].survey.redundancy_pairs[0];
            total_disagreement +=
                (r.get(a).unwrap().as_f64().unwrap() - r.get(b).unwrap().as_f64().unwrap()).abs();
        }
        // Mean |U1-U2| over a 1..5 scale is 1.6; far above honest levels.
        let mean = total_disagreement / n as f64;
        assert!(mean > 1.2, "random responders too consistent: {mean}");
    }

    #[test]
    fn privacy_protective_lies_about_demographics_not_opinions() {
        let specs = paper_surveys();
        let w = worker();
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        // With 31 days, the chance a fabricated day matches the true day in
        // all 50 trials is negligible; require at least one mismatch.
        let day_q = specs[0]
            .survey
            .questions
            .iter()
            .find(|q| matches!(specs[0].semantics_of(q.id), Some(QuestionSemantics::BirthDay)))
            .unwrap();
        let mut mismatched = false;
        for _ in 0..50 {
            let r = BehaviorModel::PrivacyProtective.respond(&mut rng, &w, &specs[0], "W42");
            if r.get(day_q.id) != Some(&Answer::Numeric(14)) {
                mismatched = true;
            }
        }
        assert!(mismatched, "privacy-protective worker never lied about day");
    }

    #[test]
    fn careless_with_zero_lapse_is_honest() {
        let specs = paper_surveys();
        let w = worker();
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let r = BehaviorModel::Careless { lapse: 0.0 }.respond(&mut rng, &w, &specs[3], "W42");
        // Health answers must be truthful.
        assert_eq!(r.get(QuestionId(0)), Some(&Answer::Rating(5.0)));
        assert_eq!(r.get(QuestionId(2)), Some(&Answer::Rating(4.0)));
    }

    #[test]
    fn attitude_answers_follow_ground_truth() {
        let specs = paper_surveys();
        let w = worker(); // unaware, would not participate
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let model = BehaviorModel::Honest { opinion_noise: 0.0 };
        let r = model.respond(&mut rng, &w, &specs[4], "W42");
        // Choice 1 = "No" for both questions.
        assert_eq!(r.get(QuestionId(0)), Some(&Answer::Choice(1)));
        assert_eq!(r.get(QuestionId(1)), Some(&Answer::Choice(1)));
    }
}
