//! Worker-ID policies — the root cause (and a mitigation) of the attack.
//!
//! §2: "although AMT does not reveal the name or personal details of any
//! user, it reports back to the surveyor a unique ID that is constant
//! across the surveys taken by a user." That stable ID is what lets a
//! requester join responses across surveys. [`IdPolicy`] models:
//!
//! * [`IdPolicy::Stable`] — AMT behaviour: one pseudonym per worker,
//!   constant across surveys;
//! * [`IdPolicy::PerSurvey`] — a fresh pseudonym per (worker, survey)
//!   pair: individual surveys still work, cross-survey joins do not;
//! * [`IdPolicy::PerSubmission`] — a fresh pseudonym per submission, the
//!   strongest unlinkability (duplicate submissions become undetectable —
//!   the trade-off the docs call out).
//!
//! Pseudonyms are produced by a keyed mix of (worker, survey, counter), so
//! a requester cannot invert them, and the same policy instance is
//! deterministic — replaying a campaign reproduces the same IDs.

use crate::worker::WorkerId;
use loki_survey::survey::SurveyId;
use serde::{Deserialize, Serialize};

/// How worker identities are reported to requesters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdPolicy {
    /// One stable pseudonym per worker (AMT-style).
    Stable,
    /// A fresh pseudonym per (worker, survey).
    PerSurvey,
    /// A fresh pseudonym per submission.
    PerSubmission,
}

/// A 64-bit mixing function (SplitMix64 finalizer) — not cryptographic,
/// but keyed and uninvertible enough for a simulation where the adversary
/// only ever sees the output strings.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Chains two values through the mixer. Deliberately *not* commutative in
/// its arguments (unlike XOR-ing two mixed values, which would make
/// `(worker 1, survey 2)` collide with `(worker 2, survey 1)`).
fn chain(a: u64, b: u64) -> u64 {
    mix(mix(a) ^ b)
}

impl IdPolicy {
    /// The ID reported to the requester for a submission. `submission_seq`
    /// is the global submission counter (only [`IdPolicy::PerSubmission`]
    /// uses it).
    pub fn reported_id(
        self,
        platform_key: u64,
        worker: WorkerId,
        survey: SurveyId,
        submission_seq: u64,
    ) -> String {
        let base = chain(platform_key, worker.0);
        match self {
            IdPolicy::Stable => format!("A{:016X}", mix(base)),
            IdPolicy::PerSurvey => format!("P{:016X}", chain(base, survey.0)),
            IdPolicy::PerSubmission => format!("S{:016X}", chain(base, submission_seq)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u64 = 0xDEAD_BEEF;

    #[test]
    fn stable_ids_constant_across_surveys() {
        let a = IdPolicy::Stable.reported_id(KEY, WorkerId(7), SurveyId(1), 0);
        let b = IdPolicy::Stable.reported_id(KEY, WorkerId(7), SurveyId(2), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn stable_ids_differ_across_workers() {
        let a = IdPolicy::Stable.reported_id(KEY, WorkerId(7), SurveyId(1), 0);
        let b = IdPolicy::Stable.reported_id(KEY, WorkerId(8), SurveyId(1), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn per_survey_ids_differ_across_surveys_but_not_within() {
        let a = IdPolicy::PerSurvey.reported_id(KEY, WorkerId(7), SurveyId(1), 0);
        let b = IdPolicy::PerSurvey.reported_id(KEY, WorkerId(7), SurveyId(2), 1);
        let c = IdPolicy::PerSurvey.reported_id(KEY, WorkerId(7), SurveyId(1), 9);
        assert_ne!(a, b, "cross-survey IDs must differ");
        assert_eq!(a, c, "within-survey IDs must be stable");
    }

    #[test]
    fn per_submission_ids_always_differ() {
        let a = IdPolicy::PerSubmission.reported_id(KEY, WorkerId(7), SurveyId(1), 0);
        let b = IdPolicy::PerSubmission.reported_id(KEY, WorkerId(7), SurveyId(1), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn different_platform_keys_give_unlinkable_ids() {
        let a = IdPolicy::Stable.reported_id(1, WorkerId(7), SurveyId(1), 0);
        let b = IdPolicy::Stable.reported_id(2, WorkerId(7), SurveyId(1), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ids_are_deterministic() {
        let a = IdPolicy::PerSurvey.reported_id(KEY, WorkerId(3), SurveyId(4), 0);
        let b = IdPolicy::PerSurvey.reported_id(KEY, WorkerId(3), SurveyId(4), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn prefix_distinguishes_policies() {
        assert!(IdPolicy::Stable
            .reported_id(KEY, WorkerId(1), SurveyId(1), 0)
            .starts_with('A'));
        assert!(IdPolicy::PerSurvey
            .reported_id(KEY, WorkerId(1), SurveyId(1), 0)
            .starts_with('P'));
        assert!(IdPolicy::PerSubmission
            .reported_id(KEY, WorkerId(1), SurveyId(1), 0)
            .starts_with('S'));
    }
}
