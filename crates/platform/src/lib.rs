//! # loki-platform — crowdsourcing marketplace simulator
//!
//! The AMT/CrowdFlower substrate of the reproduction. The paper's §2
//! attack needs a marketplace with exactly these properties:
//!
//! * a pool of workers with real demographics and opinions ([`worker`]);
//! * surveys posted as paid tasks, accepted and completed over simulated
//!   days ([`marketplace`] — a deterministic discrete-event engine);
//! * a *worker-ID policy*: AMT reports a unique ID "constant across the
//!   surveys taken by a user" ([`idpolicy`] also models per-survey
//!   pseudonyms, the mitigation ablated in EXP-7);
//! * per-response payments with an aggregator markup, so the "< $30"
//!   cost claim can be reproduced ([`cost`]);
//! * honest, random, careless and privacy-protective respondent behaviour
//!   ([`behavior`]), with question *semantics* ([`spec`]) connecting
//!   survey questions to worker ground truth.
//!
//! Everything is seeded: the same seed replays the same campaign,
//! response-for-response.

//! # Example
//!
//! Run the paper's four-survey campaign on a tiny synthetic pool:
//!
//! ```
//! use loki_platform::marketplace::{Marketplace, MarketplaceConfig};
//! use loki_platform::requester::paper_campaign;
//! use loki_platform::behavior::BehaviorModel;
//! use loki_platform::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
//! use loki_survey::demographics::{BirthDate, Gender, QuasiIdentifier, ZipCode};
//!
//! let workers: Vec<_> = (0..40u64).map(|i| {
//!     let profile = WorkerProfile::new(
//!         WorkerId(i),
//!         QuasiIdentifier {
//!             birth: BirthDate::new(1970 + (i % 30) as u16, 1 + (i % 12) as u8, 1 + (i % 28) as u8).unwrap(),
//!             gender: if i % 2 == 0 { Gender::Female } else { Gender::Male },
//!             zip: ZipCode::new(10_000 + i as u32).unwrap(),
//!         },
//!         HealthProfile { smoking_level: 1, cough_level: 1 },
//!         PrivacyAttitude { aware_of_profiling: false, would_participate_if_profiled: false },
//!     );
//!     (profile, BehaviorModel::Honest { opinion_noise: 0.3 })
//! }).collect();
//!
//! let mut market = Marketplace::new(MarketplaceConfig::default(), workers, 7);
//! let outcome = paper_campaign().run(&mut market);
//! assert_eq!(outcome.runs.len(), 4);
//! assert!(outcome.total_dollars < 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod cost;
pub mod idpolicy;
pub mod marketplace;
pub mod requester;
pub mod spec;
pub mod worker;

pub use behavior::BehaviorModel;
pub use cost::CostLedger;
pub use idpolicy::IdPolicy;
pub use marketplace::{Marketplace, MarketplaceConfig, TaskOutcome};
pub use requester::{Campaign, CampaignItem, CampaignOutcome};
pub use spec::{QuestionSemantics, SurveySpec, SurveySpecBuilder};
pub use worker::{WorkerId, WorkerProfile};
