//! Workers and their ground truth.
//!
//! A worker carries everything the experiments need to know about the
//! *real person behind the account*: demographics (the quasi-identifier
//! the attack reconstructs), health facts (the sensitive attribute survey
//! 4 harvests), latent opinions (so rating questions have a stable ground
//! truth), and attitude toward profiling (for the paper's follow-up
//! perception survey).

use loki_survey::demographics::QuasiIdentifier;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Internal worker identity (the *person*, not any platform-visible ID —
/// what the requester sees is produced by [`crate::idpolicy::IdPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct WorkerId(pub u64);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker-{}", self.0)
    }
}

/// Sensitive health facts — what the paper's fourth survey harvested
/// ("smoking habits and coughing frequency", from which "respiratory
/// health (and likelihood of tuberculosis)" was inferred).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthProfile {
    /// Smoking frequency on a 1–5 scale (1 = never, 5 = heavy).
    pub smoking_level: u8,
    /// Coughing frequency on a 1–5 scale.
    pub cough_level: u8,
}

impl HealthProfile {
    /// The inference the paper drew: elevated smoking *and* coughing flag
    /// likely poor respiratory health.
    pub fn respiratory_risk(&self) -> bool {
        self.smoking_level >= 4 && self.cough_level >= 4
    }
}

/// Attitude toward being profiled — ground truth for the paper's
/// follow-up survey ("73 responded that they did not know they could be
/// profiled, and indicated that they would not participate if they knew").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyAttitude {
    /// Whether the worker knows cross-survey profiling is possible.
    pub aware_of_profiling: bool,
    /// Whether they would still participate knowing they are profiled.
    pub would_participate_if_profiled: bool,
}

/// A simulated worker: account + person.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Stable internal identity.
    pub id: WorkerId,
    /// True demographics.
    pub demographics: QuasiIdentifier,
    /// True health facts.
    pub health: HealthProfile,
    /// Privacy attitude.
    pub attitude: PrivacyAttitude,
    /// Personal seed deriving all latent opinions deterministically.
    opinion_seed: u64,
}

impl WorkerProfile {
    /// Creates a worker with the given ground truth.
    pub fn new(
        id: WorkerId,
        demographics: QuasiIdentifier,
        health: HealthProfile,
        attitude: PrivacyAttitude,
    ) -> WorkerProfile {
        WorkerProfile {
            id,
            demographics,
            health,
            attitude,
            // Derive the opinion seed from the identity so construction is
            // deterministic without threading an RNG through.
            opinion_seed: id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The worker's latent opinion on `topic`, a stable value in `[1, 5]`.
    ///
    /// Deterministic per (worker, topic): asking twice returns the same
    /// value, which is what makes redundancy pairs meaningful. The latent
    /// opinion is centred on the topic's global mean with per-worker
    /// spread, mirroring how real raters differ around a lecturer's "true"
    /// quality.
    pub fn opinion(&self, topic: u32, topic_mean: f64, rater_spread: f64) -> f64 {
        assert!(rater_spread >= 0.0, "spread must be non-negative");
        let mut rng = ChaCha20Rng::seed_from_u64(self.opinion_seed ^ (u64::from(topic) << 17));
        // Two uniforms → approximately bell-shaped personal offset
        // (Irwin–Hall with n=2), bounded, cheap, deterministic.
        let u: f64 = rng.gen_range(0.0..1.0);
        let v: f64 = rng.gen_range(0.0..1.0);
        let offset = (u + v - 1.0) * rater_spread * 2.0;
        (topic_mean + offset).clamp(1.0, 5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::demographics::{BirthDate, Gender, ZipCode};

    fn demo() -> QuasiIdentifier {
        QuasiIdentifier {
            birth: BirthDate::new(1985, 7, 14).unwrap(),
            gender: Gender::Female,
            zip: ZipCode::new(90210).unwrap(),
        }
    }

    fn worker(id: u64) -> WorkerProfile {
        WorkerProfile::new(
            WorkerId(id),
            demo(),
            HealthProfile {
                smoking_level: 2,
                cough_level: 1,
            },
            PrivacyAttitude {
                aware_of_profiling: false,
                would_participate_if_profiled: false,
            },
        )
    }

    #[test]
    fn opinions_are_stable_per_topic() {
        let w = worker(7);
        let a = w.opinion(3, 4.0, 0.5);
        let b = w.opinion(3, 4.0, 0.5);
        assert_eq!(a, b, "same worker+topic must give the same opinion");
    }

    #[test]
    fn opinions_differ_across_topics_and_workers() {
        let w1 = worker(7);
        let w2 = worker(8);
        assert_ne!(w1.opinion(1, 3.0, 0.8), w1.opinion(2, 3.0, 0.8));
        assert_ne!(w1.opinion(1, 3.0, 0.8), w2.opinion(1, 3.0, 0.8));
    }

    #[test]
    fn opinions_clamped_to_scale() {
        let w = worker(3);
        for topic in 0..200 {
            let v = w.opinion(topic, 4.8, 1.5);
            assert!((1.0..=5.0).contains(&v), "opinion {v} off scale");
        }
    }

    #[test]
    fn opinions_center_on_topic_mean() {
        // Across many workers, the mean latent opinion approaches the
        // topic mean (the basis of the Fig. 2 estimates).
        let n = 2_000;
        let mean: f64 = (0..n)
            .map(|i| worker(i).opinion(5, 3.5, 0.8))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn respiratory_risk_rule() {
        let risky = HealthProfile {
            smoking_level: 5,
            cough_level: 4,
        };
        let fine = HealthProfile {
            smoking_level: 5,
            cough_level: 1,
        };
        assert!(risky.respiratory_risk());
        assert!(!fine.respiratory_risk());
    }

    #[test]
    fn construction_is_deterministic() {
        assert_eq!(worker(9), worker(9));
    }
}
