//! Streaming aggregation and the live privacy observatory.
//!
//! Every read surface the server exposes used to answer by rescanning the
//! submission maps: `/v1/surveys/:id/results/:q` walked a survey's whole
//! submission list per request, `/v1/stats` walked every survey, and the
//! near-cap SLO ratio walked every ε-ledger per scrape. This module keeps
//! the *sufficient statistics* those answers need — count / sum / sum of
//! squares / min / max per privacy bin per question
//! ([`loki_core::estimator::BinStats`]), a per-shard submission counter,
//! and a k-anonymity sketch over the Sweeney quasi-identifier triple
//! ([`loki_attack::stream::AnonymitySketch`]) — updated inside the shard's
//! apply step, so the read paths become O(shards) merges.
//!
//! Two invariants carry the design:
//!
//! * **Scan equivalence.** [`SurveyAgg::apply`] folds values in exactly
//!   the order [`crate::store::AppState::bin_samples`] would visit them
//!   (it runs inside the same `submissions` critical section that appends
//!   the stored copy), and sequential `+=` is the same float fold as
//!   `iter().sum()`, so streamed estimates equal rescanned estimates
//!   *bitwise* — pinned by the `agg_stream` property tests.
//! * **Identity hygiene.** The observatory ingests opaque subject ids and
//!   demographic fragments, but everything it exports
//!   ([`KAnonymity`], [`PrivacySummary`]) is bucket counts only. The
//!   `sensitive-egress` lint's identity-taint pass covers this file, and
//!   the ingest APIs that *do* touch fragments are `pub(crate)` so no
//!   quasi-identifier-bearing type ever appears in the crate's public
//!   surface.

use loki_attack::stream::{merge_fragment, AnonymitySketch, KAnonymity};
use loki_core::estimator::BinStats;
use loki_core::privacy_level::PrivacyLevel;
use loki_platform::spec::QuestionSemantics;
use loki_survey::demographics::PartialProfile;
use loki_survey::question::Answer;
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyId};
use loki_survey::QuestionId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// Whether a semantic class contributes to the Sweeney quasi-identifier
/// triple (date of birth, gender, ZIP).
fn is_quasi_identifier(sem: &QuestionSemantics) -> bool {
    matches!(
        sem,
        QuestionSemantics::BirthDay
            | QuestionSemantics::BirthMonth
            | QuestionSemantics::BirthYear
            | QuestionSemantics::Gender
            | QuestionSemantics::ZipCode
    )
}

/// Per-survey streaming state: inferred question semantics plus mergeable
/// sufficient statistics per question per privacy bin.
///
/// Semantics are inferred once at publication from the stored
/// [`Survey`] alone ([`QuestionSemantics::infer`] is a pure function of
/// question text and kind), so a WAL replay or snapshot load rebuilds the
/// identical classification with no extra persisted state.
#[derive(Debug, Clone)]
pub struct SurveyAgg {
    /// `(question, inferred semantics)` in survey order — the apply loop
    /// iterates this, which fixes the fold order to match a rescan.
    semantics: Vec<(QuestionId, Option<QuestionSemantics>)>,
    /// Submissions folded in so far.
    submissions: u64,
    /// Sufficient statistics per question per privacy bin.
    questions: BTreeMap<QuestionId, BTreeMap<PrivacyLevel, BinStats>>,
}

impl SurveyAgg {
    /// Fresh state for a newly published survey.
    pub fn for_survey(survey: &Survey) -> SurveyAgg {
        SurveyAgg {
            semantics: survey
                .questions
                .iter()
                .map(|q| (q.id, QuestionSemantics::infer(q)))
                .collect(),
            submissions: 0,
            questions: BTreeMap::new(),
        }
    }

    /// Folds one accepted submission into the statistics and returns the
    /// demographic fragment its answers disclosed (for the observatory).
    ///
    /// Must be called under the same critical section that appends the
    /// stored submission, in append order — that is what makes the
    /// accumulated sums bitwise-equal to a later rescan.
    pub(crate) fn apply(&mut self, level: PrivacyLevel, response: &Response) -> PartialProfile {
        loki_obs::phase!("agg.apply");
        self.submissions = self.submissions.saturating_add(1);
        let mut fragment = PartialProfile::new();
        for (qid, sem) in &self.semantics {
            let Some(answer) = response.get(*qid) else {
                continue;
            };
            if let Some(v) = answer.as_f64() {
                self.questions
                    .entry(*qid)
                    .or_default()
                    .entry(level)
                    .or_default()
                    .push(v);
            }
            if let Some(sem) = sem {
                merge_fragment(&mut fragment, sem, answer);
            }
        }
        fragment
    }

    /// Submissions folded in so far.
    pub fn folded_count(&self) -> u64 {
        self.submissions
    }

    /// Number of questions whose inferred semantics contribute to the
    /// quasi-identifier triple.
    pub fn qi_questions(&self) -> u64 {
        self.semantics
            .iter()
            .filter(|(_, s)| s.as_ref().is_some_and(is_quasi_identifier))
            .count() as u64
    }

    /// The per-bin sufficient statistics of one question (`None` when no
    /// numeric value has arrived for it). `BinStats` is `Copy`, so this
    /// is a cheap snapshot the caller can estimate from without holding
    /// any lock.
    pub fn stats_for(&self, question: QuestionId) -> Option<BTreeMap<PrivacyLevel, BinStats>> {
        self.questions.get(&question).cloned()
    }
}

/// Shard count of the observatory's sketch map. Fixed like the
/// accountant's ledger shards: subject routing must not depend on the
/// store's survey-shard count.
const SKETCH_SHARDS: usize = 16;

/// The process-global privacy observatory: sharded anonymity sketches
/// plus per-survey disclosure counters.
///
/// Subjects route to exactly one sketch shard (stable FNV-1a routing), so
/// summing cohort maps across shards reproduces the exact global cohort
/// structure — the same argument the store makes for its survey shards.
#[derive(Debug)]
pub struct PrivacyObservatory {
    /// Sharded streaming sketches, subject-routed.
    sketches: Vec<Mutex<AnonymitySketch>>,
    /// Quasi-identifier fragments disclosed per survey (how much each
    /// survey feeds the linkage attack).
    qi_surveys: Mutex<BTreeMap<SurveyId, u64>>,
}

impl Default for PrivacyObservatory {
    fn default() -> Self {
        PrivacyObservatory {
            sketches: (0..SKETCH_SHARDS).map(|_| Mutex::default()).collect(),
            qi_surveys: Mutex::default(),
        }
    }
}

impl PrivacyObservatory {
    /// Creates an empty observatory.
    pub fn new() -> PrivacyObservatory {
        PrivacyObservatory::default()
    }

    fn sketch_for(&self, subject: &str) -> &Mutex<AnonymitySketch> {
        // lint:allow panic-path -- index is `hash % len` with len >= 1.
        &self.sketches[crate::store::user_shard_of(subject, SKETCH_SHARDS)]
    }

    /// Folds one submission's disclosed fragment into the subject's
    /// sketch entry. O(1): one sketch-shard lock, one counter update; the
    /// two locks are taken strictly in sequence, never nested.
    pub(crate) fn ingest(&self, survey: SurveyId, subject: &str, fragment: &PartialProfile) {
        loki_obs::phase!("agg.sketch");
        let disclosed = fragment.disclosed_count() as u64;
        if disclosed == 0 {
            return;
        }
        self.sketch_for(subject).lock().observe(subject, fragment);
        let mut counters = self.qi_surveys.lock();
        let entry = counters.entry(survey).or_insert(0);
        *entry = entry.saturating_add(disclosed);
    }

    /// The platform-wide k-anonymity summary: merge the shard cohort
    /// maps (O(cohorts), no submission scan) and bucket them.
    pub fn k_anonymity(&self) -> KAnonymity {
        loki_obs::phase!("agg.merge");
        let mut cohorts: HashMap<_, u64> = HashMap::new();
        for sketch in &self.sketches {
            sketch.lock().merge_cohorts_into(&mut cohorts);
        }
        KAnonymity::from_cohort_sizes(cohorts.into_values())
    }

    /// Subjects that have disclosed at least one demographic fragment.
    pub fn subject_count(&self) -> u64 {
        self.sketches.iter().map(|s| s.lock().subjects()).sum()
    }

    /// Quasi-identifier fragments disclosed per survey.
    pub fn fragments_by_survey(&self) -> BTreeMap<SurveyId, u64> {
        self.qi_surveys.lock().clone()
    }

    /// Point-in-time summary for `/v1/privacy` and the metrics scrape.
    pub fn summary(&self) -> PrivacySummary {
        PrivacySummary {
            k: self.k_anonymity(),
            subjects: self.subject_count(),
            fragments_by_survey: self.fragments_by_survey(),
        }
    }
}

/// Identity-free snapshot of the observatory, for the `/v1/privacy`
/// endpoint and the scrape path. Bucket counts only.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacySummary {
    /// Platform-wide k-anonymity over completed quasi-identifiers.
    pub k: KAnonymity,
    /// Subjects with at least one disclosed fragment.
    pub subjects: u64,
    /// Quasi-identifier fragments disclosed per survey.
    pub fragments_by_survey: BTreeMap<SurveyId, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::QuestionKind;
    use loki_survey::survey::SurveyBuilder;

    fn demo_survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(9), "demographics");
        b.question(
            "Day of the month you were born",
            QuestionKind::Numeric { min: 1, max: 31 },
            false,
        );
        b.question(
            "What is your gender?",
            QuestionKind::MultipleChoice {
                options: vec!["Female".into(), "Male".into()],
            },
            false,
        );
        b.question("Rate your mood", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn response(user: &str, day: f64, gender: usize, mood: f64) -> Response {
        let survey = demo_survey();
        let mut r = Response::new(user, survey.id);
        r.answer(survey.questions[0].id, Answer::Obfuscated(day));
        r.answer(survey.questions[1].id, Answer::Choice(gender));
        r.answer(survey.questions[2].id, Answer::Obfuscated(mood));
        r
    }

    #[test]
    fn apply_accumulates_stats_in_arrival_order() {
        let survey = demo_survey();
        let mut agg = SurveyAgg::for_survey(&survey);
        let values = [4.0, 2.5, 3.0];
        for (i, v) in values.iter().enumerate() {
            agg.apply(PrivacyLevel::None, &response(&format!("u{i}"), 10.0, 0, *v));
        }
        assert_eq!(agg.folded_count(), 3);
        let stats = agg.stats_for(survey.questions[2].id).unwrap();
        let bin = stats.get(&PrivacyLevel::None).unwrap();
        // Bitwise equality with the sequential fold a rescan would do.
        assert_eq!(*bin, BinStats::from_samples(&values));
        // Choice answers carry no numeric value: no stats for the gender
        // question, but the day question (Obfuscated) accumulates.
        assert!(agg.stats_for(survey.questions[1].id).is_none());
        assert_eq!(
            agg.stats_for(survey.questions[0].id).unwrap()[&PrivacyLevel::None].n,
            3
        );
    }

    #[test]
    fn apply_extracts_fragments_for_inferred_qi_questions() {
        let survey = demo_survey();
        let mut agg = SurveyAgg::for_survey(&survey);
        assert_eq!(agg.qi_questions(), 2, "day + gender, not the likert");
        let fragment = agg.apply(PrivacyLevel::None, &response("u", 14.0, 1, 3.0));
        assert_eq!(fragment.day, Some(14));
        assert_eq!(
            fragment.gender,
            Some(loki_survey::demographics::Gender::Male)
        );
        assert_eq!(fragment.zip, None);
    }

    #[test]
    fn observatory_counts_fragments_and_routes_subjects() {
        let survey = demo_survey();
        let mut agg = SurveyAgg::for_survey(&survey);
        let obs = PrivacyObservatory::new();
        for i in 0..20 {
            let subject = format!("subject-{i}");
            let fragment = agg.apply(
                PrivacyLevel::None,
                &response(&subject, 1.0 + f64::from(i % 5), i as usize % 2, 3.0),
            );
            obs.ingest(survey.id, &subject, &fragment);
        }
        assert_eq!(obs.subject_count(), 20);
        // 2 fragments per submission (day + gender).
        assert_eq!(obs.fragments_by_survey()[&survey.id], 40);
        // Day+gender alone never completes a QI: no cohorts yet.
        let summary = obs.summary();
        assert_eq!(summary.k.complete, 0);
        assert_eq!(summary.subjects, 20);
    }

    #[test]
    fn observatory_merge_equals_unsharded_sketch() {
        // Full QIs through the observatory's sharded sketches must
        // summarize identically to one unsharded sketch.
        let obs = PrivacyObservatory::new();
        let mut single = AnonymitySketch::new();
        for i in 0u64..30 {
            let subject = format!("s{i}");
            let mut f = PartialProfile::new();
            f.day = Some(1 + (i % 4) as u8);
            f.month = Some(1 + (i % 3) as u8);
            f.year = Some(1980 + (i % 2) as u16);
            f.gender = Some(loki_survey::demographics::Gender::Female);
            f.zip = loki_survey::demographics::ZipCode::new(30_000 + (i % 5) as u32);
            obs.ingest(SurveyId(1), &subject, &f);
            single.observe(&subject, &f);
        }
        assert_eq!(obs.k_anonymity(), single.k_anonymity());
        assert!(obs.k_anonymity().complete > 0);
    }

    #[test]
    fn empty_fragment_is_not_a_subject() {
        let obs = PrivacyObservatory::new();
        obs.ingest(SurveyId(1), "ghost", &PartialProfile::new());
        assert_eq!(obs.subject_count(), 0);
        assert!(obs.fragments_by_survey().is_empty());
        assert_eq!(obs.summary().k.at_risk_ratio(), 0.0);
    }
}
