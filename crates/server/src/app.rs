//! Route wiring: [`AppState`] + [`loki_net::Router`] → a running server.
//!
//! Every route is registered under the versioned prefix `/v1/...` **and**
//! as an unversioned legacy alias (`/surveys` ≡ `/v1/surveys`). Both
//! registrations share the same handler `Arc`, so alias parity is
//! guaranteed by construction, byte for byte. Handlers return
//! `Result<Response, ApiError>`; every failure — including the
//! framework's own 404/405 and parser-level 400/413/431, routed through
//! [`Router::set_error_renderer`] — renders as the unified envelope
//! `{"error": {"code", "message"}}` ([`crate::error`]).

use crate::api::{BinResult, LedgerInfo, QuestionResults, SubmitReply, SubmitRequest, SurveySummary};
use crate::error::{error_envelope_traced, parse_body, path_param, ApiError};
use crate::metrics::ServerMetrics;
use crate::store::AppState;
use loki_core::estimator::Estimator;
use loki_dp::params::Delta;
use loki_net::http::{Method, Request, Response, StatusCode, TRACE_ID_HEADER};
use loki_net::json::json_response;
use loki_net::router::{Params, Router};
use loki_net::server::{Server, ServerConfig, ServerHandle};
use loki_obs::StoredTrace;
use loki_survey::survey::{Survey, SurveyId};
use loki_survey::QuestionId;
use std::sync::Arc;
use std::time::Instant;

/// A fallible handler; errors render through the shared envelope.
type ApiHandler = Arc<dyn Fn(&Request, &Params) -> Result<Response, ApiError> + Send + Sync>;

/// Registers `handler` under `/v1{pattern}` and the legacy unversioned
/// `{pattern}`. Both routes dispatch to the same closure, so the alias
/// can never drift from the versioned route. Legacy dispatches keep the
/// byte-identical body but carry a `Deprecation: true` /
/// `Successor-Version` header pair pointing at the `/v1` twin, and
/// count into `loki_http_legacy_requests_total` so operators can watch
/// alias traffic drain before retiring the unversioned surface.
///
/// This is also the tracing chokepoint: every dispatch starts a trace,
/// installs its context as the thread-local current (so the store and
/// WAL layers pick it up without parameter plumbing), stamps the id on
/// the response as [`TRACE_ID_HEADER`] — and into the error envelope on
/// failure — then hands the trace back to the tracer for retention.
fn mount(
    router: &mut Router,
    metrics: &Arc<ServerMetrics>,
    method: Method,
    pattern: &str,
    handler: ApiHandler,
) {
    let versioned = format!("/v1{pattern}");
    for (pat, legacy) in [(versioned.as_str(), false), (pattern, true)] {
        let m = Arc::clone(metrics);
        let h = Arc::clone(&handler);
        router.route(method, pat, move |req, params| {
            let trace = m.tracer().start();
            let trace_id = trace.id();
            let outcome = {
                let _guard = loki_obs::trace::set_current(trace.ctx());
                h(req, params)
            };
            let mut resp =
                outcome.unwrap_or_else(|err| err.into_response_traced(trace_id));
            resp.headers.insert(TRACE_ID_HEADER, format!("{trace_id:016x}"));
            if legacy {
                m.on_legacy_request();
                resp.headers.insert("Deprecation", "true");
                resp.headers.insert("Successor-Version", format!("/v1{}", req.path));
            }
            m.tracer().finish(trace);
            resp
        });
    }
}

/// XOR key folded into pagination cursors so they read as opaque tokens
/// rather than raw survey ids — clients must echo `next` verbatim, and
/// the key lets us change the encoding later without anyone noticing.
const CURSOR_XOR: u64 = 0x9bd1_c4e2_3a75_086f;

/// Encodes a survey id as an opaque 16-hex-digit pagination cursor.
fn encode_cursor(id: u64) -> String {
    format!("{:016x}", id ^ CURSOR_XOR)
}

/// Decodes a cursor minted by [`encode_cursor`]. Anything that is not
/// exactly 16 hex digits is rejected as `bad_cursor`.
fn decode_cursor(raw: &str) -> Result<u64, ApiError> {
    let parsed = (raw.len() == 16)
        .then(|| u64::from_str_radix(raw, 16).ok())
        .flatten();
    match parsed {
        Some(v) => Ok(v ^ CURSOR_XOR),
        None => Err(ApiError::new(
            StatusCode::BAD_REQUEST,
            "bad_cursor",
            "query parameter `after` is not a valid cursor",
        )),
    }
}

/// JSON shape of one retained trace: the implicit root span is
/// synthesized (id 1, the full request duration) so the tree the client
/// sees is complete.
fn trace_json(t: &StoredTrace) -> serde_json::Value {
    let mut spans = vec![serde_json::json!({
        "id": loki_obs::trace::ROOT_SPAN,
        "name": "request",
        "parent": null,
        "start_ns": 0,
        "end_ns": t.duration_ns,
        "attrs": {},
    })];
    spans.extend(t.spans.iter().map(|s| {
        let attrs: serde_json::Map<String, serde_json::Value> = s
            .attrs
            .iter()
            .map(|(k, v)| ((*k).to_string(), serde_json::json!(v)))
            .collect();
        serde_json::json!({
            "id": s.id,
            "name": s.name,
            "parent": s.parent,
            "start_ns": s.start_ns,
            "end_ns": s.end_ns,
            "attrs": attrs,
        })
    }));
    serde_json::json!({
        "id": format!("{:016x}", t.id),
        "sampled": t.sampled,
        "duration_ns": t.duration_ns,
        "spans": spans,
    })
}

/// `None` for non-finite values, so JSON renders them as `null` rather
/// than failing to serialize.
fn finite(v: f64) -> Option<f64> {
    v.is_finite().then_some(v)
}

/// Builds the full API router over shared state. Enables metrics on the
/// state (idempotent) so handler-level instruments always have a target.
pub fn build_router(state: Arc<AppState>) -> Router {
    let metrics = state.enable_metrics();
    let mut router = Router::new();
    // Router-level errors (404/405, parser rejections) never reach a
    // handler, so they draw a bare id from the same stream: every
    // response carries a trace id, even ones no handler ever saw.
    let m = Arc::clone(&metrics);
    router.set_error_renderer(move |status, code, message| {
        error_envelope_traced(status, code, message, m.tracer().next_id())
    });

    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/health",
        Arc::new(|_, _| Ok(Response::text(StatusCode::OK, "ok"))),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/surveys",
        Arc::new(move |req, _| {
            let summarize = |sv: &Survey| SurveySummary {
                id: sv.id.0,
                title: sv.title.clone(),
                questions: sv.len(),
                reward_cents: sv.reward_cents,
            };
            // Unpaginated calls keep the original bare-array shape for
            // compatibility; `?limit=`/`?after=` opt into the cursor
            // envelope, which stays O(page) under the sharded store.
            if req.query_param("limit").is_none() && req.query_param("after").is_none() {
                let list: Vec<SurveySummary> = s.surveys().iter().map(summarize).collect();
                return Ok(json_response(StatusCode::OK, &list));
            }
            let limit = query_u64(req, "limit", 50)?;
            if limit == 0 || limit > 1000 {
                return Err(ApiError::new(
                    StatusCode::BAD_REQUEST,
                    "bad_param",
                    "query parameter `limit` must be between 1 and 1000",
                ));
            }
            let after = match req.query_param("after") {
                None => None,
                Some(raw) => Some(SurveyId(decode_cursor(raw)?)),
            };
            let (page, has_more) = s.surveys_page(after, limit as usize);
            let next = has_more
                .then(|| page.last().map(|sv| encode_cursor(sv.id.0)))
                .flatten();
            let items: Vec<SurveySummary> = page.iter().map(summarize).collect();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({"surveys": items, "next": next}),
            ))
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/surveys/:id",
        Arc::new(move |_, params| {
            let id: u64 = path_param(params, "id")?;
            match s.survey(SurveyId(id)) {
                Some(survey) => Ok(json_response(StatusCode::OK, &survey)),
                None => Err(ApiError::new(
                    StatusCode::NOT_FOUND,
                    "unknown_survey",
                    "unknown survey",
                )),
            }
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Post,
        "/surveys",
        Arc::new(move |req, _| {
            let token = req
                .headers
                .get("authorization")
                .and_then(|v| v.strip_prefix("Bearer "));
            if !s.may_publish(token) {
                return Err(ApiError::new(
                    StatusCode::UNAUTHORIZED,
                    "unauthorized",
                    "requester token required",
                ));
            }
            let survey: Survey = parse_body(req)?;
            if survey.is_empty() {
                return Err(ApiError::new(
                    StatusCode::UNPROCESSABLE,
                    "empty_survey",
                    "survey has no questions",
                ));
            }
            match s.add_survey(survey) {
                Ok(true) => Ok(json_response(
                    StatusCode::CREATED,
                    &serde_json::json!({"created": true}),
                )),
                Ok(false) => Err(ApiError::new(
                    StatusCode::CONFLICT,
                    "duplicate_survey",
                    "survey id already exists",
                )),
                // Durability failure: the survey is neither on disk nor
                // in memory — tell the requester instead of lying.
                Err(e) => Err(ApiError::from(e)),
            }
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Post,
        "/surveys/:id/responses",
        Arc::new(move |req, params| {
            let started = Instant::now();
            let id: u64 = path_param(params, "id")?;
            let body: SubmitRequest = parse_body(req)?;
            if body.response.survey != SurveyId(id) {
                return Err(ApiError::new(
                    StatusCode::UNPROCESSABLE,
                    "survey_mismatch",
                    "response targets a different survey",
                ));
            }
            let outcome = s.submit(&body.user, body.privacy_level, body.response, &body.releases);
            if let Some(m) = s.metrics() {
                let trace_id = loki_obs::trace::current().map(|c| c.trace_id()).unwrap_or(0);
                m.observe_submit(started.elapsed(), trace_id);
            }
            let stored = outcome.map_err(ApiError::from)?;
            let loss = s.user_loss(&body.user);
            let reply = SubmitReply {
                stored,
                cumulative_epsilon: loss.is_finite().then(|| loss.epsilon.value()),
            };
            Ok(json_response(StatusCode::CREATED, &reply))
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/surveys/:id/results/:question",
        Arc::new(move |_, params| {
            let id: u64 = path_param(params, "id")?;
            let q: u32 = path_param(params, "question")?;
            if s.survey(SurveyId(id)).is_none() {
                return Err(ApiError::new(
                    StatusCode::NOT_FOUND,
                    "unknown_survey",
                    "unknown survey",
                ));
            }
            let estimator = Estimator::default();
            match s.results(SurveyId(id), QuestionId(q), &estimator) {
                Some(pooled) => {
                    let reply = QuestionResults {
                        survey: id,
                        question: q,
                        bins: pooled
                            .bins
                            .iter()
                            .map(|b| BinResult {
                                level: b.level,
                                n: b.n,
                                mean: b.mean,
                                standard_error: b.standard_error,
                            })
                            .collect(),
                        pooled_mean: pooled.mean,
                        pooled_standard_error: pooled.standard_error,
                        n_total: pooled.n_total,
                    };
                    Ok(json_response(StatusCode::OK, &reply))
                }
                None => Err(ApiError::new(
                    StatusCode::NOT_FOUND,
                    "no_responses",
                    "no responses for question",
                )),
            }
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/surveys/:id/estimate/:question",
        Arc::new(move |req, params| {
            let id: u64 = path_param(params, "id")?;
            let q: u32 = path_param(params, "question")?;
            if s.survey(SurveyId(id)).is_none() {
                return Err(ApiError::new(
                    StatusCode::NOT_FOUND,
                    "unknown_survey",
                    "unknown survey",
                ));
            }
            // Streaming read path: answered from the per-shard sufficient
            // statistics, never from the submission maps. The default mode
            // must serialize byte-identically to the scan-backed
            // `/results/` route (pinned by the agg_stream property tests).
            let estimator = Estimator::default();
            let pooled = match req.query_param("mode") {
                None | Some("pooled") => {
                    s.streaming_results(SurveyId(id), QuestionId(q), &estimator)
                }
                Some("ldp-truth") => s.streaming_truth(SurveyId(id), QuestionId(q), &estimator),
                Some(_) => {
                    return Err(ApiError::new(
                        StatusCode::BAD_REQUEST,
                        "bad_param",
                        "query parameter `mode` must be `pooled` or `ldp-truth`",
                    ))
                }
            };
            match pooled {
                Some(pooled) => {
                    let reply = QuestionResults {
                        survey: id,
                        question: q,
                        bins: pooled
                            .bins
                            .iter()
                            .map(|b| BinResult {
                                level: b.level,
                                n: b.n,
                                mean: b.mean,
                                standard_error: b.standard_error,
                            })
                            .collect(),
                        pooled_mean: pooled.mean,
                        pooled_standard_error: pooled.standard_error,
                        n_total: pooled.n_total,
                    };
                    Ok(json_response(StatusCode::OK, &reply))
                }
                None => Err(ApiError::new(
                    StatusCode::NOT_FOUND,
                    "no_responses",
                    "no responses for question",
                )),
            }
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/surveys/:id/choices/:question",
        Arc::new(move |_, params| {
            let id: u64 = path_param(params, "id")?;
            let q: u32 = path_param(params, "question")?;
            if s.survey(SurveyId(id)).is_none() {
                return Err(ApiError::new(
                    StatusCode::NOT_FOUND,
                    "unknown_survey",
                    "unknown survey",
                ));
            }
            match s.choice_frequencies(SurveyId(id), QuestionId(q)) {
                Some(estimate) => Ok(json_response(StatusCode::OK, &estimate)),
                None => Err(ApiError::new(
                    StatusCode::NOT_FOUND,
                    "no_responses",
                    "no choice responses for question (or not a multiple-choice question)",
                )),
            }
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/stats",
        Arc::new(move |_, _| {
            let surveys = s.surveys();
            // O(shards): summed from the per-shard apply counters, never
            // by walking the submission maps.
            let submissions = s.submission_total();
            let summary = s.accountant.epsilon_summary(Delta::new(loki_dp::DEFAULT_DELTA));
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({
                    "surveys": surveys.len(),
                    "submissions": submissions,
                    "users": summary.users,
                    "unbounded_users": summary.unbounded,
                    "epsilon": {
                        "p50": finite(summary.p50),
                        "p90": finite(summary.p90),
                        "p99": finite(summary.p99),
                        "mean": finite(summary.mean),
                        "max": finite(summary.max),
                    },
                }),
            ))
        }),
    );

    let s = Arc::clone(&state);
    let privacy_metrics = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/privacy",
        Arc::new(move |_, _| {
            // The merge is O(sketch shards + cohorts) regardless of how
            // many submissions produced the sketches; its latency feeds
            // `loki_agg_merge_seconds` so the flat-cost claim is watchable.
            let started = Instant::now();
            let summary = s.privacy_summary();
            privacy_metrics.observe_agg_merge(started.elapsed());
            let fragments = &summary.fragments_by_survey;
            let surveys: Vec<serde_json::Value> = s
                .survey_agg_rollups()
                .iter()
                .map(|(id, submissions, qi_questions)| {
                    serde_json::json!({
                        "survey": id.0,
                        "submissions": submissions,
                        "qi_questions": qi_questions,
                        "qi_fragments": fragments.get(id).copied().unwrap_or(0),
                    })
                })
                .collect();
            // Bucket counts only: no subject ids, no quasi-identifier
            // values ever cross this serializer (loki-lint raw-identity
            // scope covers this module).
            let histogram: Vec<serde_json::Value> = summary
                .k
                .histogram
                .iter()
                .map(|(k, members)| serde_json::json!({"k": k, "subjects": members}))
                .collect();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({
                    "subjects": summary.subjects,
                    "k_anonymity": {
                        "complete": summary.k.complete,
                        "cohorts": summary.k.cohorts,
                        "histogram": histogram,
                        "at_risk": summary.k.at_risk,
                    },
                    "at_risk_ratio": finite(summary.k.at_risk_ratio()),
                    "linkage_entropy_bits": finite(summary.k.entropy_bits),
                    "surveys": surveys,
                }),
            ))
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/ledger/:user",
        Arc::new(move |_, params| {
            let user: String = path_param(params, "user")?;
            let loss = s.user_loss(&user);
            let info = LedgerInfo {
                user: user.clone(),
                releases: s.accountant.releases_of(&user),
                epsilon: loss.is_finite().then(|| loss.epsilon.value()),
                delta: loki_dp::DEFAULT_DELTA,
            };
            Ok(json_response(StatusCode::OK, &info))
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/admin/shards",
        Arc::new(move |req, _| {
            // Optional routing preview: which shard would this survey id
            // land on? Answered from the hash alone, so it works for ids
            // that do not exist yet.
            let routing = match req.query_param("survey_id") {
                None => None,
                Some(raw) => {
                    let id: u64 = raw.parse().map_err(|_| {
                        ApiError::new(
                            StatusCode::BAD_REQUEST,
                            "bad_param",
                            "query parameter `survey_id` must be a non-negative integer",
                        )
                    })?;
                    Some(serde_json::json!({
                        "survey_id": id,
                        "shard": s.shard_of_survey(SurveyId(id)),
                    }))
                }
            };
            let shards: Vec<serde_json::Value> = s
                .shard_stats()
                .iter()
                .map(|st| {
                    serde_json::json!({
                        "shard": st.shard,
                        "surveys": st.surveys,
                        "submissions": st.submissions,
                        "ledger_users": st.ledger_users,
                        "user_locks_len": st.user_locks_len,
                        "wal": {
                            "attached": st.wal_attached,
                            "shared": st.wal_shared,
                            "depth": st.wal_depth,
                            "poisoned": st.wal_poisoned,
                        },
                    })
                })
                .collect();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({
                    "num_shards": s.num_shards(),
                    "shards": shards,
                    "routing": routing,
                }),
            ))
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/metrics",
        Arc::new(move |_, _| {
            let metrics = s.enable_metrics();
            // The ε gauges walk every ledger, so they refresh on scrape
            // rather than on every submission; the reactor gauges read
            // the live shard counters the same way.
            metrics.refresh_ledger_gauges(&s.accountant, s.epsilon_budget());
            metrics.refresh_net_gauges();
            metrics.refresh_resource_gauges();
            let mut resp = Response::status(StatusCode::OK);
            resp.headers
                .insert("Content-Type", "text/plain; version=0.0.4; charset=utf-8");
            resp.body = metrics.render_exposition().into();
            Ok(resp)
        }),
    );

    let s = Arc::clone(&state);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/accesslog",
        Arc::new(move |_, _| {
            Ok(Response::text(
                StatusCode::OK,
                s.enable_metrics().access_log().render_tail(100),
            ))
        }),
    );

    let s = Arc::clone(&state);
    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/healthz",
        Arc::new(move |_, _| {
            let (attached, poisoned) = s.journal_health();
            let proc = loki_obs::ProcStats::read();
            let firing: Vec<String> = m
                .slo()
                .statuses()
                .into_iter()
                .filter(|st| st.state == loki_obs::AlertState::Firing)
                .map(|st| st.name)
                .collect();
            // Degraded on either axis: the journal can no longer make
            // writes durable, or an SLO's error budget is burning fast
            // enough that a paging rule fired.
            let degraded = poisoned.is_some() || !firing.is_empty();
            let status = if degraded {
                StatusCode::SERVICE_UNAVAILABLE
            } else {
                StatusCode::OK
            };
            Ok(json_response(
                status,
                &serde_json::json!({
                    "status": if degraded { "degraded" } else { "ok" },
                    "version": env!("CARGO_PKG_VERSION"),
                    "uptime_seconds": s.uptime_seconds(),
                    "journal": {
                        "attached": attached,
                        "poisoned": poisoned.is_some(),
                        "error": poisoned,
                    },
                    "slo": {
                        "scrapes": m.scrapes(),
                        "firing": firing,
                    },
                    // Process footprint (fields null off-Linux): the
                    // same procfs reading the scrape ticks feed into
                    // loki_proc_* — surfaced here so a health probe can
                    // watch for resource runaway without a tsdb query.
                    "resources": {
                        "available": loki_obs::ProcStats::available(),
                        "rss_bytes": proc.rss_bytes,
                        "open_fds": proc.open_fds,
                        "threads": proc.threads,
                    },
                }),
            ))
        }),
    );

    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/traces",
        Arc::new(move |_, _| {
            // Most recent first; summaries only — the id resolves to the
            // full tree at `/traces/{id}`.
            let list: Vec<serde_json::Value> = m
                .tracer()
                .list()
                .iter()
                .rev()
                .map(|t| {
                    serde_json::json!({
                        "id": format!("{:016x}", t.id),
                        "sampled": t.sampled,
                        "duration_ns": t.duration_ns,
                        "spans": t.spans.len(),
                    })
                })
                .collect();
            Ok(json_response(StatusCode::OK, &list))
        }),
    );

    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/traces/:id",
        Arc::new(move |_, params| {
            let raw: String = path_param(params, "id")?;
            let id = u64::from_str_radix(&raw, 16).map_err(|_| {
                ApiError::new(
                    StatusCode::BAD_REQUEST,
                    "bad_param",
                    "trace id must be hexadecimal",
                )
            })?;
            match m.tracer().get(id) {
                Some(t) => Ok(json_response(StatusCode::OK, &trace_json(&t))),
                None => Err(ApiError::new(
                    StatusCode::NOT_FOUND,
                    "unknown_trace",
                    "trace not retained (not sampled, not slow, or evicted)",
                )),
            }
        }),
    );

    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/audit",
        Arc::new(move |_, _| {
            let log = m.audit_log();
            let events: Vec<serde_json::Value> = log
                .tail(100)
                .iter()
                .map(|e| {
                    serde_json::json!({
                        "seq": e.seq,
                        "timestamp_ms": e.timestamp_ms,
                        "subject_index": e.subject_index,
                        "outcome": e.outcome.as_str(),
                        "level": e.level,
                        "epsilon": e.epsilon,
                        "running_epsilon": e.running_epsilon,
                        "trace_id": e.trace_id.map(|id| format!("{id:016x}")),
                    })
                })
                .collect();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({"total": log.total(), "events": events}),
            ))
        }),
    );

    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/timeseries",
        Arc::new(move |req, _| {
            let name = req.query_param("name").ok_or_else(|| {
                ApiError::new(
                    StatusCode::BAD_REQUEST,
                    "bad_param",
                    "query parameter `name` is required (a metric family, e.g. loki_submit_seconds_count)",
                )
            })?;
            let label = req.query_param("label").unwrap_or("");
            let since = query_u64(req, "since", 0)?;
            let step = query_u64(req, "step", 1)?;
            let series: Vec<serde_json::Value> = m
                .tsdb()
                .query(name, label, since, step)
                .iter()
                .map(|sd| {
                    let points: Vec<serde_json::Value> = sd
                        .points
                        .iter()
                        .map(|p| {
                            serde_json::json!({
                                "tick": p.tick,
                                "min": finite(p.min),
                                "max": finite(p.max),
                                "avg": finite(p.avg),
                                "last": finite(p.last),
                                "count": p.count,
                            })
                        })
                        .collect();
                    serde_json::json!({"key": sd.key, "points": points})
                })
                .collect();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({"tick": m.scrapes(), "series": series}),
            ))
        }),
    );

    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/slo",
        Arc::new(move |_, _| {
            let slos: Vec<serde_json::Value> =
                m.slo().statuses().iter().map(slo_status_json).collect();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({"tick": m.scrapes(), "slos": slos}),
            ))
        }),
    );

    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/alerts",
        Arc::new(move |_, _| {
            let statuses = m.slo().statuses();
            let alerts: Vec<serde_json::Value> = statuses.iter().map(slo_status_json).collect();
            let firing = statuses
                .iter()
                .any(|st| st.state == loki_obs::AlertState::Firing);
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({"firing": firing, "alerts": alerts}),
            ))
        }),
    );

    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/alerts/history",
        Arc::new(move |_, _| {
            let engine = m.slo();
            let events: Vec<serde_json::Value> = engine
                .history_tail(100)
                .iter()
                .map(|e| {
                    serde_json::json!({
                        "seq": e.seq,
                        "timestamp_ms": e.timestamp_ms,
                        "tick": e.tick,
                        "slo": e.slo,
                        "from": e.from.as_str(),
                        "to": e.to.as_str(),
                        "burn_short": finite(e.burn_short),
                        "burn_long": finite(e.burn_long),
                        "trace_id": e.trace_id.map(|id| format!("{id:016x}")),
                    })
                })
                .collect();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({"total": engine.history_total(), "events": events}),
            ))
        }),
    );

    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/profile",
        Arc::new(move |req, _| {
            let snap = loki_obs::prof::snapshot();
            if req.query_param("format") == Some("collapsed") {
                // The collapsed-stack text format flamegraph tooling
                // consumes directly (`flamegraph.pl`, inferno, speedscope).
                return Ok(Response::text(StatusCode::OK, snap.collapsed()));
            }
            let threads: Vec<serde_json::Value> = snap
                .threads
                .iter()
                .map(|t| {
                    let phases: Vec<serde_json::Value> = t
                        .phases
                        .iter()
                        .map(|p| serde_json::json!({"phase": p.phase, "samples": p.samples}))
                        .collect();
                    serde_json::json!({
                        "thread": t.name,
                        "ordinal": t.ordinal,
                        "total_samples": t.total,
                        "phases": phases,
                    })
                })
                .collect();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({
                    "hz": snap.hz,
                    "ticks": snap.ticks,
                    "sampler_running": loki_obs::prof::sampler_enabled(),
                    "dropped_phases": snap.dropped_phases,
                    "total_samples": snap.total_samples(),
                    "attributed_samples": snap.attributed_samples(),
                    "threads": threads,
                }),
            ))
        }),
    );

    let m = Arc::clone(&metrics);
    mount(
        &mut router,
        &metrics,
        Method::Get,
        "/procstats",
        Arc::new(move |_, _| {
            // Refresh on read so the loki_proc_*/loki_alloc_* families
            // are current even between scrape ticks.
            m.refresh_resource_gauges();
            let proc = loki_obs::ProcStats::read();
            Ok(json_response(
                StatusCode::OK,
                &serde_json::json!({
                    "available": loki_obs::ProcStats::available(),
                    "rss_bytes": proc.rss_bytes,
                    "open_fds": proc.open_fds,
                    "threads": proc.threads,
                    "utime_ticks": proc.utime_ticks,
                    "stime_ticks": proc.stime_ticks,
                    "alloc": {
                        "counting": loki_obs::CountingAlloc::enabled(),
                        "allocs_total": loki_obs::CountingAlloc::allocs(),
                        "frees_total": loki_obs::CountingAlloc::frees(),
                        "bytes_total": loki_obs::CountingAlloc::bytes(),
                    },
                }),
            ))
        }),
    );

    router
}

/// Parses an optional non-negative integer query parameter.
fn query_u64(req: &Request, key: &str, default: u64) -> Result<u64, ApiError> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            ApiError::new(
                StatusCode::BAD_REQUEST,
                "bad_param",
                format!("query parameter `{key}` must be a non-negative integer"),
            )
        }),
    }
}

/// JSON shape of one SLO status, shared by `/v1/slo` and `/v1/alerts`.
fn slo_status_json(st: &loki_obs::SloStatus) -> serde_json::Value {
    serde_json::json!({
        "slo": st.name,
        "objective": st.objective,
        "state": st.state.as_str(),
        "since_tick": st.since_tick,
        "bad_ratio": finite(st.bad_ratio),
        "burn_short": finite(st.burn_short),
        "burn_long": finite(st.burn_long),
        "budget_remaining": finite(st.budget_remaining),
    })
}

/// Binds the API server on `addr` over fresh or shared state, with the
/// request observer and shed counter feeding the state's metrics.
///
/// Also starts the history layer's self-scraper at a 1 s interval unless
/// one is already running — a test (or embedder) that wants a faster
/// cadence starts its own via [`AppState::start_self_scraper`] *before*
/// calling this, and the default here backs off (the start is
/// idempotent).
pub fn serve(addr: &str, state: Arc<AppState>) -> std::io::Result<ServerHandle> {
    let metrics = state.enable_metrics();
    state.start_self_scraper(std::time::Duration::from_secs(1));
    // Start the wall-clock phase sampler (process-wide, idempotent): the
    // reactor shards and committer threads about to spawn register with
    // the profiler and /v1/profile reads what this thread accumulates.
    loki_obs::prof::start_sampler();
    let config = ServerConfig {
        observer: Some(metrics.observer()),
        shed_observer: Some(metrics.shed_observer()),
        ..ServerConfig::default()
    };
    let handle = Server::spawn(addr, build_router(state), config)?;
    // Feed the reactor's live counters into the loki_net_* families so
    // open-connection and wakeup telemetry rides the normal scrape path.
    metrics.attach_net_stats(handle.stats());
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_core::privacy_level::PrivacyLevel;
    use loki_net::client::HttpClient;
    use loki_net::json::parse_json_response;
    use loki_survey::question::{Answer, QuestionKind};
    use loki_survey::response::Response;
    use loki_survey::survey::SurveyBuilder;

    fn lecturer_survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "lecturers");
        b.question("rate L1", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn start() -> (ServerHandle, HttpClient, Arc<AppState>) {
        let state = Arc::new(AppState::new());
        state.add_survey(lecturer_survey()).unwrap();
        let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
        let c = HttpClient::new(&h.base_url()).unwrap();
        (h, c, state)
    }

    fn submit_body(user: &str, value: f64) -> String {
        let mut response = Response::new(user, SurveyId(1));
        response.answer(QuestionId(0), Answer::Obfuscated(value));
        serde_json::to_string(&SubmitRequest {
            user: user.into(),
            privacy_level: PrivacyLevel::Medium,
            response,
            releases: vec![(
                "survey-1/q0".into(),
                loki_dp::accountant::ReleaseKind::Gaussian {
                    sigma: 1.0,
                    sensitivity: 4.0,
                },
            )],
        })
        .unwrap()
    }

    #[test]
    fn health_and_survey_list() {
        let (h, c, _) = start();
        assert_eq!(&c.get("/health").unwrap().body[..], b"ok");
        let resp = c.get("/surveys").unwrap();
        let list: Vec<SurveySummary> = parse_json_response(&resp).unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].title, "lecturers");
        h.shutdown();
    }

    #[test]
    fn fetch_survey_and_404() {
        let (h, c, _) = start();
        let resp = c.get("/surveys/1").unwrap();
        let survey: Survey = parse_json_response(&resp).unwrap();
        assert_eq!(survey.id, SurveyId(1));
        assert_eq!(c.get("/surveys/99").unwrap().status, StatusCode::NOT_FOUND);
        assert_eq!(c.get("/surveys/abc").unwrap().status, StatusCode::BAD_REQUEST);
        h.shutdown();
    }

    #[test]
    fn publish_survey_over_http() {
        let (h, c, _) = start();
        let mut b = SurveyBuilder::new(SurveyId(2), "new");
        b.question("q", QuestionKind::likert5(), false);
        let body = serde_json::to_string(&b.build().unwrap()).unwrap();
        let resp = c.post("/surveys", "application/json", body.clone()).unwrap();
        assert_eq!(resp.status, StatusCode::CREATED);
        // Duplicate id conflicts.
        let resp = c.post("/surveys", "application/json", body).unwrap();
        assert_eq!(resp.status, StatusCode::CONFLICT);
        h.shutdown();
    }

    #[test]
    fn submit_results_and_ledger_flow() {
        let (h, c, _) = start();
        for (i, v) in [4.2, 3.9, 4.4].iter().enumerate() {
            let resp = c
                .post(
                    "/surveys/1/responses",
                    "application/json",
                    submit_body(&format!("u{i}"), *v),
                )
                .unwrap();
            assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
            let reply: SubmitReply = parse_json_response(&resp).unwrap();
            assert_eq!(reply.stored, i + 1);
            assert!(reply.cumulative_epsilon.unwrap() > 0.0);
        }
        let resp = c.get("/surveys/1/results/0").unwrap();
        let results: QuestionResults = parse_json_response(&resp).unwrap();
        assert_eq!(results.n_total, 3);
        assert!((results.pooled_mean - 4.1666).abs() < 1e-3);

        let resp = c.get("/ledger/u0").unwrap();
        let ledger: LedgerInfo = parse_json_response(&resp).unwrap();
        assert_eq!(ledger.releases, 1);
        assert!(ledger.epsilon.unwrap() > 0.0);
        h.shutdown();
    }

    #[test]
    fn raw_answer_rejected_over_http() {
        let (h, c, state) = start();
        let mut response = Response::new("u1", SurveyId(1));
        response.answer(QuestionId(0), Answer::Rating(4.0)); // raw
        let body = serde_json::to_string(&SubmitRequest {
            user: "u1".into(),
            privacy_level: PrivacyLevel::None,
            response,
            releases: vec![],
        })
        .unwrap();
        let resp = c.post("/surveys/1/responses", "application/json", body).unwrap();
        assert_eq!(resp.status, StatusCode::UNPROCESSABLE);
        assert_eq!(state.submission_count(SurveyId(1)), 0);
        h.shutdown();
    }

    #[test]
    fn duplicate_submission_conflicts() {
        let (h, c, _) = start();
        let resp = c
            .post("/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        assert_eq!(resp.status, StatusCode::CREATED);
        let resp = c
            .post("/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        assert_eq!(resp.status, StatusCode::CONFLICT);
        h.shutdown();
    }

    #[test]
    fn mismatched_survey_id_rejected() {
        let (h, c, _) = start();
        // Body targets survey 1 but URL says survey 99.
        let resp = c
            .post("/surveys/99/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        assert_eq!(resp.status, StatusCode::UNPROCESSABLE);
        h.shutdown();
    }

    #[test]
    fn results_404_without_responses() {
        let (h, c, _) = start();
        assert_eq!(
            c.get("/surveys/1/results/0").unwrap().status,
            StatusCode::NOT_FOUND
        );
        h.shutdown();
    }

    #[test]
    fn empty_ledger_reports_zero() {
        let (h, c, _) = start();
        let resp = c.get("/ledger/nobody").unwrap();
        let info: LedgerInfo = parse_json_response(&resp).unwrap();
        assert_eq!(info.releases, 0);
        assert_eq!(info.epsilon, Some(0.0));
        h.shutdown();
    }

    #[test]
    fn publish_requires_token_once_configured() {
        let (h, c, state) = start();
        state.add_requester_token("secret-token");
        let mut b = SurveyBuilder::new(SurveyId(5), "gated");
        b.question("q", QuestionKind::likert5(), false);
        let body = serde_json::to_string(&b.build().unwrap()).unwrap();

        // No token: 401.
        let resp = c.post("/surveys", "application/json", body.clone()).unwrap();
        assert_eq!(resp.status, StatusCode::UNAUTHORIZED);

        // Wrong token: 401.
        let mut req = loki_net::http::Request::new(loki_net::http::Method::Post, "/surveys")
            .with_body(body.clone());
        req.headers.insert("Authorization", "Bearer wrong");
        assert_eq!(c.send(req).unwrap().status, StatusCode::UNAUTHORIZED);

        // Right token: 201.
        let mut req = loki_net::http::Request::new(loki_net::http::Method::Post, "/surveys")
            .with_body(body);
        req.headers.insert("Authorization", "Bearer secret-token");
        assert_eq!(c.send(req).unwrap().status, StatusCode::CREATED);
        h.shutdown();
    }

    #[test]
    fn choice_results_invert_randomized_response() {
        let state = Arc::new(AppState::new());
        let mut b = SurveyBuilder::new(SurveyId(1), "mc");
        b.question(
            "pick",
            QuestionKind::MultipleChoice {
                options: vec!["a".into(), "b".into(), "c".into()],
            },
            false,
        );
        state.add_survey(b.build().unwrap()).unwrap();
        let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
        let c = HttpClient::new(&h.base_url()).unwrap();

        // 300 users all truly answer "b", uploading through RR at Medium.
        use loki_core::obfuscate::Obfuscator;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(5);
        let survey = state.survey(SurveyId(1)).unwrap();
        let obf = Obfuscator::new(PrivacyLevel::Medium);
        for i in 0..300 {
            let mut raw = Response::new(format!("u{i}"), SurveyId(1));
            raw.answer(QuestionId(0), Answer::Choice(1));
            let (upload, releases) = obf.obfuscate_response(&mut rng, &survey, &raw).unwrap();
            state
                .submit(&format!("u{i}"), PrivacyLevel::Medium, upload, &releases)
                .unwrap();
        }

        let resp = c.get("/surveys/1/choices/0").unwrap();
        assert!(resp.status.is_success());
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let freq_b = v["frequencies"][1].as_f64().unwrap();
        assert!(
            freq_b > 0.85,
            "RR inversion should recover ~1.0 for option b, got {freq_b}"
        );
        assert_eq!(v["n_total"].as_u64().unwrap(), 300);
        h.shutdown();
    }

    #[test]
    fn choices_on_rating_question_is_404() {
        let (h, c, _) = start();
        assert_eq!(
            c.get("/surveys/1/choices/0").unwrap().status,
            StatusCode::NOT_FOUND
        );
        h.shutdown();
    }

    #[test]
    fn stats_endpoint_counts() {
        let (h, c, _) = start();
        c.post("/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        let resp = c.get("/stats").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["surveys"], 1);
        assert_eq!(v["submissions"], 1);
        assert_eq!(v["users"], 1);
        assert_eq!(v["unbounded_users"], 0);
        assert!(v["epsilon"]["max"].as_f64().unwrap() > 0.0);
        assert_eq!(v["epsilon"]["p50"], v["epsilon"]["max"]);
        h.shutdown();
    }

    #[test]
    fn estimate_endpoint_matches_results_byte_for_byte() {
        let (h, c, _) = start();
        for (i, v) in [4.2, 3.9, 4.4].iter().enumerate() {
            c.post(
                "/surveys/1/responses",
                "application/json",
                submit_body(&format!("u{i}"), *v),
            )
            .unwrap();
        }
        // The streaming read path must be indistinguishable from the
        // scan-backed one, down to the serialized bytes.
        let scan = c.get("/surveys/1/results/0").unwrap();
        let streaming = c.get("/surveys/1/estimate/0").unwrap();
        assert_eq!(streaming.status, StatusCode::OK, "{:?}", streaming.body);
        assert_eq!(scan.body, streaming.body);
        let explicit = c.get("/surveys/1/estimate/0?mode=pooled").unwrap();
        assert_eq!(scan.body, explicit.body);

        // Truth inference is a different pooling rule: same counts,
        // generally different mean.
        let resp = c.get("/surveys/1/estimate/0?mode=ldp-truth").unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
        let truth: QuestionResults = parse_json_response(&resp).unwrap();
        assert_eq!(truth.n_total, 3);
        assert!(truth.pooled_mean.is_finite());

        let resp = c.get("/surveys/1/estimate/0?mode=bogus").unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        assert_eq!(c.get("/surveys/99/estimate/0").unwrap().status, StatusCode::NOT_FOUND);
        assert_eq!(c.get("/surveys/1/estimate/7").unwrap().status, StatusCode::NOT_FOUND);
        h.shutdown();
    }

    fn demographics_survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(2), "about you");
        b.question(
            "Day of the month you were born",
            QuestionKind::Numeric { min: 1, max: 31 },
            true,
        );
        b.question("Month you were born", QuestionKind::Numeric { min: 1, max: 12 }, true);
        b.question("Year you were born", QuestionKind::Numeric { min: 1900, max: 2020 }, true);
        b.question(
            "What is your gender?",
            QuestionKind::MultipleChoice {
                options: vec!["Female".into(), "Male".into()],
            },
            true,
        );
        b.question("What is your zip code?", QuestionKind::Numeric { min: 0, max: 99999 }, true);
        b.build().unwrap()
    }

    fn submit_demographics(c: &HttpClient, user: &str, dmy: (f64, f64, f64), gender: usize, zip: f64) {
        let mut response = Response::new(user, SurveyId(2));
        response.answer(QuestionId(0), Answer::Obfuscated(dmy.0));
        response.answer(QuestionId(1), Answer::Obfuscated(dmy.1));
        response.answer(QuestionId(2), Answer::Obfuscated(dmy.2));
        response.answer(QuestionId(3), Answer::Choice(gender));
        response.answer(QuestionId(4), Answer::Obfuscated(zip));
        let body = serde_json::to_string(&SubmitRequest {
            user: user.into(),
            privacy_level: PrivacyLevel::None,
            response,
            releases: vec![],
        })
        .unwrap();
        let resp = c.post("/surveys/2/responses", "application/json", body).unwrap();
        assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
    }

    #[test]
    fn privacy_endpoint_reports_k_anonymity() {
        let (h, c, state) = start();
        // At rest: nothing linkable, nothing at risk.
        let resp = c.get("/v1/privacy").unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["subjects"], 0);
        assert_eq!(v["k_anonymity"]["complete"], 0);
        assert_eq!(v["at_risk_ratio"], 0.0);

        state.add_survey(demographics_survey()).unwrap();
        // Two subjects share a quasi-identifier (cohort of 2); one is
        // unique — the paper's re-identifiable case.
        submit_demographics(&c, "alice", (14.0, 3.0, 1988.0), 0, 11111.0);
        submit_demographics(&c, "briar", (14.0, 3.0, 1988.0), 0, 11111.0);
        submit_demographics(&c, "chen", (7.0, 9.0, 1975.0), 1, 42424.0);

        let resp = c.get("/v1/privacy").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["subjects"], 3, "{v}");
        assert_eq!(v["k_anonymity"]["complete"], 3);
        assert_eq!(v["k_anonymity"]["cohorts"], 2);
        assert_eq!(v["k_anonymity"]["at_risk"], 1);
        let histogram = v["k_anonymity"]["histogram"].as_array().unwrap();
        assert_eq!(histogram.len(), 2, "{v}");
        assert_eq!(histogram[0], serde_json::json!({"k": 1, "subjects": 1}));
        assert_eq!(histogram[1], serde_json::json!({"k": 2, "subjects": 2}));
        assert!((v["at_risk_ratio"].as_f64().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!(v["linkage_entropy_bits"].as_f64().unwrap() > 0.0);

        let surveys = v["surveys"].as_array().unwrap();
        let demo = surveys
            .iter()
            .find(|sv| sv["survey"] == 2)
            .expect("demographic survey rollup");
        assert_eq!(demo["submissions"], 3);
        assert_eq!(demo["qi_questions"], 5);
        assert_eq!(demo["qi_fragments"], 15, "5 QI answers per submission");
        let lecturers = surveys.iter().find(|sv| sv["survey"] == 1).unwrap();
        assert_eq!(lecturers["qi_questions"], 0);

        // The handler timed the merge into the new histogram family.
        let text = String::from_utf8(c.get("/v1/metrics").unwrap().body).unwrap();
        assert!(text.contains("loki_agg_merge_seconds_count"), "{text}");
        h.shutdown();
    }

    #[test]
    fn malformed_json_body_is_422() {
        let (h, c, _) = start();
        let resp = c
            .post("/surveys/1/responses", "application/json", "{broken")
            .unwrap();
        assert_eq!(resp.status, StatusCode::UNPROCESSABLE);
        h.shutdown();
    }

    #[test]
    fn v1_routes_mirror_legacy_routes() {
        let (h, c, _) = start();
        c.post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        for path in ["/surveys", "/surveys/1", "/stats", "/ledger/u1", "/health"] {
            let legacy = c.get(path).unwrap();
            let v1 = c.get(&format!("/v1{path}")).unwrap();
            assert_eq!(legacy.status, v1.status, "{path}");
            assert_eq!(legacy.body, v1.body, "{path}");
        }
        h.shutdown();
    }

    #[test]
    fn error_envelope_on_framework_errors() {
        let (h, c, _) = start();
        // 404 (unknown route) and 405 (wrong method) both envelope.
        let resp = c.get("/v1/nope").unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["error"]["code"], "not_found");

        let req = loki_net::http::Request::new(loki_net::http::Method::Put, "/v1/surveys");
        let resp = c.send(req).unwrap();
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["error"]["code"], "method_not_allowed");
        h.shutdown();
    }

    #[test]
    fn every_response_carries_a_trace_id_header() {
        let (h, c, _) = start();
        // Handler-served success.
        let resp = c.get("/health").unwrap();
        let id = resp.headers.get(TRACE_ID_HEADER).expect("header on success");
        assert_eq!(id.len(), 16, "{id}");
        assert!(id.chars().all(|ch| ch.is_ascii_hexdigit()), "{id}");

        // Router-level 404: no handler ran, the id comes from the error
        // renderer, and the envelope embeds the same id.
        let resp = c.get("/v1/nope").unwrap();
        let id = resp.headers.get(TRACE_ID_HEADER).expect("header on 404").to_string();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["error"]["trace_id"], id.as_str());
        h.shutdown();
    }

    #[test]
    fn healthz_reports_build_info_and_journal() {
        let (h, c, _) = start();
        let resp = c.get("/v1/healthz").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["status"], "ok");
        assert_eq!(v["version"], env!("CARGO_PKG_VERSION"));
        assert!(v["uptime_seconds"].is_u64());
        assert_eq!(v["journal"]["attached"], false, "no journal in this fixture");
        assert_eq!(v["journal"]["poisoned"], false);
        assert_eq!(v["slo"]["firing"].as_array().unwrap().len(), 0, "{v}");
        assert!(v["slo"]["scrapes"].is_u64());
        h.shutdown();
    }

    #[test]
    fn slo_and_alert_endpoints_report_default_specs_at_rest() {
        let (h, c, _) = start();
        let resp = c.get("/v1/slo").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let slos = v["slos"].as_array().unwrap();
        let names: Vec<&str> = slos.iter().map(|s| s["slo"].as_str().unwrap()).collect();
        assert_eq!(
            names,
            ["availability", "submit-latency", "privacy-headroom", "privacy-at-risk"]
        );
        for slo in slos {
            assert_eq!(slo["state"], "ok", "{slo}");
            assert_eq!(slo["budget_remaining"], 1.0, "{slo}");
        }

        let resp = c.get("/v1/alerts").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["firing"], false);
        assert_eq!(v["alerts"].as_array().unwrap().len(), 4);

        let resp = c.get("/v1/alerts/history").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["total"], 0, "no transitions at rest");
        assert_eq!(v["events"].as_array().unwrap().len(), 0);
        h.shutdown();
    }

    #[test]
    fn timeseries_endpoint_serves_scraped_history() {
        let (h, c, state) = start();
        c.post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        // Deterministic history: two explicit ticks instead of waiting on
        // the 1 s background scraper.
        state.scrape_once();
        state.scrape_once();

        let resp = c
            .get("/v1/timeseries?name=loki_submit_seconds_count&since=0&step=1")
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert!(v["tick"].as_u64().unwrap() >= 2);
        let series = v["series"].as_array().unwrap();
        assert_eq!(series.len(), 1, "{v}");
        assert_eq!(series[0]["key"], "loki_submit_seconds_count");
        let points = series[0]["points"].as_array().unwrap();
        assert!(!points.is_empty(), "{v}");
        // Counters land as deltas: exactly one submission across history.
        let total: f64 = points.iter().map(|p| p["last"].as_f64().unwrap()).sum();
        assert_eq!(total, 1.0, "{v}");

        // Label filter (plain substring, no percent-decoding) narrows a
        // labelled family to the matching series.
        let resp = c
            .get("/v1/timeseries?name=loki_http_requests_total&label=2xx")
            .unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let series = v["series"].as_array().unwrap();
        assert!(!series.is_empty(), "{v}");
        for s in series {
            assert!(s["key"].as_str().unwrap().contains("2xx"), "{v}");
        }
        h.shutdown();
    }

    #[test]
    fn timeseries_endpoint_validates_parameters() {
        let (h, c, _) = start();
        let resp = c.get("/v1/timeseries").unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["error"]["code"], "bad_param");

        let resp = c.get("/v1/timeseries?name=x&since=yesterday").unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        let resp = c.get("/v1/timeseries?name=x&step=-1").unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        // Unknown family is an empty result, not an error.
        let resp = c.get("/v1/timeseries?name=no_such_metric").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["series"].as_array().unwrap().len(), 0);
        h.shutdown();
    }

    #[test]
    fn sampled_submit_resolves_through_the_trace_endpoints() {
        let (h, c, _) = start();
        // The first request draws sequence 0, which the default config
        // (sample every 16th) always samples.
        let resp = c
            .post("/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        assert_eq!(resp.status, StatusCode::CREATED);
        let id = resp.headers.get(TRACE_ID_HEADER).expect("traced submit").to_string();

        let resp = c.get(&format!("/v1/traces/{id}")).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["id"], id.as_str());
        let names: Vec<&str> = v["spans"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["name"].as_str().unwrap())
            .collect();
        // No journal attached here, so no WAL spans — but the in-process
        // tree (root + apply + ack) must be complete.
        assert!(names.contains(&"request"), "{names:?}");
        assert!(names.contains(&"apply"), "{names:?}");
        assert!(names.contains(&"ack"), "{names:?}");

        // The summary list carries the same id.
        let resp = c.get("/v1/traces").unwrap();
        let list: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert!(
            list.as_array().unwrap().iter().any(|t| t["id"] == id.as_str()),
            "{list}"
        );

        // Unknown and malformed ids produce enveloped errors.
        let resp = c.get("/v1/traces/ffffffffffffffff").unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        let resp = c.get("/v1/traces/not-hex").unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        h.shutdown();
    }

    #[test]
    fn budget_rejection_emits_a_matching_audit_event() {
        let (h, c, state) = start();
        // One medium-level release costs far more than ε = 1, so the
        // first submission charges and the next one hits the cap.
        state.set_epsilon_budget(Some(1.0)).unwrap();
        let resp = c
            .post("/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);

        let mut b = SurveyBuilder::new(SurveyId(2), "extra");
        b.question("q", QuestionKind::likert5(), false);
        state.add_survey(b.build().unwrap()).unwrap();
        let mut response = Response::new("u1", SurveyId(2));
        response.answer(QuestionId(0), Answer::Obfuscated(4.0));
        let body = serde_json::to_string(&SubmitRequest {
            user: "u1".into(),
            privacy_level: PrivacyLevel::Medium,
            response,
            releases: vec![(
                "survey-2/q0".into(),
                loki_dp::accountant::ReleaseKind::Gaussian {
                    sigma: 1.0,
                    sensitivity: 4.0,
                },
            )],
        })
        .unwrap();
        let resp = c.post("/surveys/2/responses", "application/json", body).unwrap();
        assert_eq!(resp.status, StatusCode::FORBIDDEN, "{:?}", resp.body);
        let trace_id = resp.headers.get(TRACE_ID_HEADER).expect("traced rejection").to_string();

        let resp = c.get("/v1/audit").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let events = v["events"].as_array().unwrap();
        assert_eq!(events.len(), 4, "{v}");
        assert_eq!(events[0]["outcome"], "attempted");
        assert_eq!(events[1]["outcome"], "charged");
        assert_eq!(events[2]["outcome"], "attempted");
        assert_eq!(events[3]["outcome"], "rejected-at-cap");
        assert_eq!(events[3]["level"], "medium");
        assert_eq!(events[3]["subject_index"], 0);
        assert_eq!(events[3]["trace_id"], trace_id.as_str());
        // The running total the rejection reports is the already-charged
        // loss that tripped the cap.
        assert!(events[3]["running_epsilon"].as_f64().unwrap() >= 1.0, "{v}");
        // The stream is keyed by opaque index only — the raw user id
        // must not appear anywhere in the rendering.
        assert!(!String::from_utf8_lossy(&resp.body).contains("u1"), "{v}");
        h.shutdown();
    }

    #[test]
    fn charged_submission_lands_in_the_audit_stream() {
        let (h, c, _) = start();
        let resp = c
            .post("/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        assert_eq!(resp.status, StatusCode::CREATED);
        let resp = c.get("/v1/audit").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let events = v["events"].as_array().unwrap();
        assert_eq!(events.len(), 2, "{v}");
        assert_eq!(events[0]["outcome"], "attempted");
        assert_eq!(events[1]["outcome"], "charged");
        let charged = &events[1];
        assert!(charged["epsilon"].as_f64().unwrap() > 0.0);
        assert_eq!(charged["epsilon"], charged["running_epsilon"], "first charge");
        h.shutdown();
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (h, c, _) = start();
        c.post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        let resp = c.get("/v1/metrics").unwrap();
        assert!(resp.status.is_success());
        assert_eq!(
            resp.headers.get("content-type"),
            Some("text/plain; version=0.0.4; charset=utf-8")
        );
        let text = String::from_utf8_lossy(&resp.body);
        assert!(text.contains("# TYPE loki_submit_seconds histogram"), "{text}");
        assert!(text.contains("loki_submit_seconds_count 1"), "{text}");
        assert!(text.contains("loki_ledger_users 1"), "{text}");
        h.shutdown();
    }
}
