//! In-memory application state behind `parking_lot` locks, with a
//! WAL-first write pipeline.
//!
//! # Durability contract (journal-then-apply)
//!
//! When a journal is attached, every accepted write follows one ordering:
//!
//! 1. validate (stateless checks, no locks);
//! 2. enter the **commit critical section** (per-user for submissions,
//!    the publish lock for surveys) and run the stateful checks —
//!    duplicate index, ε-budget;
//! 3. journal the record through the group committer and **block until
//!    it is fsync-durable**; a durability failure aborts the write with
//!    [`SubmitError::Durability`] and no state change;
//! 4. apply to memory (store + accountant charge);
//! 5. ack the caller.
//!
//! A crash can therefore lose un-acked work but never an acked write:
//! everything acked is on disk, and replay re-applies it. The ε-budget
//! check and the accountant charge both happen inside the same per-user
//! critical section, so two racing submits from one user can never both
//! pass the cap (the check/charge TOCTOU this module used to have).

use loki_core::estimator::Estimator;
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::{Accountant, ReleaseKind};
use loki_dp::params::Delta;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyId};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A stored submission: who, at what level, and the uploaded response.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StoredSubmission {
    /// Submitting user.
    pub user: String,
    /// Chosen privacy level.
    pub level: PrivacyLevel,
    /// The uploaded (obfuscated) response.
    pub response: Response,
}

/// One survey's stored submissions plus the per-survey user index that
/// makes the duplicate check O(1) instead of a linear scan of the list.
/// `users` always contains exactly the users of `list`.
#[derive(Debug, Default)]
struct SurveySubmissions {
    list: Vec<StoredSubmission>,
    users: HashSet<String>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// No such survey.
    UnknownSurvey,
    /// The response failed survey validation.
    Invalid(String),
    /// A raw (non-obfuscated) answer was found on an obfuscatable
    /// question — the at-source contract forbids the server from ever
    /// storing it.
    RawAnswer {
        /// The offending question.
        question: u32,
    },
    /// The response's worker field does not match the submitting user.
    UserMismatch,
    /// This user already submitted to this survey.
    Duplicate,
    /// The user's cumulative privacy loss is at or over the server's cap.
    BudgetExhausted {
        /// Current cumulative ε (`None` = unbounded).
        current: Option<f64>,
        /// The configured cap.
        budget: f64,
    },
    /// The write could not be made durable (journal append/fsync failed);
    /// nothing was applied. Retryable once the disk recovers and the
    /// journal is re-attached.
    Durability(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownSurvey => write!(f, "unknown survey"),
            SubmitError::Invalid(e) => write!(f, "invalid response: {e}"),
            SubmitError::RawAnswer { question } => write!(
                f,
                "question q{question}: raw answer refused — obfuscate at source"
            ),
            SubmitError::UserMismatch => write!(f, "response worker does not match user"),
            SubmitError::Duplicate => write!(f, "user already submitted to this survey"),
            SubmitError::BudgetExhausted { current, budget } => match current {
                Some(c) => write!(f, "privacy budget exhausted: ε = {c:.3} of {budget:.3}"),
                None => write!(f, "privacy budget exhausted: unbounded loss recorded"),
            },
            SubmitError::Durability(e) => write!(f, "write not durable: {e}"),
        }
    }
}

/// Where in the commit sequence a fault-injection hook fires. Test-only
/// machinery, but always compiled: the production cost is one `Option`
/// check per write, same as the metrics hooks.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The record is fsync-durable but not yet applied to memory.
    AfterDurableBeforeApply,
    /// Applied to memory; the caller has not yet been acked.
    AfterApplyBeforeAck,
}

/// A fault-injection hook; panicking inside it simulates a crash at that
/// point (run the write on a scratch thread and join it).
#[doc(hidden)]
pub type CrashHook = Arc<dyn Fn(CrashPoint) + Send + Sync>;

/// Wrapper so [`AppState`] can keep `derive(Debug)` despite holding a
/// closure.
#[derive(Default)]
struct CrashHooks(RwLock<Option<CrashHook>>);

impl std::fmt::Debug for CrashHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CrashHooks")
            .field(&self.0.read().is_some())
            .finish()
    }
}

/// Rejected ε-cap configuration: the budget must be strictly positive
/// (a zero/negative/NaN cap would refuse every submission while looking
/// like a working configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidBudget(pub f64);

impl std::fmt::Display for InvalidBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epsilon budget must be positive, got {}", self.0)
    }
}

impl std::error::Error for InvalidBudget {}

/// Stable lowercase name of a privacy level for audit events (audit
/// fields are `'static` so nothing request-derived can leak into them).
fn level_name(level: PrivacyLevel) -> &'static str {
    match level {
        PrivacyLevel::None => "none",
        PrivacyLevel::Low => "low",
        PrivacyLevel::Medium => "medium",
        PrivacyLevel::High => "high",
    }
}

/// Soft cap on the per-user commit-lock map: reaching it triggers a
/// garbage-collection sweep of idle entries before the next insert (see
/// [`AppState::user_commit_lock`]).
const USER_LOCKS_GC_THRESHOLD: usize = 1024;

/// The server's whole mutable state.
///
/// # Canonical lock order
///
/// Every path that holds more than one of these locks acquires them in
/// this order (earlier may be held while taking later, never the
/// reverse):
///
/// 1. `publish_lock`
/// 2. `user_locks` (the map mutex)
/// 3. `user_commit_lock` (a per-user entry *from* that map)
/// 4. `surveys`
/// 5. `submissions`
/// 6. `epsilon_budget`
/// 7. `user_indices`
/// 8. `journal`
/// 9. `crash_hooks`
///
/// The order is machine-checked: `loki-lint.toml` declares the same
/// sequence under `[rules.lock-order]`, and the `lock-order` pass
/// rebuilds the acquired-while-held graph from source on every CI run.
/// Deliberate exceptions would carry a `// lint:allow lock-order`
/// comment; there are currently none.
#[derive(Debug)]
pub struct AppState {
    surveys: RwLock<BTreeMap<SurveyId, Survey>>,
    submissions: RwLock<BTreeMap<SurveyId, SurveySubmissions>>,
    /// Requester tokens allowed to publish surveys. Empty = open server
    /// (useful for tests and local demos).
    requester_tokens: RwLock<HashSet<String>>,
    /// Optional cap on any user's cumulative ε; submissions from users at
    /// or over the cap are refused (the enforcement arm of §3.1's
    /// "tracked and balanced" loss).
    epsilon_budget: RwLock<Option<f64>>,
    /// Optional group-commit journal. Behind an `RwLock` (not a `Mutex`)
    /// so concurrent writers can block on the committer *together* —
    /// that concurrency is what forms the batches.
    journal: RwLock<Option<crate::wal::GroupCommitter>>,
    /// Serializes survey publication (commit critical section for
    /// `add_survey`): exists-check → journal → apply must be atomic
    /// against another publish of the same id.
    publish_lock: Mutex<()>,
    /// Per-user commit locks: the ε-budget check, the duplicate check,
    /// the journal append and the accountant charge for one user happen
    /// under that user's lock, making check+charge atomic without
    /// serializing unrelated users. Bounded: once the map reaches
    /// [`USER_LOCKS_GC_THRESHOLD`], entries whose `Arc` strong count is
    /// 1 (no in-flight commit holds a clone) are garbage-collected
    /// before the next insert.
    user_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Server-side mirror of cumulative privacy loss per user.
    pub accountant: Accountant,
    /// Lazily enabled metrics. Until [`AppState::enable_metrics`] is
    /// called every instrumentation point is a cheap `None` check, so
    /// un-instrumented state (e.g. bench baselines) pays ~nothing.
    /// Inside an `Arc` so the journal's batch observer (which runs on
    /// the committer thread) can share it.
    metrics: Arc<std::sync::OnceLock<Arc<crate::metrics::ServerMetrics>>>,
    /// Fault-injection hook for the crash-point tests.
    crash_hooks: CrashHooks,
    /// The background self-scraper feeding the metrics history layer;
    /// dropped (signalled + joined) with the state.
    scraper: Mutex<Option<crate::scrape::SelfScraper>>,
    /// Opaque per-process subject indices for the ε-audit stream: the
    /// audit log (in `loki-obs`) never sees a raw user id, only the
    /// insertion-order index assigned here.
    user_indices: Mutex<HashMap<String, u64>>,
    /// Process start, for `/v1/healthz` uptime.
    started: std::time::Instant,
}

impl Default for AppState {
    fn default() -> AppState {
        AppState {
            surveys: RwLock::default(),
            submissions: RwLock::default(),
            requester_tokens: RwLock::default(),
            epsilon_budget: RwLock::default(),
            journal: RwLock::default(),
            publish_lock: Mutex::default(),
            user_locks: Mutex::default(),
            accountant: Accountant::default(),
            metrics: Arc::default(),
            crash_hooks: CrashHooks::default(),
            scraper: Mutex::default(),
            user_indices: Mutex::default(),
            started: std::time::Instant::now(),
        }
    }
}

impl AppState {
    /// Creates empty state.
    pub fn new() -> AppState {
        AppState::default()
    }

    /// Seconds since this state was created (server uptime for healthz).
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Journal health as `(attached, poisoned_reason)`: whether a
    /// journal is attached and, if so, whether an I/O failure has
    /// poisoned it (every later write 503s until operator recovery).
    pub fn journal_health(&self) -> (bool, Option<String>) {
        let journal = self.journal.read();
        match journal.as_ref() {
            Some(committer) => (true, committer.poisoned()),
            None => (false, None),
        }
    }

    /// The opaque audit index for `user`, assigned in insertion order on
    /// first use. This is the only form in which a submission's subject
    /// ever reaches the observability layer.
    fn subject_index(&self, user: &str) -> u64 {
        let mut indices = self.user_indices.lock();
        let next = indices.len() as u64;
        *indices.entry(user.to_string()).or_insert(next)
    }

    /// Registers a requester token; once any token exists, publishing
    /// requires one.
    pub fn add_requester_token(&self, token: impl Into<String>) {
        self.requester_tokens.write().insert(token.into());
    }

    /// Whether a `POST /surveys` bearing `token` (possibly absent) is
    /// allowed to publish.
    pub fn may_publish(&self, token: Option<&str>) -> bool {
        let tokens = self.requester_tokens.read();
        tokens.is_empty() || token.is_some_and(|t| tokens.contains(t))
    }

    /// Attaches a write-ahead journal with default group-commit tuning:
    /// every *subsequently* accepted survey publication and submission is
    /// made fsync-durable **before** it is applied or acked. Use
    /// [`crate::wal::replay`] at startup to restore, then attach the same
    /// journal path for new writes.
    pub fn attach_journal(&self, wal: crate::wal::Wal) {
        self.attach_journal_with(wal, crate::wal::GroupCommitConfig::default());
    }

    /// [`AppState::attach_journal`] with explicit group-commit tuning
    /// (`max_batch: 1` degenerates to per-write fsync — the bench
    /// baseline).
    pub fn attach_journal_with(&self, wal: crate::wal::Wal, config: crate::wal::GroupCommitConfig) {
        let metrics = Arc::clone(&self.metrics);
        let observer: crate::wal::BatchObserver = Arc::new(move |event| {
            if let Some(m) = metrics.get() {
                m.on_wal_batch(event);
            }
        });
        *self.journal.write() = Some(crate::wal::GroupCommitter::spawn(
            wal,
            config,
            Some(observer),
        ));
    }

    /// Detaches the journal (if any), joining the committer thread so
    /// every in-flight commit resolves first.
    pub fn detach_journal(&self) {
        *self.journal.write() = None;
    }

    /// Enables metrics (idempotent) and returns the shared instance. The
    /// store's instrumentation points are no-ops until this is called.
    pub fn enable_metrics(&self) -> Arc<crate::metrics::ServerMetrics> {
        Arc::clone(
            self.metrics
                .get_or_init(|| Arc::new(crate::metrics::ServerMetrics::new())),
        )
    }

    /// Enables metrics with an explicitly constructed instance (custom
    /// trace or history config). First caller wins: if metrics are
    /// already enabled the existing instance is returned unchanged, so
    /// call this *before* [`crate::app::serve`]/`build_router`.
    pub fn enable_metrics_with(
        &self,
        metrics: Arc<crate::metrics::ServerMetrics>,
    ) -> Arc<crate::metrics::ServerMetrics> {
        Arc::clone(self.metrics.get_or_init(|| metrics))
    }

    /// One history-layer scrape: ledger-gauge refresh, registry snapshot
    /// into the tsdb, SLO evaluation. No-op until metrics are enabled.
    pub fn scrape_once(&self) {
        if let Some(m) = self.metrics.get() {
            m.scrape(&self.accountant, self.epsilon_budget());
        }
    }

    /// Starts the background self-scraper at `interval` (idempotent:
    /// a scraper that is already running is left untouched, so tests can
    /// start a fast one before [`crate::app::serve`] installs the 1 s
    /// default). The scraper holds only a weak reference; it is signalled
    /// and joined when the state drops or on [`AppState::stop_self_scraper`].
    pub fn start_self_scraper(self: &Arc<Self>, interval: std::time::Duration) {
        let mut slot = self.scraper.lock();
        if slot.is_none() {
            *slot = Some(crate::scrape::SelfScraper::spawn(self, interval));
        }
    }

    /// Stops and joins the background self-scraper, if one is running.
    pub fn stop_self_scraper(&self) {
        self.scraper.lock().take();
    }

    /// The metrics instance, if enabled.
    pub fn metrics(&self) -> Option<&Arc<crate::metrics::ServerMetrics>> {
        self.metrics.get()
    }

    /// Installs (or clears) the crash-point fault-injection hook.
    #[doc(hidden)]
    pub fn set_crash_hook(&self, hook: Option<CrashHook>) {
        *self.crash_hooks.0.write() = hook;
    }

    fn crash_point(&self, point: CrashPoint) {
        if let Some(hook) = self.crash_hooks.0.read().as_ref() {
            hook(point);
        }
    }

    /// Caps every user's cumulative ε; `None` removes the cap. A
    /// non-positive (or NaN) cap is refused with [`InvalidBudget`] and
    /// leaves the existing configuration untouched.
    pub fn set_epsilon_budget(&self, budget: Option<f64>) -> Result<(), InvalidBudget> {
        if let Some(b) = budget {
            if !(b > 0.0) {
                return Err(InvalidBudget(b));
            }
        }
        *self.epsilon_budget.write() = budget;
        Ok(())
    }

    /// The configured cumulative-ε cap, if any.
    pub fn epsilon_budget(&self) -> Option<f64> {
        *self.epsilon_budget.read()
    }

    /// This user's commit lock, created on first use.
    ///
    /// The map would otherwise grow by one entry per distinct user id
    /// forever (an unauthenticated-request memory leak): before
    /// inserting a new entry into a map at [`USER_LOCKS_GC_THRESHOLD`]
    /// or above, idle entries — `Arc` strong count 1, i.e. the map
    /// holds the only reference, so no commit is in flight — are
    /// dropped. A dropped user simply gets a fresh lock next time; the
    /// per-user atomicity only needs the lock to be unique *while
    /// referenced*, which the strong-count test guarantees. Live size
    /// is therefore at most `threshold + concurrent in-flight commits`.
    fn user_commit_lock(&self, user: &str) -> Arc<Mutex<()>> {
        let mut locks = self.user_locks.lock();
        if let Some(lock) = locks.get(user) {
            return Arc::clone(lock);
        }
        if locks.len() >= USER_LOCKS_GC_THRESHOLD {
            locks.retain(|_, lock| Arc::strong_count(lock) > 1);
        }
        let lock = Arc::new(Mutex::new(()));
        locks.insert(user.to_string(), Arc::clone(&lock));
        lock
    }

    /// Number of per-user commit-lock entries currently held (ops/test
    /// visibility for the boundedness contract above).
    pub fn user_locks_len(&self) -> usize {
        self.user_locks.lock().len()
    }

    /// Journals a survey publication (durable before return); no-op
    /// without an attached journal.
    fn journal_survey(&self, survey: &Survey) -> Result<(), SubmitError> {
        let journal = self.journal.read();
        let Some(committer) = journal.as_ref() else {
            return Ok(());
        };
        committer
            .commit_survey(survey)
            .map_err(|e| SubmitError::Durability(e.to_string()))
    }

    /// Journals an accepted submission (durable before return); no-op
    /// without an attached journal.
    fn journal_submission(
        &self,
        user: &str,
        level: PrivacyLevel,
        response: &Response,
        releases: &[(String, ReleaseKind)],
    ) -> Result<(), SubmitError> {
        let journal = self.journal.read();
        let Some(committer) = journal.as_ref() else {
            return Ok(());
        };
        committer
            .commit_submission(user, level, response, releases)
            .map_err(|e| SubmitError::Durability(e.to_string()))
    }

    /// Publishes a survey, journal-first. Returns `Ok(false)` if the id
    /// already exists, `Err(Durability)` if the journal refused the write
    /// (in which case nothing was published).
    pub fn add_survey(&self, survey: Survey) -> Result<bool, SubmitError> {
        let _publish = self.publish_lock.lock();
        if self.surveys.read().contains_key(&survey.id) {
            return Ok(false);
        }
        self.journal_survey(&survey)?;
        self.crash_point(CrashPoint::AfterDurableBeforeApply);
        self.surveys.write().insert(survey.id, survey);
        self.crash_point(CrashPoint::AfterApplyBeforeAck);
        Ok(true)
    }

    /// A survey by id.
    pub fn survey(&self, id: SurveyId) -> Option<Survey> {
        self.surveys.read().get(&id).cloned()
    }

    /// All surveys, id-ordered.
    pub fn surveys(&self) -> Vec<Survey> {
        self.surveys.read().values().cloned().collect()
    }

    /// Number of stored submissions for a survey.
    pub fn submission_count(&self, id: SurveyId) -> usize {
        self.submissions.read().get(&id).map_or(0, |s| s.list.len())
    }

    /// All submissions for a survey.
    pub fn submissions(&self, id: SurveyId) -> Vec<StoredSubmission> {
        self.submissions
            .read()
            .get(&id)
            .map(|s| s.list.clone())
            .unwrap_or_default()
    }

    /// Whether `user` has already submitted to `survey` (O(1) via the
    /// per-survey user index).
    pub fn has_submitted(&self, survey: SurveyId, user: &str) -> bool {
        self.submissions
            .read()
            .get(&survey)
            .is_some_and(|s| s.users.contains(user))
    }

    /// Validates and stores a submission, recording the declared ledger
    /// entries. Returns the new submission count for the survey.
    ///
    /// Write ordering when a journal is attached: stateful checks →
    /// journal (blocking until fsync-durable) → apply → ack, all inside
    /// this user's commit critical section. See the module docs.
    pub fn submit(
        &self,
        user: &str,
        level: PrivacyLevel,
        response: Response,
        releases: &[(String, ReleaseKind)],
    ) -> Result<usize, SubmitError> {
        // Stateless validation first — no locks held.
        if response.worker != user {
            return Err(SubmitError::UserMismatch);
        }
        let survey = self
            .survey(response.survey)
            .ok_or(SubmitError::UnknownSurvey)?;
        response
            .validate(&survey)
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;

        // At-source enforcement: obfuscatable questions must arrive as
        // Obfuscated (numeric kinds) or Choice (already RR-perturbed) —
        // never as raw Rating/Numeric values.
        for q in &survey.questions {
            let Some(answer) = response.get(q.id) else {
                // validate() guarantees completeness, but a panic here
                // would let one inconsistent payload kill a worker thread.
                return Err(SubmitError::Invalid(format!(
                    "missing answer for question {}",
                    q.id.0
                )));
            };
            let raw = matches!(
                (&q.kind, answer),
                (QuestionKind::Rating { .. }, Answer::Rating(_))
                    | (QuestionKind::Numeric { .. }, Answer::Numeric(_))
            );
            if raw {
                return Err(SubmitError::RawAnswer { question: q.id.0 });
            }
        }

        // Commit critical section: everything from the budget check to
        // the accountant charge holds this user's lock, so check+charge
        // is atomic per user and unrelated users proceed in parallel
        // (their concurrent journal commits form the fsync batches).
        let user_lock = self.user_commit_lock(user);
        let _user_guard = user_lock.lock();

        if self.has_submitted(response.survey, user) {
            return Err(SubmitError::Duplicate);
        }

        // ε-audit bookkeeping (metrics enabled only): the running total
        // before the charge, and the marginal ε this release set would
        // add — probed on a scratch copy of the ledger so the attempted
        // and rejected-at-cap events can report it without charging.
        let budget = self.epsilon_budget();
        let trace_ctx = loki_obs::trace::current();
        let trace_id = trace_ctx.as_ref().map(|c| c.trace_id());
        let loss = (budget.is_some() || self.metrics.get().is_some())
            .then(|| self.user_loss(user));
        let audit = match (self.metrics.get(), &loss) {
            (Some(m), Some(before)) => {
                let mut scratch = self.accountant.ledger_of(user).unwrap_or_default();
                for (tag, kind) in releases {
                    scratch.record(tag.clone(), *kind);
                }
                let after = scratch.tight_loss(Delta::new(loki_dp::DEFAULT_DELTA));
                let running_before = if before.is_finite() {
                    before.epsilon.value()
                } else {
                    f64::INFINITY
                };
                let running_after = if after.is_finite() {
                    after.epsilon.value()
                } else {
                    f64::INFINITY
                };
                let charge = if running_before.is_finite() && running_after.is_finite() {
                    (running_after - running_before).max(0.0)
                } else {
                    f64::INFINITY
                };
                let index = self.subject_index(user);
                m.audit_log().push(
                    index,
                    loki_obs::AuditOutcome::Attempted,
                    level_name(level),
                    charge,
                    running_before,
                    trace_id,
                );
                Some((Arc::clone(m), index, charge, running_after))
            }
            _ => None,
        };

        if let Some(budget) = budget {
            // `loss` is always `Some` when a budget is configured.
            let over = match &loss {
                Some(l) if l.is_finite() => l.epsilon.value() >= budget,
                _ => true,
            };
            if over {
                let current = loss
                    .as_ref()
                    .and_then(|l| l.is_finite().then(|| l.epsilon.value()));
                if let Some((m, index, charge, _)) = &audit {
                    m.audit_log().push(
                        *index,
                        loki_obs::AuditOutcome::RejectedAtCap,
                        level_name(level),
                        *charge,
                        current.unwrap_or(f64::INFINITY),
                        trace_id,
                    );
                }
                if let Some(m) = self.metrics.get() {
                    m.on_budget_rejection();
                }
                return Err(SubmitError::BudgetExhausted { current, budget });
            }
        }

        // Durable before applied: a failure here aborts with no state
        // change, and the client is told instead of silently dropped.
        // The trace context crosses into the committer thread via the
        // commit request, recording enqueue/batch/fsync spans there.
        self.journal_submission(user, level, &response, releases)?;
        self.crash_point(CrashPoint::AfterDurableBeforeApply);

        let apply_span = trace_ctx.as_ref().map(|c| c.start_child("apply"));
        let lock_started = std::time::Instant::now();
        let stored = {
            let mut submissions = self.submissions.write();
            let entry = submissions.entry(response.survey).or_default();
            for (tag, kind) in releases {
                self.accountant.record(user, tag.clone(), *kind);
            }
            entry.users.insert(user.to_string());
            entry.list.push(StoredSubmission {
                user: user.to_string(),
                level,
                response,
            });
            entry.list.len()
        };
        if let Some(mut span) = apply_span {
            span.attr("stored", stored as u64);
            span.finish();
        }
        if let Some(m) = self.metrics.get() {
            m.observe_store_lock(lock_started.elapsed());
            m.on_submission_stored(level);
        }
        if let Some((m, index, charge, running_after)) = audit {
            m.audit_log().push(
                index,
                loki_obs::AuditOutcome::Charged,
                level_name(level),
                charge,
                running_after,
                trace_id,
            );
        }
        let ack_span = trace_ctx.as_ref().map(|c| c.start_child("ack"));
        self.crash_point(CrashPoint::AfterApplyBeforeAck);
        drop(ack_span);
        Ok(stored)
    }

    /// Per-bin samples of one question's numeric uploads.
    pub fn bin_samples(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
    ) -> BTreeMap<PrivacyLevel, Vec<f64>> {
        let mut bins: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
        if let Some(subs) = self.submissions.read().get(&survey) {
            for sub in &subs.list {
                if let Some(v) = sub.response.get(question).and_then(Answer::as_f64) {
                    bins.entry(sub.level).or_default().push(v);
                }
            }
        }
        bins
    }

    /// Aggregated results of one question, `None` when there are no
    /// numeric uploads for it.
    pub fn results(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
        estimator: &Estimator,
    ) -> Option<loki_core::estimator::PooledEstimate> {
        let bins = self.bin_samples(survey, question);
        if bins.values().all(Vec::is_empty) {
            return None;
        }
        Some(estimator.pooled(&bins))
    }

    /// Cumulative loss of a user at the default δ.
    pub fn user_loss(&self, user: &str) -> loki_dp::params::PrivacyLoss {
        self.accountant
            .loss_of(user, Delta::new(loki_dp::DEFAULT_DELTA))
    }

    /// Per-bin choice counts for a multiple-choice question: for each
    /// privacy level, a histogram over the option indices.
    pub fn choice_histograms(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
        options: usize,
    ) -> BTreeMap<PrivacyLevel, Vec<u64>> {
        let mut bins: BTreeMap<PrivacyLevel, Vec<u64>> = BTreeMap::new();
        if let Some(subs) = self.submissions.read().get(&survey) {
            for sub in &subs.list {
                if let Some(Answer::Choice(c)) = sub.response.get(question) {
                    if *c < options {
                        let hist = bins.entry(sub.level).or_insert_with(|| vec![0; options]);
                        if let Some(slot) = hist.get_mut(*c) {
                            *slot += 1;
                        }
                    }
                }
            }
        }
        bins
    }

    /// Estimated true per-option frequencies for a multiple-choice
    /// question, inverting each bin's randomized response and pooling
    /// bins by response count. Returns `None` when there are no choice
    /// uploads for the question.
    pub fn choice_frequencies(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
    ) -> Option<ChoiceEstimate> {
        let survey_def = self.survey(survey)?;
        let q = survey_def.question(question)?;
        let loki_survey::question::QuestionKind::MultipleChoice { options } = &q.kind else {
            return None;
        };
        let k = options.len();
        let histograms = self.choice_histograms(survey, question, k);
        let mut pooled = vec![0.0f64; k];
        let mut n_total = 0u64;
        let mut bins = Vec::new();
        for (level, hist) in &histograms {
            let n: u64 = hist.iter().sum();
            if n == 0 {
                continue;
            }
            let estimate: Vec<f64> = match level.randomized_response_epsilon() {
                None => hist.iter().map(|&c| c as f64).collect(),
                Some(eps) => {
                    let rr = loki_dp::mechanisms::randomized_response::RandomizedResponse::new(
                        k,
                        loki_dp::params::Epsilon::new(eps),
                    );
                    rr.estimate_frequencies(hist)
                }
            };
            for (p, e) in pooled.iter_mut().zip(&estimate) {
                *p += e;
            }
            n_total += n;
            bins.push((*level, n as usize));
        }
        if n_total == 0 {
            return None;
        }
        // Normalize the pooled counts to frequencies, clipping the RR
        // inversion's possible small negatives.
        let clipped: Vec<f64> = pooled.iter().map(|&p| p.max(0.0)).collect();
        let total: f64 = clipped.iter().sum();
        let frequencies = if total > 0.0 {
            clipped.iter().map(|&p| p / total).collect()
        } else {
            vec![1.0 / k as f64; k]
        };
        Some(ChoiceEstimate {
            options: options.clone(),
            frequencies,
            n_total: n_total as usize,
            bins,
        })
    }
}

/// Estimated option frequencies for a multiple-choice question.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChoiceEstimate {
    /// Option labels, in order.
    pub options: Vec<String>,
    /// Estimated true frequency of each option (sums to 1).
    pub frequencies: Vec<f64>,
    /// Total responses used.
    pub n_total: usize,
    /// (level, responses) per contributing bin.
    pub bins: Vec<(PrivacyLevel, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::QuestionKind;
    use loki_survey::survey::SurveyBuilder;
    use loki_survey::QuestionId;

    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "lecturers");
        b.question("rate L1", QuestionKind::likert5(), false);
        b.question("rate L2", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn one_question_survey(id: u64) -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(id), format!("s{id}"));
        b.question("rate", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn obfuscated_response(user: &str, v: f64) -> Response {
        let mut r = Response::new(user, SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(v));
        r.answer(QuestionId(1), Answer::Obfuscated(v - 1.0));
        r
    }

    fn gaussian_release(tag: &str) -> (String, ReleaseKind) {
        (
            tag.to_string(),
            ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0,
            },
        )
    }

    #[test]
    fn add_and_list_surveys() {
        let s = AppState::new();
        assert!(s.add_survey(survey()).unwrap());
        assert!(
            !s.add_survey(survey()).unwrap(),
            "duplicate id must be rejected"
        );
        assert_eq!(s.surveys().len(), 1);
        assert!(s.survey(SurveyId(1)).is_some());
        assert!(s.survey(SurveyId(9)).is_none());
    }

    #[test]
    fn submit_and_count() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        let n = s
            .submit(
                "u1",
                PrivacyLevel::Medium,
                obfuscated_response("u1", 4.2),
                &[gaussian_release("survey-1/q0"), gaussian_release("survey-1/q1")],
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.submission_count(SurveyId(1)), 1);
        assert_eq!(s.accountant.releases_of("u1"), 2);
    }

    #[test]
    fn duplicate_submission_rejected() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[])
            .unwrap();
        let err = s
            .submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[])
            .unwrap_err();
        assert_eq!(err, SubmitError::Duplicate);
        assert!(s.has_submitted(SurveyId(1), "u1"));
        assert!(!s.has_submitted(SurveyId(1), "u2"));
    }

    #[test]
    fn user_index_stays_consistent_with_list() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        for i in 0..50 {
            let user = format!("u{i}");
            s.submit(
                &user,
                PrivacyLevel::Low,
                obfuscated_response(&user, 3.0),
                &[],
            )
            .unwrap();
        }
        let subs = s.submissions(SurveyId(1));
        assert_eq!(subs.len(), 50);
        for sub in &subs {
            assert!(s.has_submitted(SurveyId(1), &sub.user));
        }
    }

    #[test]
    fn user_locks_map_stays_bounded() {
        let s = AppState::new();
        // A clone held across sweeps (an in-flight commit) must survive.
        let pinned = s.user_commit_lock("pinned");
        for i in 0..(3 * USER_LOCKS_GC_THRESHOLD) {
            let lock = s.user_commit_lock(&format!("u{i}"));
            drop(lock); // commit finished: the map holds the only reference
        }
        assert!(
            s.user_locks_len() <= USER_LOCKS_GC_THRESHOLD,
            "user_locks grew past the GC threshold: {} entries",
            s.user_locks_len()
        );
        assert!(
            Arc::ptr_eq(&pinned, &s.user_commit_lock("pinned")),
            "an entry with a live reference must never be collected"
        );
    }

    #[test]
    fn commit_releases_user_lock_reference() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[])
            .unwrap();
        let locks = s.user_locks.lock();
        let entry = locks.get("u1").expect("entry exists after a commit");
        assert_eq!(
            Arc::strong_count(entry),
            1,
            "a finished commit must not pin its lock entry (GC relies on this)"
        );
    }

    #[test]
    fn raw_answer_refused() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        let mut r = Response::new("u1", SurveyId(1));
        r.answer(QuestionId(0), Answer::Rating(4.0)); // raw!
        r.answer(QuestionId(1), Answer::Obfuscated(3.0));
        let err = s.submit("u1", PrivacyLevel::None, r, &[]).unwrap_err();
        assert_eq!(err, SubmitError::RawAnswer { question: 0 });
        assert_eq!(s.submission_count(SurveyId(1)), 0);
    }

    #[test]
    fn user_mismatch_refused() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        let err = s
            .submit("mallory", PrivacyLevel::Low, obfuscated_response("alice", 4.0), &[])
            .unwrap_err();
        assert_eq!(err, SubmitError::UserMismatch);
    }

    #[test]
    fn unknown_survey_refused() {
        let s = AppState::new();
        let mut r = Response::new("u1", SurveyId(42));
        r.answer(QuestionId(0), Answer::Obfuscated(1.0));
        assert_eq!(
            s.submit("u1", PrivacyLevel::Low, r, &[]).unwrap_err(),
            SubmitError::UnknownSurvey
        );
    }

    #[test]
    fn results_aggregate_by_bin() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        for (i, level) in [
            PrivacyLevel::None,
            PrivacyLevel::Low,
            PrivacyLevel::Low,
            PrivacyLevel::High,
        ]
        .iter()
        .enumerate()
        {
            let user = format!("u{i}");
            s.submit(&user, *level, obfuscated_response(&user, 4.0 + i as f64 * 0.1), &[])
                .unwrap();
        }
        let est = Estimator::default();
        let pooled = s.results(SurveyId(1), QuestionId(0), &est).unwrap();
        assert_eq!(pooled.n_total, 4);
        assert_eq!(pooled.bins.len(), 3); // None, Low, High non-empty
        assert!(s.results(SurveyId(1), QuestionId(7), &est).is_none());
    }

    #[test]
    fn budget_cap_blocks_exhausted_users() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        // One medium-privacy answer costs ε ≈ 24; cap just above one
        // release so the second is refused.
        let per_release = loki_core::privacy_level::PrivacyLevel::Medium
            .privacy_loss(4.0)
            .epsilon
            .value();
        s.set_epsilon_budget(Some(per_release * 1.5)).unwrap();

        s.submit(
            "u1",
            PrivacyLevel::Medium,
            obfuscated_response("u1", 4.0),
            &[gaussian_release("t0"), gaussian_release("t1")],
        )
        .unwrap();

        // Second survey for the same user.
        let mut b2 = SurveyBuilder::new(SurveyId(2), "second");
        b2.question("rate", QuestionKind::likert5(), false);
        s.add_survey(b2.build().unwrap()).unwrap();
        let mut r = Response::new("u1", SurveyId(2));
        r.answer(QuestionId(0), Answer::Obfuscated(3.0));
        let err = s
            .submit("u1", PrivacyLevel::Medium, r, &[gaussian_release("t2")])
            .unwrap_err();
        assert!(matches!(err, SubmitError::BudgetExhausted { .. }), "{err:?}");
        assert_eq!(s.submission_count(SurveyId(2)), 0);

        // A fresh user is unaffected.
        let mut r = Response::new("u2", SurveyId(2));
        r.answer(QuestionId(0), Answer::Obfuscated(3.0));
        s.submit("u2", PrivacyLevel::Medium, r, &[gaussian_release("t3")])
            .unwrap();
    }

    #[test]
    fn budget_cap_blocks_unbounded_users() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.set_epsilon_budget(Some(100.0)).unwrap();
        // A raw release makes the user's loss unbounded.
        s.accountant
            .record("u1", "earlier", loki_dp::accountant::ReleaseKind::Raw);
        let err = s
            .submit("u1", PrivacyLevel::None, obfuscated_response("u1", 4.0), &[])
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::BudgetExhausted { current: None, .. }
        ));
    }

    #[test]
    fn budget_check_and_charge_are_atomic_per_user() {
        // Regression for the check/charge TOCTOU: a user sitting just
        // under the cap fires 8 concurrent submits (distinct surveys, so
        // Duplicate can't mask the race). Exactly one may pass — under
        // the old unlocked check, several could read the stale loss and
        // all slip under the cap.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let s = Arc::new(AppState::new());
        let threads = 8u64;
        for id in 1..=threads {
            s.add_survey(one_question_survey(id)).unwrap();
        }
        // Probe the accountant for the composed loss after one and two
        // releases, then pin the cap strictly between them: the user sits
        // at cap − ε₁, one more release fits, two do not.
        let probe = AppState::new();
        probe.accountant.record("p", "a", gaussian_release("a").1);
        let one = probe.user_loss("p").epsilon.value();
        probe.accountant.record("p", "b", gaussian_release("b").1);
        let two = probe.user_loss("p").epsilon.value();
        assert!(two > one);
        s.accountant.record("u1", "warmup", gaussian_release("warmup").1);
        s.set_epsilon_budget(Some((one + two) / 2.0)).unwrap();

        let ok = Arc::new(AtomicUsize::new(0));
        let rejected = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(threads as usize));
        let handles: Vec<_> = (1..=threads)
            .map(|id| {
                let s = Arc::clone(&s);
                let ok = Arc::clone(&ok);
                let rejected = Arc::clone(&rejected);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut r = Response::new("u1", SurveyId(id));
                    r.answer(QuestionId(0), Answer::Obfuscated(3.0));
                    let release = gaussian_release(&format!("survey-{id}/q0"));
                    barrier.wait();
                    match s.submit("u1", PrivacyLevel::Low, r, &[release]) {
                        Ok(_) => ok.fetch_add(1, Ordering::SeqCst),
                        Err(SubmitError::BudgetExhausted { .. }) => {
                            rejected.fetch_add(1, Ordering::SeqCst)
                        }
                        Err(e) => panic!("unexpected error: {e:?}"),
                    };
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ok.load(Ordering::SeqCst), 1, "exactly one submit under cap");
        assert_eq!(rejected.load(Ordering::SeqCst), (threads - 1) as usize);
        // The ledger holds warmup + exactly one charged release.
        assert_eq!(s.accountant.releases_of("u1"), 2);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn journal_failure_surfaces_and_applies_nothing() {
        // /dev/full fails every write with ENOSPC: the submit must come
        // back as Durability and leave no trace in memory or the ledger.
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.attach_journal(crate::wal::Wal::open(std::path::Path::new("/dev/full")).unwrap());
        let err = s
            .submit(
                "u1",
                PrivacyLevel::Medium,
                obfuscated_response("u1", 4.0),
                &[gaussian_release("t0")],
            )
            .unwrap_err();
        assert!(matches!(err, SubmitError::Durability(_)), "{err:?}");
        assert_eq!(s.submission_count(SurveyId(1)), 0);
        assert_eq!(s.accountant.releases_of("u1"), 0);
        assert!(!s.has_submitted(SurveyId(1), "u1"));
        // Publishing is refused the same way (journal now poisoned).
        let err = s.add_survey(one_question_survey(2)).unwrap_err();
        assert!(matches!(err, SubmitError::Durability(_)));
        assert_eq!(s.surveys().len(), 1);
    }

    #[test]
    fn non_positive_budget_rejected() {
        let s = AppState::new();
        assert_eq!(s.set_epsilon_budget(Some(0.0)), Err(InvalidBudget(0.0)));
        assert_eq!(s.set_epsilon_budget(Some(-1.0)), Err(InvalidBudget(-1.0)));
        assert!(s.epsilon_budget().is_none(), "rejected cap left no residue");
        assert!(
            InvalidBudget(0.0).to_string().contains("must be positive"),
            "error explains the constraint"
        );
        s.set_epsilon_budget(Some(1.0)).unwrap();
        s.set_epsilon_budget(None).unwrap();
    }

    #[test]
    fn ledger_reflects_releases() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.submit(
            "u1",
            PrivacyLevel::Medium,
            obfuscated_response("u1", 3.0),
            &[gaussian_release("t0"), gaussian_release("t1")],
        )
        .unwrap();
        let loss = s.user_loss("u1");
        assert!(loss.is_finite());
        assert!(loss.epsilon.value() > 0.0);
        assert_eq!(s.user_loss("ghost"), loki_dp::params::PrivacyLoss::ZERO);
    }
}
