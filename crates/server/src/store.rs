//! In-memory application state behind `parking_lot` locks, with a
//! WAL-first write pipeline.
//!
//! # Durability contract (journal-then-apply)
//!
//! When a journal is attached, every accepted write follows one ordering:
//!
//! 1. validate (stateless checks, no locks);
//! 2. enter the **commit critical section** (per-user for submissions,
//!    the publish lock for surveys) and run the stateful checks —
//!    duplicate index, ε-budget;
//! 3. journal the record through the group committer and **block until
//!    it is fsync-durable**; a durability failure aborts the write with
//!    [`SubmitError::Durability`] and no state change;
//! 4. apply to memory (store + accountant charge);
//! 5. ack the caller.
//!
//! A crash can therefore lose un-acked work but never an acked write:
//! everything acked is on disk, and replay re-applies it. The ε-budget
//! check and the accountant charge both happen inside the same per-user
//! critical section, so two racing submits from one user can never both
//! pass the cap (the check/charge TOCTOU this module used to have).
//!
//! # Sharding
//!
//! [`AppState`] is the store facade over `N` internal [`Shard`]s
//! (default [`DEFAULT_SHARDS`]): survey-keyed state routes by
//! `splitmix64(survey_id) % N`, user-keyed state (commit locks, audit
//! indices; ε-ledgers inside the accountant use their own router) by
//! `fnv1a64(user) % N`. Both hashes are process-independent, so routing
//! is stable across restart and replay. Each shard owns its survey and
//! submission maps, duplicate-user index, per-user commit locks, publish
//! lock, and WAL group-commit lane — writes to unrelated surveys never
//! contend, and fsync batches form per shard when per-lane journals are
//! attached ([`AppState::attach_journal_lanes`]). Everything above this
//! module (`app`, `persist`, `scrape`, the bins) talks only to the
//! facade; read APIs like [`AppState::surveys`] merge shards in id
//! order, so snapshots and replay stay deterministic for any shard
//! count.

use loki_core::estimator::Estimator;
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::{Accountant, ReleaseKind};
use loki_dp::params::Delta;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyId};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A stored submission: who, at what level, and the uploaded response.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StoredSubmission {
    /// Submitting user.
    pub user: String,
    /// Chosen privacy level.
    pub level: PrivacyLevel,
    /// The uploaded (obfuscated) response.
    pub response: Response,
}

/// One survey's stored submissions plus the per-survey user index that
/// makes the duplicate check O(1) instead of a linear scan of the list.
/// `users` always contains exactly the users of `list`.
#[derive(Debug, Default)]
struct SurveySubmissions {
    list: Vec<StoredSubmission>,
    users: HashSet<String>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// No such survey.
    UnknownSurvey,
    /// The response failed survey validation.
    Invalid(String),
    /// A raw (non-obfuscated) answer was found on an obfuscatable
    /// question — the at-source contract forbids the server from ever
    /// storing it.
    RawAnswer {
        /// The offending question.
        question: u32,
    },
    /// The response's worker field does not match the submitting user.
    UserMismatch,
    /// This user already submitted to this survey.
    Duplicate,
    /// The user's cumulative privacy loss is at or over the server's cap.
    BudgetExhausted {
        /// Current cumulative ε (`None` = unbounded).
        current: Option<f64>,
        /// The configured cap.
        budget: f64,
    },
    /// The write could not be made durable (journal append/fsync failed);
    /// nothing was applied. Retryable once the disk recovers and the
    /// journal is re-attached.
    Durability(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownSurvey => write!(f, "unknown survey"),
            SubmitError::Invalid(e) => write!(f, "invalid response: {e}"),
            SubmitError::RawAnswer { question } => write!(
                f,
                "question q{question}: raw answer refused — obfuscate at source"
            ),
            SubmitError::UserMismatch => write!(f, "response worker does not match user"),
            SubmitError::Duplicate => write!(f, "user already submitted to this survey"),
            SubmitError::BudgetExhausted { current, budget } => match current {
                Some(c) => write!(f, "privacy budget exhausted: ε = {c:.3} of {budget:.3}"),
                None => write!(f, "privacy budget exhausted: unbounded loss recorded"),
            },
            SubmitError::Durability(e) => write!(f, "write not durable: {e}"),
        }
    }
}

/// Where in the commit sequence a fault-injection hook fires. Test-only
/// machinery, but always compiled: the production cost is one `Option`
/// check per write, same as the metrics hooks.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The record is fsync-durable but not yet applied to memory.
    AfterDurableBeforeApply,
    /// Applied to memory; the caller has not yet been acked.
    AfterApplyBeforeAck,
}

/// A fault-injection hook; panicking inside it simulates a crash at that
/// point (run the write on a scratch thread and join it).
#[doc(hidden)]
pub type CrashHook = Arc<dyn Fn(CrashPoint) + Send + Sync>;

/// Wrapper so [`AppState`] can keep `derive(Debug)` despite holding a
/// closure.
#[derive(Default)]
struct CrashHooks(RwLock<Option<CrashHook>>);

impl std::fmt::Debug for CrashHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CrashHooks")
            .field(&self.0.read().is_some())
            .finish()
    }
}

/// Rejected ε-cap configuration: the budget must be strictly positive
/// (a zero/negative/NaN cap would refuse every submission while looking
/// like a working configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidBudget(pub f64);

impl std::fmt::Display for InvalidBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epsilon budget must be positive, got {}", self.0)
    }
}

impl std::error::Error for InvalidBudget {}

/// Stable lowercase name of a privacy level for audit events (audit
/// fields are `'static` so nothing request-derived can leak into them).
fn level_name(level: PrivacyLevel) -> &'static str {
    match level {
        PrivacyLevel::None => "none",
        PrivacyLevel::Low => "low",
        PrivacyLevel::Medium => "medium",
        PrivacyLevel::High => "high",
    }
}

/// Soft cap on the per-user commit-lock maps, summed across shards:
/// each shard sweeps idle entries when its own map reaches
/// `threshold / num_shards` (see [`AppState::user_commit_lock`]), so
/// the whole-store bound is unchanged by sharding.
const USER_LOCKS_GC_THRESHOLD: usize = 1024;

/// Default shard count for [`AppState::new`]. Eight matches the
/// submitter-thread count the SHARD-1 bench drives and is enough that
/// unrelated-survey contention effectively disappears; use
/// [`AppState::with_shards`] to pick another value.
pub const DEFAULT_SHARDS: usize = 8;

/// splitmix64 finalizer: full-avalanche mix of the survey id so
/// consecutive ids (1, 2, 3, …) spread across shards instead of
/// clustering. Deterministic across processes — shard routing must
/// survive restart/replay, which rules out `RandomState` hashing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a 64 of a user id — same cross-process stability argument as
/// [`splitmix64`].
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shard index of a survey id in an `n`-shard store.
pub(crate) fn survey_shard_of(id: SurveyId, n: usize) -> usize {
    (splitmix64(id.0) % n.max(1) as u64) as usize
}

/// Shard index of a user id in an `n`-shard store.
pub(crate) fn user_shard_of(user: &str, n: usize) -> usize {
    (fnv1a64(user) % n.max(1) as u64) as usize
}

/// One store shard: the survey/submission maps, duplicate-user index,
/// per-user commit locks, audit indices, and WAL group-commit lane for
/// the slice of surveys (and users) that route here.
///
/// Field names deliberately match the pre-shard `AppState` fields: the
/// `lock-order` lint keys its acquired-while-held graph on the field
/// ident, so the declared order in `loki-lint.toml` carries over as a
/// *per-shard* order without renames.
#[derive(Debug, Default)]
struct Shard {
    surveys: RwLock<BTreeMap<SurveyId, Survey>>,
    submissions: RwLock<BTreeMap<SurveyId, SurveySubmissions>>,
    /// Serializes survey publication on this shard (commit critical
    /// section for `add_survey`): exists-check → journal → apply must
    /// be atomic against another publish of the same id — and equal ids
    /// always route to the same shard, so a shard-local lock suffices.
    publish_lock: Mutex<()>,
    /// This shard's WAL group-commit lane. Single-file mode
    /// ([`AppState::attach_journal`]) installs one shared committer into
    /// every lane; per-lane mode ([`AppState::attach_journal_lanes`])
    /// gives each shard its own file and committer thread so fsync
    /// batches form per shard.
    journal: RwLock<Option<Arc<crate::wal::GroupCommitter>>>,
    /// Per-user commit locks for users routed here (see
    /// [`AppState::user_commit_lock`]).
    user_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Opaque audit indices for users routed here; values come off the
    /// store-wide `next_subject` counter so indices stay globally
    /// unique and insertion-ordered.
    user_indices: Mutex<HashMap<String, u64>>,
    /// Streaming sufficient statistics per survey routed here, folded in
    /// under the same `submissions` critical section that appends the
    /// stored copy (that ordering is what makes streamed estimates
    /// bitwise-equal to a rescan; see [`crate::agg`]).
    agg: RwLock<BTreeMap<SurveyId, crate::agg::SurveyAgg>>,
    /// Submissions stored on this shard, for the O(shards) platform
    /// total (`/v1/stats` without a submission-map walk).
    agg_total: std::sync::atomic::AtomicU64,
}

/// Point-in-time occupancy of one shard, for `GET /v1/admin/shards`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Surveys stored on this shard.
    pub surveys: usize,
    /// Submissions stored on this shard (summed over its surveys).
    pub submissions: usize,
    /// ε-ledger users whose ids route to this shard.
    pub ledger_users: usize,
    /// Live per-user commit-lock entries.
    pub user_locks_len: usize,
    /// Whether a WAL lane is attached.
    pub wal_attached: bool,
    /// Whether the lane is shared with another shard (single-file mode).
    pub wal_shared: bool,
    /// Writes enqueued on the lane but not yet fsync-durable.
    pub wal_depth: usize,
    /// Poison reason, if an I/O failure has killed the lane.
    pub wal_poisoned: Option<String>,
}

/// The server's whole mutable state: the store facade over the shards.
///
/// # Canonical lock order
///
/// Every path that holds more than one lock acquires them in this
/// order (earlier may be held while taking later, never the reverse).
/// The first eight live **per shard** — and no path ever holds one
/// shard's lock while taking the same-ranked lock of another shard —
/// the last four are process-global (the observatory's `sketches`
/// entries are subject-routed like the per-user commit locks: one entry
/// per call, never two at once):
///
/// 1. `publish_lock` (per shard)
/// 2. `user_locks` (per shard; the map mutex)
/// 3. `user_commit_lock` (a per-user entry *from* that map)
/// 4. `surveys` (per shard)
/// 5. `submissions` (per shard)
/// 6. `user_indices` (per shard)
/// 7. `journal` (per shard; the WAL lane)
/// 8. `agg` (per shard; streaming sufficient statistics)
/// 9. `sketches` (global; one subject-routed observatory entry)
/// 10. `qi_surveys` (global; observatory disclosure counters)
/// 11. `epsilon_budget` (global)
/// 12. `crash_hooks` (global)
///
/// The order is machine-checked: `loki-lint.toml` declares the same
/// sequence under `[rules.lock-order]`, and the `lock-order` pass
/// rebuilds the acquired-while-held graph from source on every CI run.
/// Deliberate exceptions would carry a `// lint:allow lock-order`
/// comment; there are currently none.
#[derive(Debug)]
pub struct AppState {
    /// The shards. Survey-keyed state routes by `splitmix64(id) % N`,
    /// user-keyed state by `fnv1a64(user) % N`; see the module docs.
    shards: Vec<Shard>,
    /// Requester tokens allowed to publish surveys. Empty = open server
    /// (useful for tests and local demos).
    requester_tokens: RwLock<HashSet<String>>,
    /// Optional cap on any user's cumulative ε; submissions from users at
    /// or over the cap are refused (the enforcement arm of §3.1's
    /// "tracked and balanced" loss).
    epsilon_budget: RwLock<Option<f64>>,
    /// Server-side mirror of cumulative privacy loss per user
    /// (internally sharded by its own user-id router).
    pub accountant: Accountant,
    /// The live privacy observatory: subject-routed anonymity sketches
    /// fed from the submit apply path (see [`crate::agg`]).
    observatory: crate::agg::PrivacyObservatory,
    /// Lazily enabled metrics. Until [`AppState::enable_metrics`] is
    /// called every instrumentation point is a cheap `None` check, so
    /// un-instrumented state (e.g. bench baselines) pays ~nothing.
    /// Inside an `Arc` so the journal's batch observer (which runs on
    /// the committer thread) can share it.
    metrics: Arc<std::sync::OnceLock<Arc<crate::metrics::ServerMetrics>>>,
    /// Fault-injection hook for the crash-point tests.
    crash_hooks: CrashHooks,
    /// The background self-scraper feeding the metrics history layer;
    /// dropped (signalled + joined) with the state.
    scraper: Mutex<Option<crate::scrape::SelfScraper>>,
    /// Feeds the per-shard `user_indices` maps: the opaque audit index
    /// of a new subject is drawn here so indices stay globally unique
    /// and insertion-ordered (0, 1, 2, …) across shards. The audit log
    /// (in `loki-obs`) never sees a raw user id, only this index.
    next_subject: std::sync::atomic::AtomicU64,
    /// Process start, for `/v1/healthz` uptime.
    started: std::time::Instant,
}

impl Default for AppState {
    fn default() -> AppState {
        AppState::with_shards(DEFAULT_SHARDS)
    }
}

impl AppState {
    /// Creates empty state with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> AppState {
        AppState::default()
    }

    /// Creates empty state with `n` shards (clamped to at least 1).
    /// `with_shards(1)` reproduces the pre-shard single-map store
    /// exactly — the snapshot-equivalence tests rely on that.
    pub fn with_shards(n: usize) -> AppState {
        AppState {
            shards: (0..n.max(1)).map(|_| Shard::default()).collect(),
            requester_tokens: RwLock::default(),
            epsilon_budget: RwLock::default(),
            accountant: Accountant::default(),
            observatory: crate::agg::PrivacyObservatory::new(),
            metrics: Arc::default(),
            crash_hooks: CrashHooks::default(),
            scraper: Mutex::default(),
            next_subject: std::sync::atomic::AtomicU64::new(0),
            started: std::time::Instant::now(),
        }
    }

    /// Number of shards this store was built with.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a survey id routes to (admin/test visibility).
    pub fn shard_of_survey(&self, id: SurveyId) -> usize {
        survey_shard_of(id, self.shards.len())
    }

    /// The shard index a user id routes to (admin/test visibility).
    pub fn shard_of_user(&self, user: &str) -> usize {
        user_shard_of(user, self.shards.len())
    }

    /// The one place shard indices become references. Both routing
    /// functions reduce `hash % shards.len()` and `with_shards` clamps
    /// the count to >= 1, so the index is in range by construction.
    fn shard_at(&self, idx: usize) -> &Shard {
        // lint:allow panic-path -- idx is `hash % len` with len >= 1.
        &self.shards[idx]
    }

    fn shard_for_survey(&self, id: SurveyId) -> &Shard {
        self.shard_at(self.shard_of_survey(id))
    }

    fn shard_for_user(&self, user: &str) -> &Shard {
        self.shard_at(self.shard_of_user(user))
    }

    /// Seconds since this state was created (server uptime for healthz).
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Journal health as `(attached, poisoned_reason)`, aggregated over
    /// the lanes: attached if any lane has a committer, poisoned with
    /// the first lane's reason if any lane has failed (every later
    /// write on that lane 503s until operator recovery).
    pub fn journal_health(&self) -> (bool, Option<String>) {
        let mut attached = false;
        let mut poisoned = None;
        for shard in &self.shards {
            let lane = shard.journal.read().clone();
            if let Some(committer) = lane {
                attached = true;
                if poisoned.is_none() {
                    poisoned = committer.poisoned();
                }
            }
        }
        (attached, poisoned)
    }

    /// The opaque audit index for `user`, assigned in insertion order on
    /// first use (globally, via `next_subject`). This is the only form
    /// in which a submission's subject ever reaches the observability
    /// layer.
    fn subject_index(&self, user: &str) -> u64 {
        let mut indices = self.shard_for_user(user).user_indices.lock();
        if let Some(index) = indices.get(user) {
            return *index;
        }
        let next = self
            .next_subject
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        indices.insert(user.to_string(), next);
        next
    }

    /// Registers a requester token; once any token exists, publishing
    /// requires one.
    pub fn add_requester_token(&self, token: impl Into<String>) {
        self.requester_tokens.write().insert(token.into());
    }

    /// Whether a `POST /surveys` bearing `token` (possibly absent) is
    /// allowed to publish.
    pub fn may_publish(&self, token: Option<&str>) -> bool {
        let tokens = self.requester_tokens.read();
        tokens.is_empty() || token.is_some_and(|t| tokens.contains(t))
    }

    /// Attaches a write-ahead journal with default group-commit tuning:
    /// every *subsequently* accepted survey publication and submission is
    /// made fsync-durable **before** it is applied or acked. Use
    /// [`crate::wal::replay`] at startup to restore, then attach the same
    /// journal path for new writes.
    ///
    /// Single-file mode: one committer serves every shard's lane, so
    /// all shards share one journal file and one fsync queue. For
    /// per-shard files and queues use
    /// [`AppState::attach_journal_lanes`].
    pub fn attach_journal(&self, wal: crate::wal::Wal) {
        self.attach_journal_with(wal, crate::wal::GroupCommitConfig::default());
    }

    /// [`AppState::attach_journal`] with explicit group-commit tuning
    /// (`max_batch: 1` degenerates to per-write fsync — the bench
    /// baseline).
    pub fn attach_journal_with(&self, wal: crate::wal::Wal, config: crate::wal::GroupCommitConfig) {
        let metrics = Arc::clone(&self.metrics);
        let observer: crate::wal::BatchObserver = Arc::new(move |event| {
            if let Some(m) = metrics.get() {
                m.on_wal_batch(event);
            }
        });
        let committer = Arc::new(crate::wal::GroupCommitter::spawn(
            wal,
            config,
            Some(observer),
        ));
        for shard in &self.shards {
            *shard.journal.write() = Some(Arc::clone(&committer));
        }
    }

    /// Attaches one WAL lane **per shard**: each shard gets its own
    /// journal file under `dir` ([`crate::wal::lane_file_name`]) and its
    /// own group-commit thread, so fsync batches form per shard and a
    /// slow lane never stalls the others. Restore with
    /// [`crate::wal::replay_lanes`] at startup, then attach the same
    /// directory for new writes.
    pub fn attach_journal_lanes(
        &self,
        dir: &std::path::Path,
        config: crate::wal::GroupCommitConfig,
    ) -> Result<(), crate::wal::WalError> {
        for (lane, shard) in self.shards.iter().enumerate() {
            let wal = crate::wal::Wal::open(&dir.join(crate::wal::lane_file_name(lane)))?;
            let metrics = Arc::clone(&self.metrics);
            let observer: crate::wal::BatchObserver = Arc::new(move |event| {
                if let Some(m) = metrics.get() {
                    m.on_wal_batch_lane(event, lane);
                }
            });
            let committer = crate::wal::GroupCommitter::spawn(wal, config, Some(observer));
            *shard.journal.write() = Some(Arc::new(committer));
        }
        Ok(())
    }

    /// Detaches every journal lane, joining each committer thread (the
    /// shared committer, in single-file mode, joins when its last lane
    /// drops) so every in-flight commit resolves first.
    pub fn detach_journal(&self) {
        for shard in &self.shards {
            *shard.journal.write() = None;
        }
    }

    /// Enables metrics (idempotent) and returns the shared instance. The
    /// store's instrumentation points are no-ops until this is called.
    pub fn enable_metrics(&self) -> Arc<crate::metrics::ServerMetrics> {
        Arc::clone(
            self.metrics
                .get_or_init(|| Arc::new(crate::metrics::ServerMetrics::new())),
        )
    }

    /// Enables metrics with an explicitly constructed instance (custom
    /// trace or history config). First caller wins: if metrics are
    /// already enabled the existing instance is returned unchanged, so
    /// call this *before* [`crate::app::serve`]/`build_router`.
    pub fn enable_metrics_with(
        &self,
        metrics: Arc<crate::metrics::ServerMetrics>,
    ) -> Arc<crate::metrics::ServerMetrics> {
        Arc::clone(self.metrics.get_or_init(|| metrics))
    }

    /// One history-layer scrape: ledger-gauge refresh, privacy-gauge
    /// refresh from the observatory, registry snapshot into the tsdb,
    /// SLO evaluation. No-op until metrics are enabled.
    pub fn scrape_once(&self) {
        if let Some(m) = self.metrics.get() {
            m.scrape(
                &self.accountant,
                self.epsilon_budget(),
                &self.privacy_summary(),
            );
        }
    }

    /// Starts the background self-scraper at `interval` (idempotent:
    /// a scraper that is already running is left untouched, so tests can
    /// start a fast one before [`crate::app::serve`] installs the 1 s
    /// default). The scraper holds only a weak reference; it is signalled
    /// and joined when the state drops or on [`AppState::stop_self_scraper`].
    pub fn start_self_scraper(self: &Arc<Self>, interval: std::time::Duration) {
        let mut slot = self.scraper.lock();
        if slot.is_none() {
            *slot = Some(crate::scrape::SelfScraper::spawn(self, interval));
        }
    }

    /// Stops and joins the background self-scraper, if one is running.
    pub fn stop_self_scraper(&self) {
        self.scraper.lock().take();
    }

    /// The metrics instance, if enabled.
    pub fn metrics(&self) -> Option<&Arc<crate::metrics::ServerMetrics>> {
        self.metrics.get()
    }

    /// Installs (or clears) the crash-point fault-injection hook.
    #[doc(hidden)]
    pub fn set_crash_hook(&self, hook: Option<CrashHook>) {
        *self.crash_hooks.0.write() = hook;
    }

    fn crash_point(&self, point: CrashPoint) {
        if let Some(hook) = self.crash_hooks.0.read().as_ref() {
            hook(point);
        }
    }

    /// Caps every user's cumulative ε; `None` removes the cap. A
    /// non-positive (or NaN) cap is refused with [`InvalidBudget`] and
    /// leaves the existing configuration untouched.
    pub fn set_epsilon_budget(&self, budget: Option<f64>) -> Result<(), InvalidBudget> {
        if let Some(b) = budget {
            if !(b > 0.0) {
                return Err(InvalidBudget(b));
            }
        }
        *self.epsilon_budget.write() = budget;
        Ok(())
    }

    /// The configured cumulative-ε cap, if any.
    pub fn epsilon_budget(&self) -> Option<f64> {
        *self.epsilon_budget.read()
    }

    /// This user's commit lock, created on first use in the user's
    /// shard.
    ///
    /// The maps would otherwise grow by one entry per distinct user id
    /// forever (an unauthenticated-request memory leak): before
    /// inserting a new entry into a shard map at its share of
    /// [`USER_LOCKS_GC_THRESHOLD`] or above, idle entries — `Arc`
    /// strong count 1, i.e. the map holds the only reference, so no
    /// commit is in flight — are dropped. A dropped user simply gets a
    /// fresh lock next time; the per-user atomicity only needs the lock
    /// to be unique *while referenced*, which the strong-count test
    /// guarantees. Live size summed over shards is therefore at most
    /// `threshold + concurrent in-flight commits`.
    fn user_commit_lock(&self, user: &str) -> Arc<Mutex<()>> {
        let shard_threshold = (USER_LOCKS_GC_THRESHOLD / self.shards.len()).max(1);
        let mut locks = self.shard_for_user(user).user_locks.lock();
        if let Some(lock) = locks.get(user) {
            return Arc::clone(lock);
        }
        if locks.len() >= shard_threshold {
            locks.retain(|_, lock| Arc::strong_count(lock) > 1);
        }
        let lock = Arc::new(Mutex::new(()));
        locks.insert(user.to_string(), Arc::clone(&lock));
        lock
    }

    /// Number of per-user commit-lock entries currently held across all
    /// shards (ops/test visibility for the boundedness contract above).
    pub fn user_locks_len(&self) -> usize {
        let mut total = 0usize;
        for shard in &self.shards {
            total = total.saturating_add(shard.user_locks.lock().len());
        }
        total
    }

    /// Journals a survey publication on its shard's lane (durable
    /// before return); no-op without an attached journal.
    fn journal_survey(&self, shard: &Shard, survey: &Survey) -> Result<(), SubmitError> {
        let journal = shard.journal.read();
        let Some(committer) = journal.as_ref() else {
            return Ok(());
        };
        committer
            .commit_survey(survey)
            .map_err(|e| SubmitError::Durability(e.to_string()))
    }

    /// Journals an accepted submission on its survey's lane (durable
    /// before return); no-op without an attached journal.
    fn journal_submission(
        &self,
        shard: &Shard,
        user: &str,
        level: PrivacyLevel,
        response: &Response,
        releases: &[(String, ReleaseKind)],
    ) -> Result<(), SubmitError> {
        let journal = shard.journal.read();
        let Some(committer) = journal.as_ref() else {
            return Ok(());
        };
        committer
            .commit_submission(user, level, response, releases)
            .map_err(|e| SubmitError::Durability(e.to_string()))
    }

    /// Publishes a survey, journal-first. Returns `Ok(false)` if the id
    /// already exists, `Err(Durability)` if the journal refused the write
    /// (in which case nothing was published).
    pub fn add_survey(&self, survey: Survey) -> Result<bool, SubmitError> {
        let shard = self.shard_for_survey(survey.id);
        let _publish = shard.publish_lock.lock();
        if shard.surveys.read().contains_key(&survey.id) {
            return Ok(false);
        }
        self.journal_survey(shard, &survey)?;
        self.crash_point(CrashPoint::AfterDurableBeforeApply);
        // Register the streaming state before the survey becomes visible
        // so no submission can race past an unregistered aggregate, then
        // publish (surveys is taken after agg releases — a single lock
        // at a time, so no ordering edge forms here).
        shard
            .agg
            .write()
            .insert(survey.id, crate::agg::SurveyAgg::for_survey(&survey));
        shard.surveys.write().insert(survey.id, survey);
        self.crash_point(CrashPoint::AfterApplyBeforeAck);
        Ok(true)
    }

    /// A survey by id.
    pub fn survey(&self, id: SurveyId) -> Option<Survey> {
        self.shard_for_survey(id).surveys.read().get(&id).cloned()
    }

    /// All surveys, id-ordered: shards are merged and re-sorted, so the
    /// result is byte-identical for any shard count (snapshots and the
    /// listing depend on that).
    pub fn surveys(&self) -> Vec<Survey> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.surveys.read().values().cloned());
        }
        all.sort_by_key(|s| s.id);
        all
    }

    /// One id-ordered page of surveys strictly after `after`, plus
    /// whether more remain. Each shard contributes at most `limit + 1`
    /// candidates from its id-ordered map, so the cost is
    /// O(shards × limit), not O(total surveys).
    pub fn surveys_page(&self, after: Option<SurveyId>, limit: usize) -> (Vec<Survey>, bool) {
        use std::ops::Bound;
        let lower = match after {
            Some(id) => Bound::Excluded(id),
            None => Bound::Unbounded,
        };
        let mut merged = Vec::new();
        for shard in &self.shards {
            let guard = shard.surveys.read();
            merged.extend(
                guard
                    .range((lower, Bound::Unbounded))
                    .take(limit.saturating_add(1))
                    .map(|(_, s)| s.clone()),
            );
        }
        merged.sort_by_key(|s| s.id);
        let has_more = merged.len() > limit;
        merged.truncate(limit);
        (merged, has_more)
    }

    /// Point-in-time occupancy of every shard, for the admin surface.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let n = self.shards.len();
        let ledger_users = self.accountant.count_users_by(n, |user| user_shard_of(user, n));
        // Each lock below is taken inside its own block so no two shard
        // locks are ever held together: stats reads are point-in-time
        // per lock, never a consistent cross-lock snapshot.
        let mut lanes: Vec<Option<Arc<crate::wal::GroupCommitter>>> = Vec::with_capacity(n);
        for shard in &self.shards {
            let lane = {
                let guard = shard.journal.read();
                guard.clone()
            };
            lanes.push(lane);
        }
        let mut out = Vec::with_capacity(n);
        for (i, shard) in self.shards.iter().enumerate() {
            let survey_count = {
                let guard = shard.surveys.read();
                guard.len()
            };
            let submission_count: usize = {
                let guard = shard.submissions.read();
                guard.values().map(|s| s.list.len()).sum()
            };
            let user_locks_len = {
                let guard = shard.user_locks.lock();
                guard.len()
            };
            let lane = lanes.get(i).cloned().flatten();
            let wal_shared = match &lane {
                Some(c) => lanes.iter().enumerate().any(|(j, other)| {
                    j != i && other.as_ref().is_some_and(|o| Arc::ptr_eq(o, c))
                }),
                None => false,
            };
            out.push(ShardStats {
                shard: i,
                surveys: survey_count,
                submissions: submission_count,
                ledger_users: ledger_users.get(i).copied().unwrap_or(0),
                user_locks_len,
                wal_attached: lane.is_some(),
                wal_shared,
                wal_depth: lane.as_ref().map_or(0, |c| c.depth()),
                wal_poisoned: lane.as_ref().and_then(|c| c.poisoned()),
            });
        }
        out
    }

    /// Number of stored submissions for a survey.
    pub fn submission_count(&self, id: SurveyId) -> usize {
        self.shard_for_survey(id)
            .submissions
            .read()
            .get(&id)
            .map_or(0, |s| s.list.len())
    }

    /// All submissions for a survey.
    pub fn submissions(&self, id: SurveyId) -> Vec<StoredSubmission> {
        self.shard_for_survey(id)
            .submissions
            .read()
            .get(&id)
            .map(|s| s.list.clone())
            .unwrap_or_default()
    }

    /// Whether `user` has already submitted to `survey` (O(1) via the
    /// per-survey user index).
    pub fn has_submitted(&self, survey: SurveyId, user: &str) -> bool {
        self.shard_for_survey(survey)
            .submissions
            .read()
            .get(&survey)
            .is_some_and(|s| s.users.contains(user))
    }

    /// Validates and stores a submission, recording the declared ledger
    /// entries. Returns the new submission count for the survey.
    ///
    /// Write ordering when a journal is attached: stateful checks →
    /// journal (blocking until fsync-durable) → apply → ack, all inside
    /// this user's commit critical section. See the module docs.
    pub fn submit(
        &self,
        user: &str,
        level: PrivacyLevel,
        response: Response,
        releases: &[(String, ReleaseKind)],
    ) -> Result<usize, SubmitError> {
        // Stateless validation first — no locks held.
        loki_obs::phase!("store.validate");
        if response.worker != user {
            return Err(SubmitError::UserMismatch);
        }
        let survey = self
            .survey(response.survey)
            .ok_or(SubmitError::UnknownSurvey)?;
        response
            .validate(&survey)
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;

        // At-source enforcement: obfuscatable questions must arrive as
        // Obfuscated (numeric kinds) or Choice (already RR-perturbed) —
        // never as raw Rating/Numeric values.
        for q in &survey.questions {
            let Some(answer) = response.get(q.id) else {
                // validate() guarantees completeness, but a panic here
                // would let one inconsistent payload kill a worker thread.
                return Err(SubmitError::Invalid(format!(
                    "missing answer for question {}",
                    q.id.0
                )));
            };
            let raw = matches!(
                (&q.kind, answer),
                (QuestionKind::Rating { .. }, Answer::Rating(_))
                    | (QuestionKind::Numeric { .. }, Answer::Numeric(_))
            );
            if raw {
                return Err(SubmitError::RawAnswer { question: q.id.0 });
            }
        }

        // Commit critical section: everything from the budget check to
        // the accountant charge holds this user's lock, so check+charge
        // is atomic per user and unrelated users proceed in parallel
        // (their concurrent journal commits form the fsync batches).
        loki_obs::phase!("store.lock");
        let user_lock = self.user_commit_lock(user);
        let _user_guard = user_lock.lock();

        if self.has_submitted(response.survey, user) {
            return Err(SubmitError::Duplicate);
        }

        // ε-audit bookkeeping (metrics enabled only): the running total
        // before the charge, and the marginal ε this release set would
        // add — probed on a scratch copy of the ledger so the attempted
        // and rejected-at-cap events can report it without charging.
        let budget = self.epsilon_budget();
        let trace_ctx = loki_obs::trace::current();
        let trace_id = trace_ctx.as_ref().map(|c| c.trace_id());
        let loss = (budget.is_some() || self.metrics.get().is_some())
            .then(|| self.user_loss(user));
        let audit = match (self.metrics.get(), &loss) {
            (Some(m), Some(before)) => {
                let mut scratch = self.accountant.ledger_of(user).unwrap_or_default();
                for (tag, kind) in releases {
                    scratch.record(tag.clone(), *kind);
                }
                let after = scratch.tight_loss(Delta::new(loki_dp::DEFAULT_DELTA));
                let running_before = if before.is_finite() {
                    before.epsilon.value()
                } else {
                    f64::INFINITY
                };
                let running_after = if after.is_finite() {
                    after.epsilon.value()
                } else {
                    f64::INFINITY
                };
                let charge = if running_before.is_finite() && running_after.is_finite() {
                    (running_after - running_before).max(0.0)
                } else {
                    f64::INFINITY
                };
                let index = self.subject_index(user);
                m.audit_log().push(
                    index,
                    loki_obs::AuditOutcome::Attempted,
                    level_name(level),
                    charge,
                    running_before,
                    trace_id,
                );
                Some((Arc::clone(m), index, charge, running_after))
            }
            _ => None,
        };

        if let Some(budget) = budget {
            // `loss` is always `Some` when a budget is configured.
            let over = match &loss {
                Some(l) if l.is_finite() => l.epsilon.value() >= budget,
                _ => true,
            };
            if over {
                let current = loss
                    .as_ref()
                    .and_then(|l| l.is_finite().then(|| l.epsilon.value()));
                if let Some((m, index, charge, _)) = &audit {
                    m.audit_log().push(
                        *index,
                        loki_obs::AuditOutcome::RejectedAtCap,
                        level_name(level),
                        *charge,
                        current.unwrap_or(f64::INFINITY),
                        trace_id,
                    );
                }
                if let Some(m) = self.metrics.get() {
                    m.on_budget_rejection();
                }
                return Err(SubmitError::BudgetExhausted { current, budget });
            }
        }

        // Durable before applied: a failure here aborts with no state
        // change, and the client is told instead of silently dropped.
        // The trace context crosses into the committer thread via the
        // commit request, recording enqueue/batch/fsync spans there.
        // Submissions journal to their *survey's* lane, so per-lane
        // replay keeps every survey before its submissions.
        let survey_shard_index = self.shard_of_survey(response.survey);
        let survey_shard = self.shard_for_survey(response.survey);
        // The journal phase covers the whole durable wait (enqueue +
        // group-commit fsync round-trip); the committer thread refines
        // its own side under the wal.* tags.
        loki_obs::phase!("store.journal");
        self.journal_submission(survey_shard, user, level, &response, releases)?;
        self.crash_point(CrashPoint::AfterDurableBeforeApply);

        loki_obs::phase!("store.apply");
        let apply_span = trace_ctx.as_ref().map(|c| c.start_child("apply"));
        let lock_started = std::time::Instant::now();
        let survey_id = response.survey;
        let (stored, fragment) = {
            let mut subs_guard = survey_shard.submissions.write();
            let entry = subs_guard.entry(response.survey).or_default();
            for (tag, kind) in releases {
                self.accountant.record(user, tag.clone(), *kind);
            }
            entry.users.insert(user.to_string());
            // Fold the streaming statistics inside the same critical
            // section that appends the stored copy: identical fold order
            // is what makes streamed estimates bitwise-equal to a rescan
            // (submissions rank 5, agg rank 8 — consistent with the
            // canonical order).
            let fragment = {
                let mut agg_guard = survey_shard.agg.write();
                agg_guard
                    .entry(response.survey)
                    .or_insert_with(|| crate::agg::SurveyAgg::for_survey(&survey))
                    .apply(level, &response)
            };
            entry.list.push(StoredSubmission {
                user: user.to_string(),
                level,
                response,
            });
            survey_shard
                .agg_total
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            (entry.list.len(), fragment)
        };
        // Feed the observatory outside the shard locks (sketch entries
        // are subject-routed; the user commit lock above serializes one
        // subject's updates, so cohort accounting never races itself).
        self.observatory.ingest(survey_id, user, &fragment);
        if let Some(mut span) = apply_span {
            span.attr("stored", stored as u64);
            span.finish();
        }
        if let Some(m) = self.metrics.get() {
            m.observe_store_lock_sharded(lock_started.elapsed(), survey_shard_index);
            m.on_submission_stored(level);
        }
        if let Some((m, index, charge, running_after)) = audit {
            m.audit_log().push(
                index,
                loki_obs::AuditOutcome::Charged,
                level_name(level),
                charge,
                running_after,
                trace_id,
            );
        }
        loki_obs::phase!("store.ack");
        let ack_span = trace_ctx.as_ref().map(|c| c.start_child("ack"));
        self.crash_point(CrashPoint::AfterApplyBeforeAck);
        drop(ack_span);
        Ok(stored)
    }

    /// Per-bin samples of one question's numeric uploads.
    pub fn bin_samples(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
    ) -> BTreeMap<PrivacyLevel, Vec<f64>> {
        let mut bins: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
        if let Some(subs) = self.shard_for_survey(survey).submissions.read().get(&survey) {
            for sub in &subs.list {
                if let Some(v) = sub.response.get(question).and_then(Answer::as_f64) {
                    bins.entry(sub.level).or_default().push(v);
                }
            }
        }
        bins
    }

    /// Aggregated results of one question, `None` when there are no
    /// numeric uploads for it.
    pub fn results(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
        estimator: &Estimator,
    ) -> Option<loki_core::estimator::PooledEstimate> {
        let bins = self.bin_samples(survey, question);
        // Checked pooling: an all-empty map is a routine "no responses
        // yet", and a non-finite accumulation (overflowed sums) must
        // degrade to 404, never panic a serving thread.
        estimator.pooled_checked(&bins)
    }

    /// Total stored submissions across every survey, read from the
    /// per-shard streaming counters: O(shards), no submission-map walk.
    pub fn submission_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.agg_total.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    }

    /// Streaming submission count of one survey (O(1): the survey's
    /// shard, one map lookup).
    pub fn survey_submission_total(&self, id: SurveyId) -> u64 {
        self.shard_for_survey(id)
            .agg
            .read()
            .get(&id)
            .map_or(0, crate::agg::SurveyAgg::submissions)
    }

    /// Per-bin sufficient statistics of one question from the streaming
    /// state — the O(1)-shard counterpart of [`AppState::bin_samples`].
    /// `None` when the survey is unknown or no numeric value has arrived.
    pub fn streaming_bins(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
    ) -> Option<BTreeMap<PrivacyLevel, loki_core::estimator::BinStats>> {
        self.shard_for_survey(survey)
            .agg
            .read()
            .get(&survey)
            .and_then(|a| a.stats_for(question))
    }

    /// Streaming pooled estimate of one question — must equal
    /// [`AppState::results`] bitwise (pinned by the `agg_stream` property
    /// tests); computed from the sufficient statistics without touching
    /// the submission maps.
    pub fn streaming_results(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
        estimator: &Estimator,
    ) -> Option<loki_core::estimator::PooledEstimate> {
        let bins = self.streaming_bins(survey, question)?;
        estimator.pooled_stats(&bins)
    }

    /// Streaming LDP truth-inference estimate of one question
    /// (`?mode=ldp-truth` on the estimate endpoint): iterative
    /// reliability-weighted pooling instead of inverse-variance pooling.
    pub fn streaming_truth(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
        estimator: &Estimator,
    ) -> Option<loki_core::estimator::PooledEstimate> {
        let bins = self.streaming_bins(survey, question)?;
        estimator.ldp_truth(&bins)
    }

    /// Per-survey streaming rollups for `/v1/privacy`, id-ordered and
    /// merged across shards: `(survey, submissions, QI questions)`.
    pub fn survey_agg_rollups(&self) -> Vec<(SurveyId, u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.agg.read();
            out.extend(
                guard
                    .iter()
                    .map(|(id, agg)| (*id, agg.folded_count(), agg.qi_questions())),
            );
        }
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// The live privacy observatory (k-anonymity sketches).
    pub fn observatory(&self) -> &crate::agg::PrivacyObservatory {
        &self.observatory
    }

    /// Point-in-time identity-free privacy summary (for `/v1/privacy`
    /// and the metrics scrape).
    pub fn privacy_summary(&self) -> crate::agg::PrivacySummary {
        self.observatory.summary()
    }

    /// Cumulative loss of a user at the default δ.
    pub fn user_loss(&self, user: &str) -> loki_dp::params::PrivacyLoss {
        self.accountant
            .loss_of(user, Delta::new(loki_dp::DEFAULT_DELTA))
    }

    /// Per-bin choice counts for a multiple-choice question: for each
    /// privacy level, a histogram over the option indices.
    pub fn choice_histograms(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
        options: usize,
    ) -> BTreeMap<PrivacyLevel, Vec<u64>> {
        let mut bins: BTreeMap<PrivacyLevel, Vec<u64>> = BTreeMap::new();
        if let Some(subs) = self.shard_for_survey(survey).submissions.read().get(&survey) {
            for sub in &subs.list {
                if let Some(Answer::Choice(c)) = sub.response.get(question) {
                    if *c < options {
                        let hist = bins.entry(sub.level).or_insert_with(|| vec![0; options]);
                        if let Some(slot) = hist.get_mut(*c) {
                            *slot += 1;
                        }
                    }
                }
            }
        }
        bins
    }

    /// Estimated true per-option frequencies for a multiple-choice
    /// question, inverting each bin's randomized response and pooling
    /// bins by response count. Returns `None` when there are no choice
    /// uploads for the question.
    pub fn choice_frequencies(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
    ) -> Option<ChoiceEstimate> {
        let survey_def = self.survey(survey)?;
        let q = survey_def.question(question)?;
        let loki_survey::question::QuestionKind::MultipleChoice { options } = &q.kind else {
            return None;
        };
        let k = options.len();
        let histograms = self.choice_histograms(survey, question, k);
        let mut pooled = vec![0.0f64; k];
        let mut n_total = 0u64;
        let mut bins = Vec::new();
        for (level, hist) in &histograms {
            let n: u64 = hist.iter().sum();
            if n == 0 {
                continue;
            }
            let estimate: Vec<f64> = match level.randomized_response_epsilon() {
                None => hist.iter().map(|&c| c as f64).collect(),
                Some(eps) => {
                    let rr = loki_dp::mechanisms::randomized_response::RandomizedResponse::new(
                        k,
                        loki_dp::params::Epsilon::new(eps),
                    );
                    rr.estimate_frequencies(hist)
                }
            };
            for (p, e) in pooled.iter_mut().zip(&estimate) {
                *p += e;
            }
            n_total += n;
            bins.push((*level, n as usize));
        }
        if n_total == 0 {
            return None;
        }
        // Normalize the pooled counts to frequencies, clipping the RR
        // inversion's possible small negatives.
        let clipped: Vec<f64> = pooled.iter().map(|&p| p.max(0.0)).collect();
        let total: f64 = clipped.iter().sum();
        let frequencies = if total > 0.0 {
            clipped.iter().map(|&p| p / total).collect()
        } else {
            vec![1.0 / k as f64; k]
        };
        Some(ChoiceEstimate {
            options: options.clone(),
            frequencies,
            n_total: n_total as usize,
            bins,
        })
    }
}

/// Estimated option frequencies for a multiple-choice question.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChoiceEstimate {
    /// Option labels, in order.
    pub options: Vec<String>,
    /// Estimated true frequency of each option (sums to 1).
    pub frequencies: Vec<f64>,
    /// Total responses used.
    pub n_total: usize,
    /// (level, responses) per contributing bin.
    pub bins: Vec<(PrivacyLevel, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::QuestionKind;
    use loki_survey::survey::SurveyBuilder;
    use loki_survey::QuestionId;

    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "lecturers");
        b.question("rate L1", QuestionKind::likert5(), false);
        b.question("rate L2", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn one_question_survey(id: u64) -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(id), format!("s{id}"));
        b.question("rate", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn obfuscated_response(user: &str, v: f64) -> Response {
        let mut r = Response::new(user, SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(v));
        r.answer(QuestionId(1), Answer::Obfuscated(v - 1.0));
        r
    }

    fn gaussian_release(tag: &str) -> (String, ReleaseKind) {
        (
            tag.to_string(),
            ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0,
            },
        )
    }

    #[test]
    fn add_and_list_surveys() {
        let s = AppState::new();
        assert!(s.add_survey(survey()).unwrap());
        assert!(
            !s.add_survey(survey()).unwrap(),
            "duplicate id must be rejected"
        );
        assert_eq!(s.surveys().len(), 1);
        assert!(s.survey(SurveyId(1)).is_some());
        assert!(s.survey(SurveyId(9)).is_none());
    }

    #[test]
    fn submit_and_count() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        let n = s
            .submit(
                "u1",
                PrivacyLevel::Medium,
                obfuscated_response("u1", 4.2),
                &[gaussian_release("survey-1/q0"), gaussian_release("survey-1/q1")],
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.submission_count(SurveyId(1)), 1);
        assert_eq!(s.accountant.releases_of("u1"), 2);
    }

    #[test]
    fn duplicate_submission_rejected() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[])
            .unwrap();
        let err = s
            .submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[])
            .unwrap_err();
        assert_eq!(err, SubmitError::Duplicate);
        assert!(s.has_submitted(SurveyId(1), "u1"));
        assert!(!s.has_submitted(SurveyId(1), "u2"));
    }

    #[test]
    fn user_index_stays_consistent_with_list() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        for i in 0..50 {
            let user = format!("u{i}");
            s.submit(
                &user,
                PrivacyLevel::Low,
                obfuscated_response(&user, 3.0),
                &[],
            )
            .unwrap();
        }
        let subs = s.submissions(SurveyId(1));
        assert_eq!(subs.len(), 50);
        for sub in &subs {
            assert!(s.has_submitted(SurveyId(1), &sub.user));
        }
    }

    #[test]
    fn user_locks_map_stays_bounded() {
        let s = AppState::new();
        // A clone held across sweeps (an in-flight commit) must survive.
        let pinned = s.user_commit_lock("pinned");
        for i in 0..(3 * USER_LOCKS_GC_THRESHOLD) {
            let lock = s.user_commit_lock(&format!("u{i}"));
            drop(lock); // commit finished: the map holds the only reference
        }
        assert!(
            s.user_locks_len() <= USER_LOCKS_GC_THRESHOLD,
            "user_locks grew past the GC threshold: {} entries",
            s.user_locks_len()
        );
        assert!(
            Arc::ptr_eq(&pinned, &s.user_commit_lock("pinned")),
            "an entry with a live reference must never be collected"
        );
    }

    #[test]
    fn commit_releases_user_lock_reference() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[])
            .unwrap();
        let locks = s.shard_for_user("u1").user_locks.lock();
        let entry = locks.get("u1").expect("entry exists after a commit");
        assert_eq!(
            Arc::strong_count(entry),
            1,
            "a finished commit must not pin its lock entry (GC relies on this)"
        );
    }

    #[test]
    fn raw_answer_refused() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        let mut r = Response::new("u1", SurveyId(1));
        r.answer(QuestionId(0), Answer::Rating(4.0)); // raw!
        r.answer(QuestionId(1), Answer::Obfuscated(3.0));
        let err = s.submit("u1", PrivacyLevel::None, r, &[]).unwrap_err();
        assert_eq!(err, SubmitError::RawAnswer { question: 0 });
        assert_eq!(s.submission_count(SurveyId(1)), 0);
    }

    #[test]
    fn user_mismatch_refused() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        let err = s
            .submit("mallory", PrivacyLevel::Low, obfuscated_response("alice", 4.0), &[])
            .unwrap_err();
        assert_eq!(err, SubmitError::UserMismatch);
    }

    #[test]
    fn unknown_survey_refused() {
        let s = AppState::new();
        let mut r = Response::new("u1", SurveyId(42));
        r.answer(QuestionId(0), Answer::Obfuscated(1.0));
        assert_eq!(
            s.submit("u1", PrivacyLevel::Low, r, &[]).unwrap_err(),
            SubmitError::UnknownSurvey
        );
    }

    #[test]
    fn results_aggregate_by_bin() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        for (i, level) in [
            PrivacyLevel::None,
            PrivacyLevel::Low,
            PrivacyLevel::Low,
            PrivacyLevel::High,
        ]
        .iter()
        .enumerate()
        {
            let user = format!("u{i}");
            s.submit(&user, *level, obfuscated_response(&user, 4.0 + i as f64 * 0.1), &[])
                .unwrap();
        }
        let est = Estimator::default();
        let pooled = s.results(SurveyId(1), QuestionId(0), &est).unwrap();
        assert_eq!(pooled.n_total, 4);
        assert_eq!(pooled.bins.len(), 3); // None, Low, High non-empty
        assert!(s.results(SurveyId(1), QuestionId(7), &est).is_none());
    }

    #[test]
    fn degenerate_reads_return_none_instead_of_panicking() {
        // Edge cases on the serving read path: no survey, no responses,
        // and a bin whose accumulated sum is non-finite (two f64::MAX
        // uploads overflow to +∞). All must degrade to None — a panic
        // here would let one hostile payload kill a worker thread.
        let s = AppState::new();
        let est = Estimator::default();
        assert!(s.results(SurveyId(1), QuestionId(0), &est).is_none());
        assert!(s.streaming_results(SurveyId(1), QuestionId(0), &est).is_none());

        s.add_survey(survey()).unwrap();
        assert!(s.results(SurveyId(1), QuestionId(0), &est).is_none());
        assert!(s.streaming_results(SurveyId(1), QuestionId(0), &est).is_none());
        assert_eq!(s.survey_submission_total(SurveyId(1)), 0);

        for (i, v) in [f64::MAX, f64::MAX].iter().enumerate() {
            let user = format!("hostile{i}");
            s.submit(&user, PrivacyLevel::Medium, obfuscated_response(&user, *v), &[])
                .unwrap();
        }
        assert!(s.results(SurveyId(1), QuestionId(0), &est).is_none(), "overflowed sum");
        assert!(s.streaming_results(SurveyId(1), QuestionId(0), &est).is_none());
        assert!(s.streaming_truth(SurveyId(1), QuestionId(0), &est).is_none());

        // A healthy submission on top: the finite bin pools, the poisoned
        // bin stays excluded on both read paths.
        s.submit("sane", PrivacyLevel::None, obfuscated_response("sane", 4.0), &[])
            .unwrap();
        let scan = s.results(SurveyId(1), QuestionId(0), &est).unwrap();
        let stream = s.streaming_results(SurveyId(1), QuestionId(0), &est).unwrap();
        assert_eq!(scan, stream);
        assert_eq!(scan.bins.len(), 1);
        assert_eq!(scan.n_total, 1);
    }

    #[test]
    fn budget_cap_blocks_exhausted_users() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        // One medium-privacy answer costs ε ≈ 24; cap just above one
        // release so the second is refused.
        let per_release = loki_core::privacy_level::PrivacyLevel::Medium
            .privacy_loss(4.0)
            .epsilon
            .value();
        s.set_epsilon_budget(Some(per_release * 1.5)).unwrap();

        s.submit(
            "u1",
            PrivacyLevel::Medium,
            obfuscated_response("u1", 4.0),
            &[gaussian_release("t0"), gaussian_release("t1")],
        )
        .unwrap();

        // Second survey for the same user.
        let mut b2 = SurveyBuilder::new(SurveyId(2), "second");
        b2.question("rate", QuestionKind::likert5(), false);
        s.add_survey(b2.build().unwrap()).unwrap();
        let mut r = Response::new("u1", SurveyId(2));
        r.answer(QuestionId(0), Answer::Obfuscated(3.0));
        let err = s
            .submit("u1", PrivacyLevel::Medium, r, &[gaussian_release("t2")])
            .unwrap_err();
        assert!(matches!(err, SubmitError::BudgetExhausted { .. }), "{err:?}");
        assert_eq!(s.submission_count(SurveyId(2)), 0);

        // A fresh user is unaffected.
        let mut r = Response::new("u2", SurveyId(2));
        r.answer(QuestionId(0), Answer::Obfuscated(3.0));
        s.submit("u2", PrivacyLevel::Medium, r, &[gaussian_release("t3")])
            .unwrap();
    }

    #[test]
    fn budget_cap_blocks_unbounded_users() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.set_epsilon_budget(Some(100.0)).unwrap();
        // A raw release makes the user's loss unbounded.
        s.accountant
            .record("u1", "earlier", loki_dp::accountant::ReleaseKind::Raw);
        let err = s
            .submit("u1", PrivacyLevel::None, obfuscated_response("u1", 4.0), &[])
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::BudgetExhausted { current: None, .. }
        ));
    }

    #[test]
    fn budget_check_and_charge_are_atomic_per_user() {
        // Regression for the check/charge TOCTOU: a user sitting just
        // under the cap fires 8 concurrent submits (distinct surveys, so
        // Duplicate can't mask the race). Exactly one may pass — under
        // the old unlocked check, several could read the stale loss and
        // all slip under the cap.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let s = Arc::new(AppState::new());
        let threads = 8u64;
        for id in 1..=threads {
            s.add_survey(one_question_survey(id)).unwrap();
        }
        // Probe the accountant for the composed loss after one and two
        // releases, then pin the cap strictly between them: the user sits
        // at cap − ε₁, one more release fits, two do not.
        let probe = AppState::new();
        probe.accountant.record("p", "a", gaussian_release("a").1);
        let one = probe.user_loss("p").epsilon.value();
        probe.accountant.record("p", "b", gaussian_release("b").1);
        let two = probe.user_loss("p").epsilon.value();
        assert!(two > one);
        s.accountant.record("u1", "warmup", gaussian_release("warmup").1);
        s.set_epsilon_budget(Some((one + two) / 2.0)).unwrap();

        let ok = Arc::new(AtomicUsize::new(0));
        let rejected = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(threads as usize));
        let handles: Vec<_> = (1..=threads)
            .map(|id| {
                let s = Arc::clone(&s);
                let ok = Arc::clone(&ok);
                let rejected = Arc::clone(&rejected);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut r = Response::new("u1", SurveyId(id));
                    r.answer(QuestionId(0), Answer::Obfuscated(3.0));
                    let release = gaussian_release(&format!("survey-{id}/q0"));
                    barrier.wait();
                    match s.submit("u1", PrivacyLevel::Low, r, &[release]) {
                        Ok(_) => ok.fetch_add(1, Ordering::SeqCst),
                        Err(SubmitError::BudgetExhausted { .. }) => {
                            rejected.fetch_add(1, Ordering::SeqCst)
                        }
                        Err(e) => panic!("unexpected error: {e:?}"),
                    };
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ok.load(Ordering::SeqCst), 1, "exactly one submit under cap");
        assert_eq!(rejected.load(Ordering::SeqCst), (threads - 1) as usize);
        // The ledger holds warmup + exactly one charged release.
        assert_eq!(s.accountant.releases_of("u1"), 2);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn journal_failure_surfaces_and_applies_nothing() {
        // /dev/full fails every write with ENOSPC: the submit must come
        // back as Durability and leave no trace in memory or the ledger.
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.attach_journal(crate::wal::Wal::open(std::path::Path::new("/dev/full")).unwrap());
        let err = s
            .submit(
                "u1",
                PrivacyLevel::Medium,
                obfuscated_response("u1", 4.0),
                &[gaussian_release("t0")],
            )
            .unwrap_err();
        assert!(matches!(err, SubmitError::Durability(_)), "{err:?}");
        assert_eq!(s.submission_count(SurveyId(1)), 0);
        assert_eq!(s.accountant.releases_of("u1"), 0);
        assert!(!s.has_submitted(SurveyId(1), "u1"));
        // Publishing is refused the same way (journal now poisoned).
        let err = s.add_survey(one_question_survey(2)).unwrap_err();
        assert!(matches!(err, SubmitError::Durability(_)));
        assert_eq!(s.surveys().len(), 1);
    }

    #[test]
    fn non_positive_budget_rejected() {
        let s = AppState::new();
        assert_eq!(s.set_epsilon_budget(Some(0.0)), Err(InvalidBudget(0.0)));
        assert_eq!(s.set_epsilon_budget(Some(-1.0)), Err(InvalidBudget(-1.0)));
        assert!(s.epsilon_budget().is_none(), "rejected cap left no residue");
        assert!(
            InvalidBudget(0.0).to_string().contains("must be positive"),
            "error explains the constraint"
        );
        s.set_epsilon_budget(Some(1.0)).unwrap();
        s.set_epsilon_budget(None).unwrap();
    }

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        let s = AppState::new();
        assert_eq!(s.num_shards(), DEFAULT_SHARDS);
        for id in 0..200u64 {
            let shard = s.shard_of_survey(SurveyId(id));
            assert!(shard < s.num_shards());
            assert_eq!(shard, survey_shard_of(SurveyId(id), DEFAULT_SHARDS));
        }
        for user in ["u1", "alice", "t7-u63", ""] {
            let shard = s.shard_of_user(user);
            assert!(shard < s.num_shards());
            assert_eq!(shard, user_shard_of(user, DEFAULT_SHARDS));
        }
        // A single-shard store routes everything to shard 0.
        let single = AppState::with_shards(1);
        assert_eq!(single.shard_of_survey(SurveyId(99)), 0);
        assert_eq!(single.shard_of_user("anyone"), 0);
        // Zero is clamped, not a panic.
        assert_eq!(AppState::with_shards(0).num_shards(), 1);
    }

    #[test]
    fn consecutive_survey_ids_spread_across_shards() {
        // The whole point of the splitmix64 mix: ids 1..=8 must not all
        // land on one shard (8 sequential ids hitting 1 of 8 shards by
        // chance is ~8^-7, so a collapse here means a routing bug).
        let s = AppState::new();
        let mut seen = HashSet::new();
        for id in 1..=8u64 {
            seen.insert(s.shard_of_survey(SurveyId(id)));
        }
        assert!(seen.len() > 2, "ids 1..=8 clustered on {seen:?}");
    }

    #[test]
    fn facade_reads_merge_shards_in_id_order() {
        let s = AppState::new();
        // Insert in descending id order so a "merge without sort" bug
        // can't accidentally pass.
        for id in (1..=20u64).rev() {
            s.add_survey(one_question_survey(id)).unwrap();
        }
        let listed: Vec<u64> = s.surveys().iter().map(|sv| sv.id.0).collect();
        assert_eq!(listed, (1..=20).collect::<Vec<u64>>());
    }

    #[test]
    fn surveys_page_walks_the_full_set() {
        let s = AppState::new();
        for id in 1..=13u64 {
            s.add_survey(one_question_survey(id)).unwrap();
        }
        let mut walked = Vec::new();
        let mut after = None;
        loop {
            let (page, has_more) = s.surveys_page(after, 5);
            assert!(page.len() <= 5);
            walked.extend(page.iter().map(|sv| sv.id.0));
            if !has_more {
                break;
            }
            after = page.last().map(|sv| sv.id);
        }
        assert_eq!(walked, (1..=13).collect::<Vec<u64>>());
        // Past the end: empty page, nothing more.
        assert_eq!(s.surveys_page(Some(SurveyId(13)), 5), (Vec::new(), false));
        // Zero limit is legal and reports whether anything remains.
        let (page, has_more) = s.surveys_page(None, 0);
        assert!(page.is_empty());
        assert!(has_more);
    }

    #[test]
    fn shard_stats_report_occupancy_and_lanes() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[
            gaussian_release("t0"),
        ])
        .unwrap();
        let stats = s.shard_stats();
        assert_eq!(stats.len(), DEFAULT_SHARDS);
        assert_eq!(stats.iter().map(|st| st.surveys).sum::<usize>(), 1);
        assert_eq!(stats.iter().map(|st| st.submissions).sum::<usize>(), 1);
        assert_eq!(stats.iter().map(|st| st.ledger_users).sum::<usize>(), 1);
        let survey_shard = s.shard_of_survey(SurveyId(1));
        assert_eq!(stats[survey_shard].surveys, 1);
        assert_eq!(stats[survey_shard].submissions, 1);
        assert_eq!(stats[s.shard_of_user("u1")].ledger_users, 1);
        assert!(stats.iter().all(|st| !st.wal_attached && !st.wal_shared));

        // Single-file journal: every lane attached, all shared.
        let path = std::env::temp_dir().join(format!("shard-stats-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        s.attach_journal(crate::wal::Wal::open(&path).unwrap());
        let stats = s.shard_stats();
        assert!(stats.iter().all(|st| st.wal_attached && st.wal_shared));
        assert!(stats.iter().all(|st| st.wal_poisoned.is_none()));
        s.detach_journal();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn single_shard_store_behaves_identically() {
        // The fuzz test in tests/sharding.rs does the deep comparison;
        // this pins the cheap invariant that a 1-shard store passes the
        // same submit flow end to end.
        let s = AppState::with_shards(1);
        s.add_survey(survey()).unwrap();
        s.submit("u1", PrivacyLevel::Medium, obfuscated_response("u1", 4.0), &[
            gaussian_release("t0"),
        ])
        .unwrap();
        assert_eq!(s.submission_count(SurveyId(1)), 1);
        assert_eq!(s.accountant.releases_of("u1"), 1);
        assert_eq!(s.user_locks_len(), 1);
        assert_eq!(s.shard_stats().len(), 1);
    }

    #[test]
    fn ledger_reflects_releases() {
        let s = AppState::new();
        s.add_survey(survey()).unwrap();
        s.submit(
            "u1",
            PrivacyLevel::Medium,
            obfuscated_response("u1", 3.0),
            &[gaussian_release("t0"), gaussian_release("t1")],
        )
        .unwrap();
        let loss = s.user_loss("u1");
        assert!(loss.is_finite());
        assert!(loss.epsilon.value() > 0.0);
        assert_eq!(s.user_loss("ghost"), loki_dp::params::PrivacyLoss::ZERO);
    }
}
