//! In-memory application state behind `parking_lot` locks.

use loki_core::estimator::Estimator;
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::{Accountant, ReleaseKind};
use loki_dp::params::Delta;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyId};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A stored submission: who, at what level, and the uploaded response.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StoredSubmission {
    /// Submitting user.
    pub user: String,
    /// Chosen privacy level.
    pub level: PrivacyLevel,
    /// The uploaded (obfuscated) response.
    pub response: Response,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// No such survey.
    UnknownSurvey,
    /// The response failed survey validation.
    Invalid(String),
    /// A raw (non-obfuscated) answer was found on an obfuscatable
    /// question — the at-source contract forbids the server from ever
    /// storing it.
    RawAnswer {
        /// The offending question.
        question: u32,
    },
    /// The response's worker field does not match the submitting user.
    UserMismatch,
    /// This user already submitted to this survey.
    Duplicate,
    /// The user's cumulative privacy loss is at or over the server's cap.
    BudgetExhausted {
        /// Current cumulative ε (`None` = unbounded).
        current: Option<f64>,
        /// The configured cap.
        budget: f64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownSurvey => write!(f, "unknown survey"),
            SubmitError::Invalid(e) => write!(f, "invalid response: {e}"),
            SubmitError::RawAnswer { question } => write!(
                f,
                "question q{question}: raw answer refused — obfuscate at source"
            ),
            SubmitError::UserMismatch => write!(f, "response worker does not match user"),
            SubmitError::Duplicate => write!(f, "user already submitted to this survey"),
            SubmitError::BudgetExhausted { current, budget } => match current {
                Some(c) => write!(f, "privacy budget exhausted: ε = {c:.3} of {budget:.3}"),
                None => write!(f, "privacy budget exhausted: unbounded loss recorded"),
            },
        }
    }
}

/// The server's whole mutable state.
#[derive(Debug, Default)]
pub struct AppState {
    surveys: RwLock<BTreeMap<SurveyId, Survey>>,
    submissions: RwLock<BTreeMap<SurveyId, Vec<StoredSubmission>>>,
    /// Requester tokens allowed to publish surveys. Empty = open server
    /// (useful for tests and local demos).
    requester_tokens: RwLock<std::collections::HashSet<String>>,
    /// Optional cap on any user's cumulative ε; submissions from users at
    /// or over the cap are refused (the enforcement arm of §3.1's
    /// "tracked and balanced" loss).
    epsilon_budget: RwLock<Option<f64>>,
    /// Optional write-ahead journal; accepted writes are appended after
    /// they commit to memory.
    journal: parking_lot::Mutex<Option<crate::wal::Wal>>,
    /// Server-side mirror of cumulative privacy loss per user.
    pub accountant: Accountant,
    /// Lazily enabled metrics. Until [`AppState::enable_metrics`] is
    /// called every instrumentation point is a cheap `None` check, so
    /// un-instrumented state (e.g. bench baselines) pays ~nothing.
    metrics: std::sync::OnceLock<std::sync::Arc<crate::metrics::ServerMetrics>>,
}

impl AppState {
    /// Creates empty state.
    pub fn new() -> AppState {
        AppState::default()
    }

    /// Registers a requester token; once any token exists, publishing
    /// requires one.
    pub fn add_requester_token(&self, token: impl Into<String>) {
        self.requester_tokens.write().insert(token.into());
    }

    /// Whether a `POST /surveys` bearing `token` (possibly absent) is
    /// allowed to publish.
    pub fn may_publish(&self, token: Option<&str>) -> bool {
        let tokens = self.requester_tokens.read();
        tokens.is_empty() || token.is_some_and(|t| tokens.contains(t))
    }

    /// Attaches a write-ahead journal: every *subsequently* accepted
    /// survey publication and submission is appended to it. Use
    /// [`crate::wal::replay`] at startup to restore, then attach the same
    /// journal for new writes.
    pub fn attach_journal(&self, wal: crate::wal::Wal) {
        *self.journal.lock() = Some(wal);
    }

    /// Enables metrics (idempotent) and returns the shared instance. The
    /// store's instrumentation points are no-ops until this is called.
    pub fn enable_metrics(&self) -> std::sync::Arc<crate::metrics::ServerMetrics> {
        std::sync::Arc::clone(
            self.metrics
                .get_or_init(|| std::sync::Arc::new(crate::metrics::ServerMetrics::new())),
        )
    }

    /// The metrics instance, if enabled.
    pub fn metrics(&self) -> Option<&std::sync::Arc<crate::metrics::ServerMetrics>> {
        self.metrics.get()
    }

    /// Caps every user's cumulative ε; `None` removes the cap.
    pub fn set_epsilon_budget(&self, budget: Option<f64>) {
        if let Some(b) = budget {
            assert!(b > 0.0, "epsilon budget must be positive, got {b}");
        }
        *self.epsilon_budget.write() = budget;
    }

    /// The configured cumulative-ε cap, if any.
    pub fn epsilon_budget(&self) -> Option<f64> {
        *self.epsilon_budget.read()
    }

    /// Publishes a survey. Returns `false` if the id already exists.
    pub fn add_survey(&self, survey: Survey) -> bool {
        {
            let mut surveys = self.surveys.write();
            if surveys.contains_key(&survey.id) {
                return false;
            }
            surveys.insert(survey.id, survey.clone());
        }
        if let Some(wal) = self.journal.lock().as_mut() {
            // Journal failures are logged by the caller's error channel in
            // a real deployment; here the in-memory commit stands.
            if let Ok(timing) = wal.append_survey(&survey) {
                if let Some(m) = self.metrics.get() {
                    m.observe_wal_append(&timing);
                }
            }
        }
        true
    }

    /// A survey by id.
    pub fn survey(&self, id: SurveyId) -> Option<Survey> {
        self.surveys.read().get(&id).cloned()
    }

    /// All surveys, id-ordered.
    pub fn surveys(&self) -> Vec<Survey> {
        self.surveys.read().values().cloned().collect()
    }

    /// Number of stored submissions for a survey.
    pub fn submission_count(&self, id: SurveyId) -> usize {
        self.submissions.read().get(&id).map_or(0, Vec::len)
    }

    /// All submissions for a survey.
    pub fn submissions(&self, id: SurveyId) -> Vec<StoredSubmission> {
        self.submissions.read().get(&id).cloned().unwrap_or_default()
    }

    /// Validates and stores a submission, recording the declared ledger
    /// entries. Returns the new submission count for the survey.
    pub fn submit(
        &self,
        user: &str,
        level: PrivacyLevel,
        response: Response,
        releases: &[(String, ReleaseKind)],
    ) -> Result<usize, SubmitError> {
        if response.worker != user {
            return Err(SubmitError::UserMismatch);
        }
        let survey = self
            .survey(response.survey)
            .ok_or(SubmitError::UnknownSurvey)?;
        response
            .validate(&survey)
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;

        // At-source enforcement: obfuscatable questions must arrive as
        // Obfuscated (numeric kinds) or Choice (already RR-perturbed) —
        // never as raw Rating/Numeric values.
        for q in &survey.questions {
            let Some(answer) = response.get(q.id) else {
                // validate() guarantees completeness, but a panic here
                // would let one inconsistent payload kill a worker thread.
                return Err(SubmitError::Invalid(format!(
                    "missing answer for question {}",
                    q.id.0
                )));
            };
            let raw = matches!(
                (&q.kind, answer),
                (QuestionKind::Rating { .. }, Answer::Rating(_))
                    | (QuestionKind::Numeric { .. }, Answer::Numeric(_))
            );
            if raw {
                return Err(SubmitError::RawAnswer { question: q.id.0 });
            }
        }

        if let Some(budget) = self.epsilon_budget() {
            let loss = self.user_loss(user);
            let over = if loss.is_finite() {
                loss.epsilon.value() >= budget
            } else {
                true
            };
            if over {
                if let Some(m) = self.metrics.get() {
                    m.on_budget_rejection();
                }
                return Err(SubmitError::BudgetExhausted {
                    current: loss.is_finite().then(|| loss.epsilon.value()),
                    budget,
                });
            }
        }

        let lock_started = std::time::Instant::now();
        let stored = {
            let mut submissions = self.submissions.write();
            let entry = submissions.entry(response.survey).or_default();
            if entry.iter().any(|s| s.user == user) {
                return Err(SubmitError::Duplicate);
            }
            for (tag, kind) in releases {
                self.accountant.record(user, tag.clone(), *kind);
            }
            entry.push(StoredSubmission {
                user: user.to_string(),
                level,
                response: response.clone(),
            });
            entry.len()
        };
        if let Some(m) = self.metrics.get() {
            m.observe_store_lock(lock_started.elapsed());
            m.on_submission_stored(level);
        }
        if let Some(wal) = self.journal.lock().as_mut() {
            if let Ok(timing) = wal.append_submission(user, level, &response, releases) {
                if let Some(m) = self.metrics.get() {
                    m.observe_wal_append(&timing);
                }
            }
        }
        Ok(stored)
    }

    /// Per-bin samples of one question's numeric uploads.
    pub fn bin_samples(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
    ) -> BTreeMap<PrivacyLevel, Vec<f64>> {
        let mut bins: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
        if let Some(subs) = self.submissions.read().get(&survey) {
            for sub in subs {
                if let Some(v) = sub.response.get(question).and_then(Answer::as_f64) {
                    bins.entry(sub.level).or_default().push(v);
                }
            }
        }
        bins
    }

    /// Aggregated results of one question, `None` when there are no
    /// numeric uploads for it.
    pub fn results(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
        estimator: &Estimator,
    ) -> Option<loki_core::estimator::PooledEstimate> {
        let bins = self.bin_samples(survey, question);
        if bins.values().all(Vec::is_empty) {
            return None;
        }
        Some(estimator.pooled(&bins))
    }

    /// Cumulative loss of a user at the default δ.
    pub fn user_loss(&self, user: &str) -> loki_dp::params::PrivacyLoss {
        self.accountant
            .loss_of(user, Delta::new(loki_dp::DEFAULT_DELTA))
    }

    /// Per-bin choice counts for a multiple-choice question: for each
    /// privacy level, a histogram over the option indices.
    pub fn choice_histograms(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
        options: usize,
    ) -> BTreeMap<PrivacyLevel, Vec<u64>> {
        let mut bins: BTreeMap<PrivacyLevel, Vec<u64>> = BTreeMap::new();
        if let Some(subs) = self.submissions.read().get(&survey) {
            for sub in subs {
                if let Some(Answer::Choice(c)) = sub.response.get(question) {
                    if *c < options {
                        let hist = bins.entry(sub.level).or_insert_with(|| vec![0; options]);
                        if let Some(slot) = hist.get_mut(*c) {
                            *slot += 1;
                        }
                    }
                }
            }
        }
        bins
    }

    /// Estimated true per-option frequencies for a multiple-choice
    /// question, inverting each bin's randomized response and pooling
    /// bins by response count. Returns `None` when there are no choice
    /// uploads for the question.
    pub fn choice_frequencies(
        &self,
        survey: SurveyId,
        question: loki_survey::QuestionId,
    ) -> Option<ChoiceEstimate> {
        let survey_def = self.survey(survey)?;
        let q = survey_def.question(question)?;
        let loki_survey::question::QuestionKind::MultipleChoice { options } = &q.kind else {
            return None;
        };
        let k = options.len();
        let histograms = self.choice_histograms(survey, question, k);
        let mut pooled = vec![0.0f64; k];
        let mut n_total = 0u64;
        let mut bins = Vec::new();
        for (level, hist) in &histograms {
            let n: u64 = hist.iter().sum();
            if n == 0 {
                continue;
            }
            let estimate: Vec<f64> = match level.randomized_response_epsilon() {
                None => hist.iter().map(|&c| c as f64).collect(),
                Some(eps) => {
                    let rr = loki_dp::mechanisms::randomized_response::RandomizedResponse::new(
                        k,
                        loki_dp::params::Epsilon::new(eps),
                    );
                    rr.estimate_frequencies(hist)
                }
            };
            for (p, e) in pooled.iter_mut().zip(&estimate) {
                *p += e;
            }
            n_total += n;
            bins.push((*level, n as usize));
        }
        if n_total == 0 {
            return None;
        }
        // Normalize the pooled counts to frequencies, clipping the RR
        // inversion's possible small negatives.
        let clipped: Vec<f64> = pooled.iter().map(|&p| p.max(0.0)).collect();
        let total: f64 = clipped.iter().sum();
        let frequencies = if total > 0.0 {
            clipped.iter().map(|&p| p / total).collect()
        } else {
            vec![1.0 / k as f64; k]
        };
        Some(ChoiceEstimate {
            options: options.clone(),
            frequencies,
            n_total: n_total as usize,
            bins,
        })
    }
}

/// Estimated option frequencies for a multiple-choice question.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChoiceEstimate {
    /// Option labels, in order.
    pub options: Vec<String>,
    /// Estimated true frequency of each option (sums to 1).
    pub frequencies: Vec<f64>,
    /// Total responses used.
    pub n_total: usize,
    /// (level, responses) per contributing bin.
    pub bins: Vec<(PrivacyLevel, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::QuestionKind;
    use loki_survey::survey::SurveyBuilder;
    use loki_survey::QuestionId;

    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "lecturers");
        b.question("rate L1", QuestionKind::likert5(), false);
        b.question("rate L2", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn obfuscated_response(user: &str, v: f64) -> Response {
        let mut r = Response::new(user, SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(v));
        r.answer(QuestionId(1), Answer::Obfuscated(v - 1.0));
        r
    }

    fn gaussian_release(tag: &str) -> (String, ReleaseKind) {
        (
            tag.to_string(),
            ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0,
            },
        )
    }

    #[test]
    fn add_and_list_surveys() {
        let s = AppState::new();
        assert!(s.add_survey(survey()));
        assert!(!s.add_survey(survey()), "duplicate id must be rejected");
        assert_eq!(s.surveys().len(), 1);
        assert!(s.survey(SurveyId(1)).is_some());
        assert!(s.survey(SurveyId(9)).is_none());
    }

    #[test]
    fn submit_and_count() {
        let s = AppState::new();
        s.add_survey(survey());
        let n = s
            .submit(
                "u1",
                PrivacyLevel::Medium,
                obfuscated_response("u1", 4.2),
                &[gaussian_release("survey-1/q0"), gaussian_release("survey-1/q1")],
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.submission_count(SurveyId(1)), 1);
        assert_eq!(s.accountant.releases_of("u1"), 2);
    }

    #[test]
    fn duplicate_submission_rejected() {
        let s = AppState::new();
        s.add_survey(survey());
        s.submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[])
            .unwrap();
        let err = s
            .submit("u1", PrivacyLevel::Low, obfuscated_response("u1", 4.0), &[])
            .unwrap_err();
        assert_eq!(err, SubmitError::Duplicate);
    }

    #[test]
    fn raw_answer_refused() {
        let s = AppState::new();
        s.add_survey(survey());
        let mut r = Response::new("u1", SurveyId(1));
        r.answer(QuestionId(0), Answer::Rating(4.0)); // raw!
        r.answer(QuestionId(1), Answer::Obfuscated(3.0));
        let err = s
            .submit("u1", PrivacyLevel::None, r, &[])
            .unwrap_err();
        assert_eq!(err, SubmitError::RawAnswer { question: 0 });
        assert_eq!(s.submission_count(SurveyId(1)), 0);
    }

    #[test]
    fn user_mismatch_refused() {
        let s = AppState::new();
        s.add_survey(survey());
        let err = s
            .submit("mallory", PrivacyLevel::Low, obfuscated_response("alice", 4.0), &[])
            .unwrap_err();
        assert_eq!(err, SubmitError::UserMismatch);
    }

    #[test]
    fn unknown_survey_refused() {
        let s = AppState::new();
        let mut r = Response::new("u1", SurveyId(42));
        r.answer(QuestionId(0), Answer::Obfuscated(1.0));
        assert_eq!(
            s.submit("u1", PrivacyLevel::Low, r, &[]).unwrap_err(),
            SubmitError::UnknownSurvey
        );
    }

    #[test]
    fn results_aggregate_by_bin() {
        let s = AppState::new();
        s.add_survey(survey());
        for (i, level) in [
            PrivacyLevel::None,
            PrivacyLevel::Low,
            PrivacyLevel::Low,
            PrivacyLevel::High,
        ]
        .iter()
        .enumerate()
        {
            let user = format!("u{i}");
            s.submit(&user, *level, obfuscated_response(&user, 4.0 + i as f64 * 0.1), &[])
                .unwrap();
        }
        let est = Estimator::default();
        let pooled = s.results(SurveyId(1), QuestionId(0), &est).unwrap();
        assert_eq!(pooled.n_total, 4);
        assert_eq!(pooled.bins.len(), 3); // None, Low, High non-empty
        assert!(s.results(SurveyId(1), QuestionId(7), &est).is_none());
    }

    #[test]
    fn budget_cap_blocks_exhausted_users() {
        let s = AppState::new();
        s.add_survey(survey());
        // One medium-privacy answer costs ε ≈ 24; cap just above one
        // release so the second is refused.
        let per_release = loki_core::privacy_level::PrivacyLevel::Medium
            .privacy_loss(4.0)
            .epsilon
            .value();
        s.set_epsilon_budget(Some(per_release * 1.5));

        s.submit(
            "u1",
            PrivacyLevel::Medium,
            obfuscated_response("u1", 4.0),
            &[gaussian_release("t0"), gaussian_release("t1")],
        )
        .unwrap();

        // Second survey for the same user.
        let mut b2 = SurveyBuilder::new(SurveyId(2), "second");
        b2.question("rate", QuestionKind::likert5(), false);
        s.add_survey(b2.build().unwrap());
        let mut r = Response::new("u1", SurveyId(2));
        r.answer(QuestionId(0), Answer::Obfuscated(3.0));
        let err = s
            .submit("u1", PrivacyLevel::Medium, r, &[gaussian_release("t2")])
            .unwrap_err();
        assert!(matches!(err, SubmitError::BudgetExhausted { .. }), "{err:?}");
        assert_eq!(s.submission_count(SurveyId(2)), 0);

        // A fresh user is unaffected.
        let mut r = Response::new("u2", SurveyId(2));
        r.answer(QuestionId(0), Answer::Obfuscated(3.0));
        s.submit("u2", PrivacyLevel::Medium, r, &[gaussian_release("t3")])
            .unwrap();
    }

    #[test]
    fn budget_cap_blocks_unbounded_users() {
        let s = AppState::new();
        s.add_survey(survey());
        s.set_epsilon_budget(Some(100.0));
        // A raw release makes the user's loss unbounded.
        s.accountant
            .record("u1", "earlier", loki_dp::accountant::ReleaseKind::Raw);
        let err = s
            .submit("u1", PrivacyLevel::None, obfuscated_response("u1", 4.0), &[])
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::BudgetExhausted { current: None, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn non_positive_budget_rejected() {
        let s = AppState::new();
        s.set_epsilon_budget(Some(0.0));
    }

    #[test]
    fn ledger_reflects_releases() {
        let s = AppState::new();
        s.add_survey(survey());
        s.submit(
            "u1",
            PrivacyLevel::Medium,
            obfuscated_response("u1", 3.0),
            &[gaussian_release("t0"), gaussian_release("t1")],
        )
        .unwrap();
        let loss = s.user_loss("u1");
        assert!(loss.is_finite());
        assert!(loss.epsilon.value() > 0.0);
        assert_eq!(s.user_loss("ghost"), loki_dp::params::PrivacyLoss::ZERO);
    }
}
