//! # loki-server — the Loki REST backend
//!
//! The paper's prototype backend was "a back-end database/server built in
//! Django"; this crate is its Rust equivalent on top of [`loki_net`]:
//!
//! | Route | Purpose |
//! |---|---|
//! | `GET /health` | liveness |
//! | `GET /surveys` | survey list (Fig. 1(a)'s screen) |
//! | `GET /surveys/:id` | full survey definition |
//! | `POST /surveys` | publish a survey |
//! | `POST /surveys/:id/responses` | upload an **obfuscated** response |
//! | `GET /surveys/:id/results/:question` | per-bin + pooled estimates |
//! | `GET /ledger/:user` | cumulative privacy loss of a user |
//!
//! The at-source property is enforced at ingest: submissions containing
//! raw (non-obfuscated) answers to obfuscatable questions are rejected
//! with `422` — the server refuses to even store them. The server's
//! ledger mirrors the client's declared releases so users can query their
//! cumulative loss (ε tracking, §3.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod app;
pub mod persist;
pub mod store;
pub mod wal;

pub use api::{LedgerInfo, QuestionResults, SubmitRequest, SurveySummary};
pub use app::{build_router, serve};
pub use store::AppState;
