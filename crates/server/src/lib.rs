//! # loki-server — the Loki REST backend
//!
//! The paper's prototype backend was "a back-end database/server built in
//! Django"; this crate is its Rust equivalent on top of [`loki_net`]:
//!
//! | Route | Purpose |
//! |---|---|
//! | `GET /v1/health` | liveness |
//! | `GET /v1/surveys` | survey list (Fig. 1(a)'s screen); `?limit=`/`?after=` cursor pagination |
//! | `GET /v1/surveys/:id` | full survey definition |
//! | `POST /v1/surveys` | publish a survey |
//! | `POST /v1/surveys/:id/responses` | upload an **obfuscated** response |
//! | `GET /v1/surveys/:id/results/:question` | per-bin + pooled estimates |
//! | `GET /v1/surveys/:id/estimate/:question` | streaming O(shards) estimate; `?mode=ldp-truth` for truth inference |
//! | `GET /v1/surveys/:id/choices/:question` | RR-inverted choice frequencies |
//! | `GET /v1/privacy` | live k-anonymity distribution, at-risk ratio, linkage entropy ([`agg`]) |
//! | `GET /v1/ledger/:user` | cumulative privacy loss of a user |
//! | `GET /v1/stats` | platform totals + ε-distribution summary |
//! | `GET /v1/metrics` | Prometheus text exposition ([`metrics`]) |
//! | `GET /v1/accesslog` | recent sanitized access records |
//! | `GET /v1/healthz` | build info, uptime, journal-poisoned status |
//! | `GET /v1/traces` | retained request traces (summaries) |
//! | `GET /v1/traces/:id` | one trace's full span tree |
//! | `GET /v1/audit` | recent ε-audit events (opaque subject index) |
//! | `GET /v1/timeseries` | downsampled metric history ([`metrics`] tsdb) |
//! | `GET /v1/slo` | current SLO statuses + burn rates |
//! | `GET /v1/alerts` | alert states (any firing ⇒ healthz `degraded`) |
//! | `GET /v1/alerts/history` | bounded ring of alert transitions |
//! | `GET /v1/admin/shards` | per-shard occupancy, WAL lane health, `?survey_id=` routing preview |
//!
//! Every route is also reachable at its unversioned legacy path
//! (`/surveys` ≡ `/v1/surveys`); both share one handler, so the alias
//! can never drift. Errors — handler, router, and parser level alike —
//! render as the unified envelope `{"error": {"code", "message"}}`
//! ([`error::ApiError`]), and every response (success or failure)
//! carries the request's trace id in the `x-loki-trace-id` header —
//! a retained id resolves at `GET /v1/traces/:id` to the span tree
//! crossing the group-commit boundary (enqueue → batch → fsync →
//! apply → ack).
//!
//! The at-source property is enforced at ingest: submissions containing
//! raw (non-obfuscated) answers to obfuscatable questions are rejected
//! with `422` — the server refuses to even store them. The server's
//! ledger mirrors the client's declared releases so users can query their
//! cumulative loss (ε tracking, §3.1).
//!
//! Writes are **WAL-first**: with a journal attached, `add_survey` and
//! `submit` block until a dedicated group-committer thread has made the
//! record fsync-durable, and only then apply it to memory and ack — so a
//! crash can lose un-acked work but never an acked write. Concurrent
//! submitters share one fsync per batch ([`wal::GroupCommitter`]); a
//! durability failure surfaces as a typed 503, never a silent drop
//! ([`store`]'s durability contract).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod api;
pub mod app;
pub mod error;
pub mod metrics;
pub mod persist;
pub mod scrape;
pub mod store;
pub mod wal;

pub use api::{LedgerInfo, QuestionResults, SubmitRequest, SurveySummary};
pub use app::{build_router, serve};
pub use error::ApiError;
pub use metrics::{HistoryConfig, ServerMetrics};
pub use scrape::SelfScraper;
pub use store::{AppState, InvalidBudget, ShardStats};
