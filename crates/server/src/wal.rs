//! Write-ahead journal persistence.
//!
//! Snapshots ([`crate::persist`]) capture a moment; the journal captures
//! every accepted write as one JSON line, fsync'd, so a crash loses at
//! most the torn final line. Replay rebuilds an [`AppState`] through the
//! normal ingest path, re-validating every record — a corrupted journal
//! can fail replay, but can never smuggle an invalid submission past the
//! at-source checks.

use crate::store::{AppState, SubmitError};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_survey::response::Response;
use loki_survey::survey::Survey;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// One journal record.
///
/// Externally tagged (`{"publish_survey": {…}}`) rather than internally
/// tagged: internal tagging buffers the payload through serde's `Content`
/// type, which cannot round-trip integer-keyed maps like a response's
/// `answers`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Record {
    /// A survey was published.
    PublishSurvey {
        /// The survey definition.
        survey: Survey,
    },
    /// A submission was accepted.
    Submit {
        /// Submitting user.
        user: String,
        /// Chosen privacy level.
        level: PrivacyLevel,
        /// The uploaded (obfuscated) response.
        response: Response,
        /// Declared ledger entries.
        releases: Vec<(String, ReleaseKind)>,
    },
}

/// Journal errors.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A (non-final) record failed to parse or replay.
    Corrupt(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "io: {e}"),
            WalError::Corrupt(e) => write!(f, "corrupt journal: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Timing split of one fsync'd append, for the observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendTiming {
    /// Serialize + buffered write of the record line.
    pub write: std::time::Duration,
    /// The `sync_data` call — the durability cost of the append.
    pub fsync: std::time::Duration,
}

/// An open, append-only journal.
#[derive(Debug)]
pub struct Wal {
    file: File,
}

impl Wal {
    /// Opens (creating if needed) a journal for appending.
    pub fn open(path: &Path) -> Result<Wal, WalError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal { file })
    }

    /// Appends one record and syncs it to disk, returning how long the
    /// write and fsync phases took.
    pub fn append(&mut self, record: &Record) -> Result<AppendTiming, WalError> {
        let write_started = std::time::Instant::now();
        let mut line =
            serde_json::to_vec(record).map_err(|e| WalError::Corrupt(e.to_string()))?;
        line.push(b'\n');
        self.file.write_all(&line)?;
        let write = write_started.elapsed();
        let fsync_started = std::time::Instant::now();
        self.file.sync_data()?;
        Ok(AppendTiming {
            write,
            fsync: fsync_started.elapsed(),
        })
    }

    /// Convenience: journals a survey publication.
    pub fn append_survey(&mut self, survey: &Survey) -> Result<AppendTiming, WalError> {
        self.append(&Record::PublishSurvey {
            survey: survey.clone(),
        })
    }

    /// Convenience: journals an accepted submission.
    pub fn append_submission(
        &mut self,
        user: &str,
        level: PrivacyLevel,
        response: &Response,
        releases: &[(String, ReleaseKind)],
    ) -> Result<AppendTiming, WalError> {
        self.append(&Record::Submit {
            user: user.to_string(),
            level,
            response: response.clone(),
            releases: releases.to_vec(),
        })
    }
}

/// Replays a journal into a fresh state.
///
/// A torn *final* line (crash mid-append) is tolerated and dropped; any
/// other malformed line is an error. Replay applies every record through
/// the normal `AppState` paths, so all invariants re-apply; a `Duplicate`
/// outcome is treated as corruption (the journal should never contain
/// one).
pub fn replay(path: &Path) -> Result<AppState, WalError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let state = AppState::new();
    let mut lines = reader.lines().peekable();
    let mut index = 0usize;
    while let Some(line) = lines.next() {
        let line = line?;
        index += 1;
        if line.trim().is_empty() {
            continue;
        }
        let record: Record = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                if lines.peek().is_none() {
                    // Torn tail from a crash mid-append: drop it.
                    break;
                }
                return Err(WalError::Corrupt(format!("line {index}: {e}")));
            }
        };
        match record {
            Record::PublishSurvey { survey } => {
                if !state.add_survey(survey) {
                    return Err(WalError::Corrupt(format!(
                        "line {index}: duplicate survey id"
                    )));
                }
            }
            Record::Submit {
                user,
                level,
                response,
                releases,
            } => match state.submit(&user, level, response, &releases) {
                Ok(_) => {}
                Err(SubmitError::BudgetExhausted { .. }) => {
                    // Budgets are runtime config, not journal state; a
                    // replayed journal never carries one.
                    return Err(WalError::Corrupt(format!(
                        "line {index}: budget error during replay"
                    )));
                }
                Err(e) => {
                    return Err(WalError::Corrupt(format!("line {index}: {e}")));
                }
            },
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::{Answer, QuestionKind};
    use loki_survey::survey::{SurveyBuilder, SurveyId};
    use loki_survey::QuestionId;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("loki-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "wal");
        b.question("rate", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn submission(user: &str) -> (Response, Vec<(String, ReleaseKind)>) {
        let mut r = Response::new(user, SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(4.2));
        (
            r,
            vec![(
                "survey-1/q0".into(),
                ReleaseKind::Gaussian {
                    sigma: 1.0,
                    sensitivity: 4.0,
                },
            )],
        )
    }

    #[test]
    fn journal_replays_to_equivalent_state() {
        let path = tmp("replay.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_survey(&survey()).unwrap();
            for user in ["a", "b", "c"] {
                let (resp, rel) = submission(user);
                wal.append_submission(user, PrivacyLevel::Medium, &resp, &rel)
                    .unwrap();
            }
        }
        let state = replay(&path).unwrap();
        assert_eq!(state.surveys().len(), 1);
        assert_eq!(state.submission_count(SurveyId(1)), 3);
        assert_eq!(state.accountant.releases_of("a"), 1);
        assert!(state.user_loss("b").epsilon.value() > 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_survey(&survey()).unwrap();
            let (resp, rel) = submission("a");
            wal.append_submission("a", PrivacyLevel::Low, &resp, &rel)
                .unwrap();
        }
        // Simulate a crash mid-append: half a record at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"submit\":{\"user\":\"b\",\"lev").unwrap();
        }
        let state = replay(&path).unwrap();
        assert_eq!(state.submission_count(SurveyId(1)), 1, "torn record dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_in_the_middle_is_an_error() {
        let path = tmp("midcorrupt.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_survey(&survey()).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"garbage line\n").unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            let (resp, rel) = submission("a");
            wal.append_submission("a", PrivacyLevel::Low, &resp, &rel)
                .unwrap();
        }
        assert!(matches!(replay(&path), Err(WalError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_submission_in_journal_rejected_on_replay() {
        // Hand-craft a journal whose submission carries a raw answer: the
        // normal ingest path must refuse it at replay time too.
        let path = tmp("rawreplay.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_survey(&survey()).unwrap();
            let mut r = Response::new("evil", SurveyId(1));
            r.answer(QuestionId(0), Answer::Rating(4.0)); // raw!
            wal.append(&Record::Submit {
                user: "evil".into(),
                level: PrivacyLevel::None,
                response: r,
                releases: vec![],
            })
            .unwrap();
            // A trailing valid record so the bad line isn't "torn tail".
            let (resp, rel) = submission("ok");
            wal.append_submission("ok", PrivacyLevel::Low, &resp, &rel)
                .unwrap();
        }
        assert!(matches!(replay(&path), Err(WalError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn attached_journal_captures_live_writes() {
        let path = tmp("live.jsonl");
        let _ = std::fs::remove_file(&path);
        let state = AppState::new();
        state.attach_journal(Wal::open(&path).unwrap());

        state.add_survey(survey());
        let (resp, rel) = submission("alice");
        state
            .submit("alice", PrivacyLevel::Medium, resp, &rel)
            .unwrap();

        // Replay the journal into a second state: identical content.
        let restored = replay(&path).unwrap();
        assert_eq!(restored.surveys().len(), 1);
        assert_eq!(restored.submission_count(SurveyId(1)), 1);
        assert!(
            (restored.user_loss("alice").epsilon.value()
                - state.user_loss("alice").epsilon.value())
            .abs()
                < 1e-12
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejected_submissions_never_hit_the_journal() {
        let path = tmp("rejects.jsonl");
        let _ = std::fs::remove_file(&path);
        let state = AppState::new();
        state.attach_journal(Wal::open(&path).unwrap());
        state.add_survey(survey());

        // Raw answer: rejected, and must not be journaled.
        let mut raw = Response::new("evil", SurveyId(1));
        raw.answer(QuestionId(0), Answer::Rating(4.0));
        assert!(state.submit("evil", PrivacyLevel::None, raw, &[]).is_err());

        let restored = replay(&path).unwrap();
        assert_eq!(restored.submission_count(SurveyId(1)), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_reports_phase_timing() {
        let path = tmp("timing.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let t = wal.append_survey(&survey()).unwrap();
        assert!(t.write > std::time::Duration::ZERO, "{t:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replaying_missing_file_is_io_error() {
        assert!(matches!(
            replay(Path::new("/nonexistent/wal.jsonl")),
            Err(WalError::Io(_))
        ));
    }

    #[test]
    fn record_serde_round_trip() {
        let (resp, rel) = submission("x");
        let rec = Record::Submit {
            user: "x".into(),
            level: PrivacyLevel::High,
            response: resp,
            releases: rel,
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
        assert!(json.contains("\"submit\""));
    }
}
