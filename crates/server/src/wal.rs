//! Write-ahead journal persistence and the group-commit protocol.
//!
//! Snapshots ([`crate::persist`]) capture a moment; the journal captures
//! every accepted write as one JSON line, fsync'd, so a crash loses at
//! most the torn final line. The store journals **before** it applies:
//! a record reaches memory (and its client an ack) only after the bytes
//! are durable, so replay always converges to a superset of what clients
//! were acked ([`crate::store`]'s durability contract).
//!
//! Durability is made affordable by **group commit**: writers enqueue
//! encoded records on a [`GroupCommitter`] and block; a dedicated
//! committer thread drains the queue, writes the whole batch with one
//! `write` and one `sync_data`, then wakes every waiter. N concurrent
//! submitters share ~1 fsync instead of paying N.
//!
//! Replay rebuilds an [`AppState`] through the normal ingest path,
//! re-validating every record — a corrupted journal can fail replay, but
//! can never smuggle an invalid submission past the at-source checks.

use crate::store::{AppState, SubmitError};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_obs::trace::{SpanContext, ROOT_SPAN};
use loki_survey::response::Response;
use loki_survey::survey::Survey;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// One journal record.
///
/// Externally tagged (`{"publish_survey": {…}}`) rather than internally
/// tagged: internal tagging buffers the payload through serde's `Content`
/// type, which cannot round-trip integer-keyed maps like a response's
/// `answers`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Record {
    /// A survey was published.
    PublishSurvey {
        /// The survey definition.
        survey: Survey,
    },
    /// A submission was accepted.
    Submit {
        /// Submitting user.
        user: String,
        /// Chosen privacy level.
        level: PrivacyLevel,
        /// The uploaded (obfuscated) response.
        response: Response,
        /// Declared ledger entries.
        releases: Vec<(String, ReleaseKind)>,
    },
}

/// Borrowed mirror of [`Record`] so the commit path can serialize
/// straight from the caller's references — no clone of the response or
/// releases just to journal them. Tagging must match `Record` exactly so
/// both encode to the same JSON lines.
#[derive(Serialize)]
#[serde(rename_all = "snake_case")]
enum RecordRef<'a> {
    PublishSurvey {
        survey: &'a Survey,
    },
    Submit {
        user: &'a str,
        level: PrivacyLevel,
        response: &'a Response,
        releases: &'a [(String, ReleaseKind)],
    },
}

/// Journal errors.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A (non-final) record failed to parse or replay.
    Corrupt(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "io: {e}"),
            WalError::Corrupt(e) => write!(f, "corrupt journal: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// A durability failure as seen by one blocked writer. Cloneable so a
/// single failed batch can answer every waiter it contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityError(String);

impl DurabilityError {
    fn new(message: impl Into<String>) -> DurabilityError {
        DurabilityError(message.into())
    }
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DurabilityError {}

/// Timing split of one fsync'd append, for the observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendTiming {
    /// Serialize + buffered write of the record line.
    pub write: std::time::Duration,
    /// The `sync_data` call — the durability cost of the append.
    pub fsync: std::time::Duration,
}

/// Timing of one group-committed batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchTiming {
    /// Buffered write of every line in the batch.
    pub write: std::time::Duration,
    /// The single `sync_data` covering the whole batch.
    pub fsync: std::time::Duration,
    /// Records in the batch (≥ 1).
    pub records: usize,
    /// Trace id of one traced writer in the batch (if any), so the
    /// group-commit histogram can carry an exemplar.
    pub exemplar_trace: Option<u64>,
}

/// What the committer thread reports to its observer after each batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchEvent {
    /// The batch was written and fsync'd; every waiter was acked.
    Committed(BatchTiming),
    /// The batch failed (I/O error, or the journal was already poisoned
    /// by an earlier failure); `records` waiters received a
    /// [`DurabilityError`].
    Failed {
        /// Writers refused in this batch.
        records: usize,
    },
}

/// Observer invoked on the committer thread after every batch (metrics
/// hook). Keep it cheap — it runs inside the commit pipeline.
pub type BatchObserver = Arc<dyn Fn(&BatchEvent) + Send + Sync>;

/// Group-commit tuning.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitConfig {
    /// Maximum records batched under one fsync. `1` degenerates to
    /// per-record fsync (the GC-1 bench baseline).
    pub max_batch: usize,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig { max_batch: 128 }
    }
}

/// An open, append-only journal.
#[derive(Debug)]
pub struct Wal {
    file: File,
}

impl Wal {
    /// Opens (creating if needed) a journal for appending.
    pub fn open(path: &Path) -> Result<Wal, WalError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal { file })
    }

    /// Appends one record and syncs it to disk, returning how long the
    /// write and fsync phases took.
    pub fn append(&mut self, record: &Record) -> Result<AppendTiming, WalError> {
        let line = encode_line(record)?;
        let t = self.append_encoded(&line, 1)?;
        Ok(AppendTiming {
            write: t.write,
            fsync: t.fsync,
        })
    }

    /// Appends `records` pre-encoded, newline-terminated lines with one
    /// buffered write and one `sync_data` — the group-commit primitive.
    pub fn append_encoded(&mut self, bytes: &[u8], records: usize) -> Result<BatchTiming, WalError> {
        loki_obs::phase!("wal.write");
        let write_started = std::time::Instant::now();
        self.file.write_all(bytes)?;
        let write = write_started.elapsed();
        loki_obs::phase!("wal.fsync");
        let fsync_started = std::time::Instant::now();
        self.file.sync_data()?;
        Ok(BatchTiming {
            write,
            fsync: fsync_started.elapsed(),
            records,
            exemplar_trace: None,
        })
    }

    /// Convenience: journals a survey publication.
    pub fn append_survey(&mut self, survey: &Survey) -> Result<AppendTiming, WalError> {
        self.append(&Record::PublishSurvey {
            survey: survey.clone(),
        })
    }

    /// Convenience: journals an accepted submission.
    pub fn append_submission(
        &mut self,
        user: &str,
        level: PrivacyLevel,
        response: &Response,
        releases: &[(String, ReleaseKind)],
    ) -> Result<AppendTiming, WalError> {
        self.append(&Record::Submit {
            user: user.to_string(),
            level,
            response: response.clone(),
            releases: releases.to_vec(),
        })
    }
}

/// Serializes any record shape to one newline-terminated journal line.
fn encode_line<T: Serialize>(record: &T) -> Result<Vec<u8>, WalError> {
    let mut line = serde_json::to_vec(record).map_err(|e| WalError::Corrupt(e.to_string()))?;
    line.push(b'\n');
    Ok(line)
}

/// The trace context a writer hands across the thread boundary, plus
/// the instant it enqueued — the committer turns the gap between that
/// instant and its drain into the "enqueue" (queue-wait) span.
struct TraceHandoff {
    ctx: SpanContext,
    enqueued: Instant,
}

/// One blocked writer's entry on the commit queue.
struct CommitRequest {
    /// The encoded, newline-terminated journal line.
    line: Vec<u8>,
    /// Wakes the writer once its batch is durable (or failed).
    done: mpsc::SyncSender<Result<(), DurabilityError>>,
    /// Trace handoff when the writer's request is being traced. This is
    /// the explicit context transfer across the writer→committer
    /// boundary: the committer records complete spans against it.
    trace: Option<TraceHandoff>,
}

/// The group-commit engine: a commit queue plus a dedicated committer
/// thread that batches queued records under a single fsync.
///
/// Writers call [`GroupCommitter::commit_survey`] /
/// [`GroupCommitter::commit_submission`] and block until their record is
/// durable. After an I/O failure the journal is **poisoned**: the failed
/// batch and every later commit are refused with a [`DurabilityError`]
/// (the file may hold a torn line, so continuing to append could corrupt
/// the middle of the journal). Recovery is operator-level: restart with
/// a healthy disk, replay, re-attach.
///
/// Dropping the committer closes the queue and joins the thread, so every
/// in-flight commit resolves before shutdown completes.
pub struct GroupCommitter {
    tx: Option<mpsc::Sender<CommitRequest>>,
    thread: Option<JoinHandle<()>>,
    /// Set by the committer thread on the first I/O failure; read by
    /// `/v1/healthz` so a poisoned journal is visible before a client
    /// ever eats a 503.
    poisoned: Arc<Mutex<Option<String>>>,
    /// Commits enqueued (or mid-batch) but not yet answered — the lane
    /// depth `GET /v1/admin/shards` reports. Incremented by the writer
    /// before its send, decremented by the committer as it answers.
    depth: Arc<AtomicUsize>,
}

impl std::fmt::Debug for GroupCommitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitter")
            .field("alive", &self.thread.is_some())
            .finish()
    }
}

impl GroupCommitter {
    /// Takes ownership of an open journal and spawns the committer
    /// thread. `observer` (if any) is called after every batch.
    pub fn spawn(
        wal: Wal,
        config: GroupCommitConfig,
        observer: Option<BatchObserver>,
    ) -> GroupCommitter {
        let (tx, rx) = mpsc::channel::<CommitRequest>();
        let max_batch = config.max_batch.max(1);
        let poisoned = Arc::new(Mutex::new(None));
        let poisoned_flag = Arc::clone(&poisoned);
        let depth = Arc::new(AtomicUsize::new(0));
        let depth_counter = Arc::clone(&depth);
        // Committers are spawned per WAL lane; a process-wide ordinal
        // keeps each visible as its own row in /v1/profile.
        static COMMITTER_ORDINAL: AtomicUsize = AtomicUsize::new(0);
        let ordinal = COMMITTER_ORDINAL.fetch_add(1, Ordering::Relaxed);
        let thread = std::thread::spawn(move || {
            let _prof = loki_obs::prof::register_thread(
                "wal.committer",
                ordinal.min(usize::from(u16::MAX)) as u16,
            );
            committer_loop(
                wal,
                &rx,
                max_batch,
                observer.as_ref(),
                &poisoned_flag,
                &depth_counter,
            );
        });
        GroupCommitter {
            tx: Some(tx),
            thread: Some(thread),
            poisoned,
            depth,
        }
    }

    /// The reason the journal was poisoned, if an I/O failure has
    /// occurred. `None` means the journal is healthy.
    pub fn poisoned(&self) -> Option<String> {
        self.poisoned
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Commits currently enqueued or mid-batch but not yet answered.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Blocks until a survey publication is fsync-durable.
    pub fn commit_survey(&self, survey: &Survey) -> Result<(), DurabilityError> {
        let line = encode_line(&RecordRef::PublishSurvey { survey })
            .map_err(|e| DurabilityError::new(e.to_string()))?;
        self.commit_line(line)
    }

    /// Blocks until an accepted submission is fsync-durable.
    pub fn commit_submission(
        &self,
        user: &str,
        level: PrivacyLevel,
        response: &Response,
        releases: &[(String, ReleaseKind)],
    ) -> Result<(), DurabilityError> {
        let line = encode_line(&RecordRef::Submit {
            user,
            level,
            response,
            releases,
        })
        .map_err(|e| DurabilityError::new(e.to_string()))?;
        self.commit_line(line)
    }

    /// Enqueues one encoded line and blocks until its batch resolves.
    ///
    /// If the calling thread carries a recording trace context, it is
    /// handed off on the commit request so the committer can record the
    /// enqueue-wait, batch and fsync spans into this request's tree.
    fn commit_line(&self, line: Vec<u8>) -> Result<(), DurabilityError> {
        let (done, done_rx) = mpsc::sync_channel(1);
        let Some(tx) = self.tx.as_ref() else {
            return Err(DurabilityError::new("journal closed"));
        };
        let trace = loki_obs::trace::current()
            .filter(SpanContext::is_recording)
            .map(|ctx| TraceHandoff {
                ctx,
                enqueued: Instant::now(),
            });
        self.depth.fetch_add(1, Ordering::Relaxed);
        if tx.send(CommitRequest { line, done, trace }).is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return Err(DurabilityError::new("group committer stopped"));
        }
        done_rx
            .recv()
            .unwrap_or_else(|_| Err(DurabilityError::new("group committer dropped the batch")))
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        // Closing the queue lets the thread drain in-flight batches and
        // exit; joining guarantees every waiter has been answered.
        drop(self.tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The committer thread: drain → batch-write → single fsync → wake.
///
/// For every traced request in a batch it records three spans against
/// the request's own trace (offsets are computed per-trace, so one
/// batch can serve many traces): `enqueue` (send → drain), `batch`
/// (write+fsync, tagged with the batch id and size so cohorts are
/// joinable) and `fsync` (a child of `batch`).
fn committer_loop(
    mut wal: Wal,
    rx: &mpsc::Receiver<CommitRequest>,
    max_batch: usize,
    observer: Option<&BatchObserver>,
    poisoned_flag: &Mutex<Option<String>>,
    depth: &AtomicUsize,
) {
    let mut poisoned: Option<String> = None;
    let mut batch_id: u64 = 0;
    loop {
        // Idle: blocked on the commit queue. Tagged separately from the
        // batch phases so /v1/profile distinguishes a committer waiting
        // for work from one saturated by fsync.
        loki_obs::phase!("wal.recv");
        let Ok(first) = rx.recv() else {
            break;
        };
        loki_obs::phase!("wal.batch");
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        let drained = Instant::now();
        if let Some(reason) = &poisoned {
            let err =
                DurabilityError::new(format!("journal poisoned by earlier failure: {reason}"));
            let records = batch.len();
            for req in batch {
                if let Some(h) = &req.trace {
                    h.ctx.add_span_at("enqueue", Some(ROOT_SPAN), h.enqueued, drained, &[]);
                }
                let _ = req.done.send(Err(err.clone()));
                depth.fetch_sub(1, Ordering::Relaxed);
            }
            if let Some(obs) = observer {
                obs(&BatchEvent::Failed { records });
            }
            continue;
        }
        let mut bytes = Vec::with_capacity(batch.iter().map(|r| r.line.len()).sum());
        for req in &batch {
            bytes.extend_from_slice(&req.line);
        }
        let batch_started = Instant::now();
        match wal.append_encoded(&bytes, batch.len()) {
            Ok(timing) => {
                // append_encoded left the tag at wal.fsync; everything
                // from here to the next recv is waking the waiters.
                loki_obs::phase!("wal.wake");
                batch_id += 1;
                let batch_ended = Instant::now();
                let fsync_started = batch_started + timing.write;
                let size = batch.len() as u64;
                let mut exemplar_trace = None;
                for req in &batch {
                    let Some(h) = &req.trace else { continue };
                    exemplar_trace.get_or_insert(h.ctx.trace_id());
                    h.ctx.add_span_at("enqueue", Some(ROOT_SPAN), h.enqueued, drained, &[]);
                    let b = h.ctx.add_span_at(
                        "batch",
                        Some(ROOT_SPAN),
                        batch_started,
                        batch_ended,
                        &[("batch_id", batch_id), ("batch_size", size)],
                    );
                    h.ctx
                        .add_span_at("fsync", Some(b), fsync_started, batch_ended, &[]);
                }
                for req in batch {
                    let _ = req.done.send(Ok(()));
                    depth.fetch_sub(1, Ordering::Relaxed);
                }
                if let Some(obs) = observer {
                    obs(&BatchEvent::Committed(BatchTiming {
                        exemplar_trace,
                        ..timing
                    }));
                }
            }
            Err(e) => {
                let message = e.to_string();
                let err = DurabilityError::new(&message);
                let records = batch.len();
                for req in batch {
                    if let Some(h) = &req.trace {
                        h.ctx.add_span_at("enqueue", Some(ROOT_SPAN), h.enqueued, drained, &[]);
                    }
                    let _ = req.done.send(Err(err.clone()));
                    depth.fetch_sub(1, Ordering::Relaxed);
                }
                if let Some(obs) = observer {
                    obs(&BatchEvent::Failed { records });
                }
                *poisoned_flag
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(message.clone());
                poisoned = Some(message);
            }
        }
    }
}

/// Replays a journal into a fresh state.
///
/// A torn *final* line (crash mid-append) is tolerated and dropped; any
/// other malformed line is an error. Replay applies every record through
/// the normal `AppState` paths, so all invariants re-apply; a `Duplicate`
/// outcome is treated as corruption (the journal should never contain
/// one).
pub fn replay(path: &Path) -> Result<AppState, WalError> {
    let state = AppState::new();
    replay_into(&state, path)?;
    Ok(state)
}

/// The journal file name of one per-shard WAL lane under a lane
/// directory (see [`AppState::attach_journal_lanes`]). Zero-padded so
/// lexicographic directory order equals lane order.
pub fn lane_file_name(lane: usize) -> String {
    format!("wal-lane-{lane:03}.jsonl")
}

/// Replays a directory of per-shard WAL lanes
/// ([`AppState::attach_journal_lanes`]) into a fresh state, visiting
/// lane files in lane order.
///
/// Per-lane replay is sound because records never cross lanes: a
/// submission journals to its *survey's* lane, so each lane contains
/// every survey before that survey's submissions, and ε-ledger charges
/// from different lanes compose commutatively (the accountant only ever
/// appends per-user entries).
pub fn replay_lanes(dir: &Path) -> Result<AppState, WalError> {
    let state = AppState::new();
    let mut lanes: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-lane-") && n.ends_with(".jsonl"))
        })
        .collect();
    lanes.sort();
    for lane in &lanes {
        replay_into(&state, lane)?;
    }
    Ok(state)
}

/// Replays one journal file into an existing state through the normal
/// write paths (the body of [`replay`], shared with [`replay_lanes`]).
fn replay_into(state: &AppState, path: &Path) -> Result<(), WalError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut lines = reader.lines().peekable();
    let mut index = 0usize;
    while let Some(line) = lines.next() {
        let line = line?;
        index += 1;
        if line.trim().is_empty() {
            continue;
        }
        let record: Record = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                if lines.peek().is_none() {
                    // Torn tail from a crash mid-append: drop it.
                    break;
                }
                return Err(WalError::Corrupt(format!("line {index}: {e}")));
            }
        };
        match record {
            Record::PublishSurvey { survey } => match state.add_survey(survey) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(WalError::Corrupt(format!(
                        "line {index}: duplicate survey id"
                    )));
                }
                Err(e) => {
                    return Err(WalError::Corrupt(format!("line {index}: {e}")));
                }
            },
            Record::Submit {
                user,
                level,
                response,
                releases,
            } => match state.submit(&user, level, response, &releases) {
                Ok(_) => {}
                Err(SubmitError::BudgetExhausted { .. }) => {
                    // Budgets are runtime config, not journal state; a
                    // replayed journal never carries one.
                    return Err(WalError::Corrupt(format!(
                        "line {index}: budget error during replay"
                    )));
                }
                Err(e) => {
                    return Err(WalError::Corrupt(format!("line {index}: {e}")));
                }
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::{Answer, QuestionKind};
    use loki_survey::survey::{SurveyBuilder, SurveyId};
    use loki_survey::QuestionId;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("loki-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "wal");
        b.question("rate", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn submission(user: &str) -> (Response, Vec<(String, ReleaseKind)>) {
        let mut r = Response::new(user, SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(4.2));
        (
            r,
            vec![(
                "survey-1/q0".into(),
                ReleaseKind::Gaussian {
                    sigma: 1.0,
                    sensitivity: 4.0,
                },
            )],
        )
    }

    #[test]
    fn journal_replays_to_equivalent_state() {
        let path = tmp("replay.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_survey(&survey()).unwrap();
            for user in ["a", "b", "c"] {
                let (resp, rel) = submission(user);
                wal.append_submission(user, PrivacyLevel::Medium, &resp, &rel)
                    .unwrap();
            }
        }
        let state = replay(&path).unwrap();
        assert_eq!(state.surveys().len(), 1);
        assert_eq!(state.submission_count(SurveyId(1)), 3);
        assert_eq!(state.accountant.releases_of("a"), 1);
        assert!(state.user_loss("b").epsilon.value() > 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_survey(&survey()).unwrap();
            let (resp, rel) = submission("a");
            wal.append_submission("a", PrivacyLevel::Low, &resp, &rel)
                .unwrap();
        }
        // Simulate a crash mid-append: half a record at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"submit\":{\"user\":\"b\",\"lev").unwrap();
        }
        let state = replay(&path).unwrap();
        assert_eq!(state.submission_count(SurveyId(1)), 1, "torn record dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_in_the_middle_is_an_error() {
        let path = tmp("midcorrupt.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_survey(&survey()).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"garbage line\n").unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            let (resp, rel) = submission("a");
            wal.append_submission("a", PrivacyLevel::Low, &resp, &rel)
                .unwrap();
        }
        assert!(matches!(replay(&path), Err(WalError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_submission_in_journal_rejected_on_replay() {
        // Hand-craft a journal whose submission carries a raw answer: the
        // normal ingest path must refuse it at replay time too.
        let path = tmp("rawreplay.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_survey(&survey()).unwrap();
            let mut r = Response::new("evil", SurveyId(1));
            r.answer(QuestionId(0), Answer::Rating(4.0)); // raw!
            wal.append(&Record::Submit {
                user: "evil".into(),
                level: PrivacyLevel::None,
                response: r,
                releases: vec![],
            })
            .unwrap();
            // A trailing valid record so the bad line isn't "torn tail".
            let (resp, rel) = submission("ok");
            wal.append_submission("ok", PrivacyLevel::Low, &resp, &rel)
                .unwrap();
        }
        assert!(matches!(replay(&path), Err(WalError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn attached_journal_captures_live_writes() {
        let path = tmp("live.jsonl");
        let _ = std::fs::remove_file(&path);
        let state = AppState::new();
        state.attach_journal(Wal::open(&path).unwrap());

        state.add_survey(survey()).unwrap();
        let (resp, rel) = submission("alice");
        state
            .submit("alice", PrivacyLevel::Medium, resp, &rel)
            .unwrap();

        // Replay the journal into a second state: identical content.
        let restored = replay(&path).unwrap();
        assert_eq!(restored.surveys().len(), 1);
        assert_eq!(restored.submission_count(SurveyId(1)), 1);
        assert!(
            (restored.user_loss("alice").epsilon.value()
                - state.user_loss("alice").epsilon.value())
            .abs()
                < 1e-12
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejected_submissions_never_hit_the_journal() {
        let path = tmp("rejects.jsonl");
        let _ = std::fs::remove_file(&path);
        let state = AppState::new();
        state.attach_journal(Wal::open(&path).unwrap());
        state.add_survey(survey()).unwrap();

        // Raw answer: rejected, and must not be journaled.
        let mut raw = Response::new("evil", SurveyId(1));
        raw.answer(QuestionId(0), Answer::Rating(4.0));
        assert!(state.submit("evil", PrivacyLevel::None, raw, &[]).is_err());

        let restored = replay(&path).unwrap();
        assert_eq!(restored.submission_count(SurveyId(1)), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_reports_phase_timing() {
        let path = tmp("timing.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let t = wal.append_survey(&survey()).unwrap();
        assert!(t.write > std::time::Duration::ZERO, "{t:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replaying_missing_file_is_io_error() {
        assert!(matches!(
            replay(Path::new("/nonexistent/wal.jsonl")),
            Err(WalError::Io(_))
        ));
    }

    #[test]
    fn record_serde_round_trip() {
        let (resp, rel) = submission("x");
        let rec = Record::Submit {
            user: "x".into(),
            level: PrivacyLevel::High,
            response: resp,
            releases: rel,
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
        assert!(json.contains("\"submit\""));
    }

    #[test]
    fn record_ref_encodes_identically_to_record() {
        let (resp, rel) = submission("x");
        let owned = encode_line(&Record::Submit {
            user: "x".into(),
            level: PrivacyLevel::High,
            response: resp.clone(),
            releases: rel.clone(),
        })
        .unwrap();
        let borrowed = encode_line(&RecordRef::Submit {
            user: "x",
            level: PrivacyLevel::High,
            response: &resp,
            releases: &rel,
        })
        .unwrap();
        assert_eq!(owned, borrowed);

        let s = survey();
        let owned = encode_line(&Record::PublishSurvey { survey: s.clone() }).unwrap();
        let borrowed = encode_line(&RecordRef::PublishSurvey { survey: &s }).unwrap();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn group_commit_concurrent_writers_all_durable() {
        let path = tmp("group.jsonl");
        let _ = std::fs::remove_file(&path);
        let committer = Arc::new(GroupCommitter::spawn(
            Wal::open(&path).unwrap(),
            GroupCommitConfig::default(),
            None,
        ));
        committer.commit_survey(&survey()).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let committer = Arc::clone(&committer);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        let user = format!("t{t}-u{i}");
                        let (resp, rel) = submission(&user);
                        committer
                            .commit_submission(&user, PrivacyLevel::Medium, &resp, &rel)
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(Arc::try_unwrap(committer).unwrap()); // join the committer
        let state = replay(&path).unwrap();
        assert_eq!(state.submission_count(SurveyId(1)), 80);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_batches_under_load() {
        // With many writers racing one committer, at least one batch must
        // carry more than one record (that is the whole point).
        let path = tmp("batching.jsonl");
        let _ = std::fs::remove_file(&path);
        let max_seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let observer: BatchObserver = {
            let max_seen = Arc::clone(&max_seen);
            Arc::new(move |event| {
                if let BatchEvent::Committed(t) = event {
                    max_seen.fetch_max(t.records, std::sync::atomic::Ordering::Relaxed);
                }
            })
        };
        let committer = Arc::new(GroupCommitter::spawn(
            Wal::open(&path).unwrap(),
            GroupCommitConfig::default(),
            Some(observer),
        ));
        committer.commit_survey(&survey()).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let committer = Arc::clone(&committer);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let user = format!("t{t}-u{i}");
                        let (resp, rel) = submission(&user);
                        committer
                            .commit_submission(&user, PrivacyLevel::Medium, &resp, &rel)
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(Arc::try_unwrap(committer).unwrap());
        assert!(
            max_seen.load(std::sync::atomic::Ordering::Relaxed) >= 2,
            "no batch ever grouped >1 record"
        );
        assert_eq!(replay(&path).unwrap().submission_count(SurveyId(1)), 200);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn io_failure_poisons_the_journal() {
        // /dev/full accepts opens but fails every write with ENOSPC —
        // a deterministic disk-full stand-in.
        let wal = Wal::open(Path::new("/dev/full")).unwrap();
        let failures = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let observer: BatchObserver = {
            let failures = Arc::clone(&failures);
            Arc::new(move |event| {
                if let BatchEvent::Failed { records } = event {
                    failures.fetch_add(*records, std::sync::atomic::Ordering::Relaxed);
                }
            })
        };
        let committer =
            GroupCommitter::spawn(wal, GroupCommitConfig::default(), Some(observer));
        let err = committer.commit_survey(&survey()).unwrap_err();
        assert!(err.to_string().contains("io"), "{err}");
        // Poisoned: later commits fail too, even without touching disk.
        let (resp, rel) = submission("a");
        let err = committer
            .commit_submission("a", PrivacyLevel::Low, &resp, &rel)
            .unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // The poison reason is observable without eating another 503.
        let reason = committer.poisoned().expect("poison flag set");
        assert!(reason.contains("io"), "{reason}");
        drop(committer);
        assert_eq!(failures.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn healthy_committer_reports_not_poisoned() {
        let path = tmp("healthy.jsonl");
        let _ = std::fs::remove_file(&path);
        let committer =
            GroupCommitter::spawn(Wal::open(&path).unwrap(), GroupCommitConfig::default(), None);
        committer.commit_survey(&survey()).unwrap();
        assert_eq!(committer.poisoned(), None);
        drop(committer);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn traced_commit_records_spans_across_the_thread_boundary() {
        use loki_obs::trace::{self, TraceConfig};
        use loki_obs::Tracer;

        let path = tmp("traced.jsonl");
        let _ = std::fs::remove_file(&path);
        let committer =
            GroupCommitter::spawn(Wal::open(&path).unwrap(), GroupCommitConfig::default(), None);

        let tracer = Tracer::new(
            1,
            TraceConfig {
                capacity: 8,
                sample_every: 1,
                slow_threshold: None,
            },
        );
        let t = tracer.start();
        let id = t.id();
        {
            let _g = trace::set_current(t.ctx());
            committer.commit_survey(&survey()).unwrap();
        }
        tracer.finish(t);

        let stored = tracer.get(id).expect("trace retained");
        let names: Vec<&str> = stored.spans.iter().map(|s| s.name).collect();
        for expected in ["enqueue", "batch", "fsync"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        let batch = stored.spans.iter().find(|s| s.name == "batch").unwrap();
        assert!(
            batch.attrs.iter().any(|(k, v)| *k == "batch_id" && *v >= 1),
            "batch span carries a batch id: {:?}",
            batch.attrs
        );
        let fsync = stored.spans.iter().find(|s| s.name == "fsync").unwrap();
        assert_eq!(fsync.parent, Some(batch.id), "fsync is a child of batch");
        drop(committer);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn untraced_commits_carry_no_handoff_or_exemplar() {
        let path = tmp("untraced.jsonl");
        let _ = std::fs::remove_file(&path);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let observer: BatchObserver = {
            let seen = Arc::clone(&seen);
            Arc::new(move |event| {
                if let BatchEvent::Committed(t) = event {
                    seen.lock().unwrap().push(t.exemplar_trace);
                }
            })
        };
        let committer = GroupCommitter::spawn(
            Wal::open(&path).unwrap(),
            GroupCommitConfig::default(),
            Some(observer),
        );
        committer.commit_survey(&survey()).unwrap();
        drop(committer);
        assert_eq!(seen.lock().unwrap().as_slice(), &[None]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn committer_shutdown_resolves_inflight_commits() {
        let path = tmp("shutdown.jsonl");
        let _ = std::fs::remove_file(&path);
        let committer = Arc::new(GroupCommitter::spawn(
            Wal::open(&path).unwrap(),
            GroupCommitConfig::default(),
            None,
        ));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let committer = Arc::clone(&committer);
                std::thread::spawn(move || {
                    let user = format!("w{t}");
                    let (resp, rel) = submission(&user);
                    committer.commit_submission(&user, PrivacyLevel::Low, &resp, &rel)
                })
            })
            .collect();
        for w in writers {
            // Every writer resolves (durable before the drop below).
            w.join().unwrap().unwrap();
        }
        drop(Arc::try_unwrap(committer).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn depth_counts_down_to_zero_after_commits() {
        let path = tmp("depth.jsonl");
        let _ = std::fs::remove_file(&path);
        let committer =
            GroupCommitter::spawn(Wal::open(&path).unwrap(), GroupCommitConfig::default(), None);
        assert_eq!(committer.depth(), 0);
        committer.commit_survey(&survey()).unwrap();
        let (resp, rel) = submission("w0");
        committer
            .commit_submission("w0", PrivacyLevel::Low, &resp, &rel)
            .unwrap();
        // Every commit blocked until answered, so nothing is in flight.
        assert_eq!(committer.depth(), 0);
        drop(committer);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lane_file_names_sort_in_lane_order() {
        assert_eq!(lane_file_name(0), "wal-lane-000.jsonl");
        assert_eq!(lane_file_name(7), "wal-lane-007.jsonl");
        assert_eq!(lane_file_name(123), "wal-lane-123.jsonl");
        let mut names: Vec<String> = (0..12).rev().map(lane_file_name).collect();
        names.sort();
        assert_eq!(names.first().map(String::as_str), Some("wal-lane-000.jsonl"));
        assert_eq!(names.last().map(String::as_str), Some("wal-lane-011.jsonl"));
    }

    #[test]
    fn lanes_round_trip_through_replay_lanes() {
        let dir = std::env::temp_dir().join(format!("loki-lanes-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let state = AppState::new();
        state
            .attach_journal_lanes(&dir, GroupCommitConfig::default())
            .unwrap();
        // Spread surveys over several lanes, with one submission each.
        for id in 1..=6u64 {
            let mut b = SurveyBuilder::new(SurveyId(id), format!("s{id}"));
            b.question("rate", QuestionKind::likert5(), false);
            state.add_survey(b.build().unwrap()).unwrap();
            let user = format!("w{id}");
            let mut r = Response::new(&user, SurveyId(id));
            r.answer(QuestionId(0), Answer::Obfuscated(3.5));
            state
                .submit(
                    &user,
                    PrivacyLevel::Low,
                    r,
                    &[(
                        format!("survey-{id}/q0"),
                        ReleaseKind::Gaussian {
                            sigma: 1.0,
                            sensitivity: 4.0,
                        },
                    )],
                )
                .unwrap();
        }
        state.detach_journal();

        // More than one lane file actually carries records.
        let populated = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.metadata().is_ok_and(|m| m.len() > 0))
            .count();
        assert!(populated > 1, "expected records on several lanes");

        let replayed = replay_lanes(&dir).unwrap();
        assert_eq!(replayed.surveys().len(), 6);
        for id in 1..=6u64 {
            assert_eq!(replayed.submission_count(SurveyId(id)), 1);
            assert!(replayed.has_submitted(SurveyId(id), &format!("w{id}")));
            assert_eq!(replayed.accountant.releases_of(&format!("w{id}")), 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_lanes_surfaces_mid_lane_corruption() {
        let dir = std::env::temp_dir().join(format!("loki-lanes-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let state = AppState::new();
        state
            .attach_journal_lanes(&dir, GroupCommitConfig::default())
            .unwrap();
        state.add_survey(survey()).unwrap();
        state.detach_journal();
        // Corrupt the populated lane in the middle: garbage then a
        // valid-looking tail, so the torn-final-line tolerance cannot
        // apply.
        let lane = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| std::fs::metadata(p).is_ok_and(|m| m.len() > 0))
            .unwrap();
        let mut bytes = std::fs::read(&lane).unwrap();
        bytes.extend_from_slice(b"{garbage\n");
        bytes.extend_from_slice(b"{\"also\": \"broken\"\n");
        std::fs::write(&lane, bytes).unwrap();
        assert!(matches!(
            replay_lanes(&dir),
            Err(WalError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
