//! The self-scraper: a background thread feeding the history layer.
//!
//! Every `interval` the scraper snapshots the registry straight from the
//! atomic cells into the tsdb and runs the SLO state machines
//! ([`crate::metrics::ServerMetrics::scrape`]). Two lifetime rules keep
//! it from leaking or hanging:
//!
//! * it holds only a [`Weak`] reference to the [`AppState`], so a
//!   forgotten scraper can never keep the server's state alive — when
//!   the last strong reference drops, the next wake-up fails to upgrade
//!   and the thread exits on its own;
//! * dropping the [`SelfScraper`] handle signals an explicit shutdown
//!   through a condvar (waking the thread immediately, not after the
//!   interval) and joins the thread, so server teardown is prompt and
//!   deterministic rather than implicit.
//!
//! The one exception to the join: when the *scraper thread itself* ends
//! up dropping the last `Arc<AppState>` (and with it this handle), it
//! must not join itself — it skips the join and exits via the weak
//! upgrade failing on its next loop iteration.
//!
//! Sharding note: the scraper only ever goes through the [`AppState`]
//! facade ([`AppState::scrape_once`]), which reads atomic instrument
//! cells and walks the accountant's internal ledger shards — it never
//! takes any store shard's survey/submission locks, so a scrape cannot
//! contend with the sharded submit hot path. Per-shard occupancy is an
//! admin-surface concern (`GET /v1/admin/shards`), not a scrape concern.

use crate::store::AppState;
use std::sync::{Arc, Condvar, Mutex, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared stop flag + wake-up channel between handle and thread.
#[derive(Debug, Default)]
struct Shutdown {
    stopped: Mutex<bool>,
    wake: Condvar,
}

impl Shutdown {
    fn stop(&self) {
        let mut stopped = self.stopped.lock().unwrap_or_else(PoisonError::into_inner);
        *stopped = true;
        self.wake.notify_all();
    }
}

/// Handle to the background scrape thread; dropping it shuts the thread
/// down and joins it.
#[derive(Debug)]
pub struct SelfScraper {
    shutdown: Arc<Shutdown>,
    handle: Option<JoinHandle<()>>,
    interval: Duration,
}

impl SelfScraper {
    /// Spawns the scrape loop over a weak reference to `state`, firing
    /// every `interval` (floored at 1 ms so a zero interval cannot spin).
    pub fn spawn(state: &Arc<AppState>, interval: Duration) -> SelfScraper {
        let interval = interval.max(Duration::from_millis(1));
        let shutdown = Arc::new(Shutdown::default());
        let signal = Arc::clone(&shutdown);
        let weak: Weak<AppState> = Arc::downgrade(state);
        let handle = std::thread::Builder::new()
            .name("loki-self-scrape".to_string())
            .spawn(move || run(&weak, &signal, interval))
            .ok();
        SelfScraper {
            shutdown,
            handle,
            interval,
        }
    }

    /// The configured scrape interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }
}

impl Drop for SelfScraper {
    fn drop(&mut self) {
        self.shutdown.stop();
        if let Some(handle) = self.handle.take() {
            // The scraper thread itself can drop the last Arc<AppState>
            // (its scrape held the final strong reference), running this
            // drop on the thread being joined. Skip the self-join; the
            // thread exits through the stop flag it just set.
            if handle.thread().id() == std::thread::current().id() {
                return;
            }
            let _ = handle.join();
        }
    }
}

/// The scrape loop: sleep on the condvar (so shutdown wakes it early),
/// scrape on timeout, exit when stopped or the state is gone.
fn run(state: &Weak<AppState>, shutdown: &Shutdown, interval: Duration) {
    // Continuous profiling: scrapers are singletons per AppState, and
    // tests run several at once, so they share ordinal 0 — the phase
    // split (idle vs. tick) is what matters here, not per-instance rows.
    let _prof = loki_obs::prof::register_thread("obs.scraper", 0);
    loop {
        {
            loki_obs::phase!("scrape.idle");
            let stopped = shutdown
                .stopped
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if *stopped {
                return;
            }
            let (stopped, _timeout) = shutdown
                .wake
                .wait_timeout(stopped, interval)
                .unwrap_or_else(PoisonError::into_inner);
            if *stopped {
                return;
            }
            // Lock released here: the scrape itself runs unguarded so a
            // slow ledger walk never blocks shutdown signalling.
        }
        let Some(state) = state.upgrade() else { return };
        loki_obs::phase!("scrape.tick");
        state.scrape_once();
        // `state` drops here; if it was the last strong reference the
        // AppState (and this scraper's handle) unwind on this thread —
        // Drop above detects that and skips the self-join.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn scraper_feeds_ticks_until_dropped() {
        let state = Arc::new(AppState::new());
        let metrics = state.enable_metrics();
        let scraper = SelfScraper::spawn(&state, Duration::from_millis(5));
        assert_eq!(scraper.interval(), Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.scrapes() < 3 {
            assert!(Instant::now() < deadline, "scraper never ticked");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(scraper);
        let after = metrics.scrapes();
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            metrics.scrapes() <= after + 1,
            "thread kept scraping after drop"
        );
    }

    #[test]
    fn drop_joins_promptly_even_mid_interval() {
        // A long interval must not delay shutdown: the condvar wakes the
        // thread immediately.
        let state = Arc::new(AppState::new());
        state.enable_metrics();
        let scraper = SelfScraper::spawn(&state, Duration::from_secs(3600));
        let started = Instant::now();
        drop(scraper);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drop hung on the sleeping thread"
        );
    }

    #[test]
    fn scraper_exits_when_state_is_gone() {
        let state = Arc::new(AppState::new());
        state.enable_metrics();
        let scraper = SelfScraper::spawn(&state, Duration::from_millis(5));
        drop(state);
        // The thread notices the dead weak reference on its next tick and
        // exits; the subsequent drop-join must not hang.
        std::thread::sleep(Duration::from_millis(30));
        let started = Instant::now();
        drop(scraper);
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
