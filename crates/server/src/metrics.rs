//! Server metric families over the [`loki_obs`] substrate.
//!
//! One [`ServerMetrics`] instance owns every instrument the backend
//! records into, plus the bounded access log. Handles are `Arc`s resolved
//! once at construction; the hot path (request observer, submit path)
//! never touches the registry.
//!
//! **Privacy rule for labels:** label values are route shapes, methods,
//! status classes and privacy levels only — never user identifiers. The
//! access log likewise stores sanitized route shapes ([`route_shape`]):
//! `GET /ledger/u123` is logged as `/ledger/:p`, so a scrape of the
//! observability endpoints cannot become a side channel linking users to
//! submission times (the linkage attacks of §2 need exactly such joins).

use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::Accountant;
use loki_dp::params::Delta;
use loki_net::http::Method;
use loki_net::server::{NetStats, RequestObserver, RequestTiming, ShedObserver};
use loki_obs::{
    AccessLog, AuditLog, BurnRule, Counter, Gauge, Histogram, Registry, SloEngine, SloKind,
    SloSpec, TraceConfig, Tracer, Tsdb, TsdbConfig, LATENCY_BUCKETS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Buckets for the group-commit batch-size histogram (records per
/// fsync), powers of two up to the default `max_batch`.
const BATCH_SIZE_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Cumulative anonymity-cohort-size bucket labels for
/// `loki_privacy_k_anon_bucket{k=…}`: `k="1"` is the re-identifiable
/// count, `k="+Inf"` every linkable subject (Prometheus `le` idiom).
const K_ANON_BUCKETS: [&str; 7] = ["1", "2", "4", "8", "16", "32", "+Inf"];

const METHODS: [Method; 6] = [
    Method::Get,
    Method::Post,
    Method::Put,
    Method::Delete,
    Method::Head,
    Method::Options,
];
const CLASSES: [&str; 4] = ["2xx", "3xx", "4xx", "5xx"];
const EPSILON_STATS: [&str; 5] = ["p50", "p90", "p99", "mean", "max"];

/// Path segments that are route literals and may appear verbatim in the
/// access log; every other segment is a parameter and is masked.
const ROUTE_LITERALS: [&str; 23] = [
    "v1",
    "health",
    "healthz",
    "surveys",
    "responses",
    "results",
    "estimate",
    "choices",
    "stats",
    "ledger",
    "metrics",
    "accesslog",
    "traces",
    "audit",
    "timeseries",
    "slo",
    "alerts",
    "history",
    "admin",
    "shards",
    "profile",
    "procstats",
    "privacy",
];

/// Static label values for the per-shard instrument children. Stores
/// with more shards than this fold the overflow into the last label —
/// the aggregate (unlabeled) families stay exact either way.
const SHARD_LABELS: [&str; 8] = ["0", "1", "2", "3", "4", "5", "6", "7"];

/// Label values for the CPU-time counter children (`/proc/self/stat`
/// utime/stime, in clock ticks).
const CPU_MODES: [&str; 2] = ["user", "system"];

/// The reactor stats block currently feeding the `loki_net_*` families,
/// plus per-label wakeup watermarks (counters advance by delta, so a
/// scrape is idempotent with respect to the monotone source counts).
#[derive(Debug, Default)]
struct NetAttachment {
    stats: Option<Arc<NetStats>>,
    seen: [u64; SHARD_LABELS.len()],
    seen_total: u64,
    seen_accepted: [u64; SHARD_LABELS.len()],
    seen_accepted_total: u64,
    seen_shed: [u64; SHARD_LABELS.len()],
    seen_shed_total: u64,
}

/// Watermarks for the process-global monotone resource sources (the
/// counting allocator's statics, the wall-clock profiler's sample
/// count, `/proc/self` CPU ticks). Those sources outlive any one
/// `ServerMetrics`, so each instance advances its counters by delta —
/// the same scrape-idempotence discipline as [`NetAttachment`].
#[derive(Debug, Default)]
struct ResourceWatermarks {
    allocs: u64,
    frees: u64,
    bytes: u64,
    samples: u64,
    utime: u64,
    stime: u64,
}

/// Reduces a concrete request path to its route shape, masking every
/// non-literal segment as `:p` (`/v1/ledger/alice` → `/v1/ledger/:p`).
pub fn route_shape(path: &str) -> String {
    let mut shape = String::with_capacity(path.len());
    for segment in path.split('/').filter(|s| !s.is_empty()) {
        shape.push('/');
        if ROUTE_LITERALS.contains(&segment) {
            shape.push_str(segment);
        } else {
            shape.push_str(":p");
        }
    }
    if shape.is_empty() {
        shape.push('/');
    }
    shape
}

/// History-layer knobs: tsdb shape, SLO catalogue, alert-ring size.
#[derive(Debug, Clone)]
pub struct HistoryConfig {
    /// Ring shape of the in-process time-series store.
    pub tsdb: TsdbConfig,
    /// The SLOs evaluated each scrape tick.
    pub slo_specs: Vec<SloSpec>,
    /// Alert-transition history ring capacity.
    pub alert_history: usize,
}

impl Default for HistoryConfig {
    /// Production posture at one scrape per second: multi-window
    /// burn-rate pairs à la SRE (fast 5m/1h catches a total outage in
    /// minutes, slow 30m/6h catches a slow leak), one minute of
    /// pending-state hysteresis.
    fn default() -> HistoryConfig {
        let paging_rules = vec![
            BurnRule { long_ticks: 3600, short_ticks: 300, factor: 14.4 },
            BurnRule { long_ticks: 21_600, short_ticks: 1800, factor: 6.0 },
        ];
        HistoryConfig {
            tsdb: TsdbConfig::default(),
            slo_specs: vec![
                SloSpec {
                    name: "availability".to_string(),
                    objective: 0.999,
                    kind: SloKind::ErrorRatio {
                        bad_name: "loki_http_requests_total".to_string(),
                        bad_filter: "class=\"5xx\"".to_string(),
                        total_name: "loki_http_requests_total".to_string(),
                        total_filter: String::new(),
                    },
                    rules: paging_rules.clone(),
                    pending_ticks: 60,
                    exemplar_family: Some("loki_submit_seconds".to_string()),
                },
                SloSpec {
                    name: "submit-latency".to_string(),
                    objective: 0.99,
                    kind: SloKind::LatencyThreshold {
                        family: "loki_submit_seconds".to_string(),
                        le: "0.25".to_string(),
                    },
                    rules: paging_rules,
                    pending_ticks: 60,
                    exemplar_family: Some("loki_submit_seconds".to_string()),
                },
                // The paper's §3.1 invariant as a pageable objective: at
                // most 5% of ledgered subjects may sit above 80% of the
                // ε cap (or be unbounded). A gauge level, not a rate, so
                // one rule with factor 1.0 suffices.
                SloSpec {
                    name: "privacy-headroom".to_string(),
                    objective: 0.95,
                    kind: SloKind::GaugeLevel {
                        name: "loki_ledger_near_cap_ratio".to_string(),
                        filter: String::new(),
                    },
                    rules: vec![BurnRule { long_ticks: 3600, short_ticks: 300, factor: 1.0 }],
                    pending_ticks: 60,
                    exemplar_family: None,
                },
                // The observatory's re-identification objective: at most
                // 5% of linkable subjects may be unique in their
                // quasi-identifier cohort (k = 1). Fed from the streaming
                // sketch on every scrape; firing degrades `/v1/healthz`.
                SloSpec {
                    name: "privacy-at-risk".to_string(),
                    objective: 0.95,
                    kind: SloKind::GaugeLevel {
                        name: "loki_privacy_at_risk_ratio".to_string(),
                        filter: String::new(),
                    },
                    rules: vec![BurnRule { long_ticks: 3600, short_ticks: 300, factor: 1.0 }],
                    pending_ticks: 60,
                    exemplar_family: None,
                },
            ],
            alert_history: 256,
        }
    }
}

/// Every instrument the backend records into.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Registry,
    /// `METHODS × CLASSES` request counters, row-major by method.
    requests: Vec<Arc<Counter>>,
    keepalive_reuses: Arc<Counter>,
    parse_seconds: Arc<Histogram>,
    dispatch_seconds: Arc<Histogram>,
    submit_seconds: Arc<Histogram>,
    wal_write_seconds: Arc<Histogram>,
    wal_fsync_seconds: Arc<Histogram>,
    wal_batch_size: Arc<Histogram>,
    wal_group_commit_seconds: Arc<Histogram>,
    wal_errors: Arc<Counter>,
    conns_shed: Arc<Counter>,
    store_lock_seconds: Arc<Histogram>,
    /// Per-shard children of the lock family, in [`SHARD_LABELS`] order
    /// (shard indices past the pool clamp to the last child).
    shard_lock_seconds: Vec<Arc<Histogram>>,
    /// Per-shard (per WAL lane) children of the group-commit family.
    shard_commit_seconds: Vec<Arc<Histogram>>,
    /// Requests served through a legacy (un-`/v1`) route alias.
    legacy_requests: Arc<Counter>,
    budget_rejections: Arc<Counter>,
    /// Accepted-submission counters in [`PrivacyLevel::ALL`] order.
    submissions_by_level: Vec<Arc<Counter>>,
    /// Ledger ε gauges in [`EPSILON_STATS`] order.
    epsilon_gauges: Vec<Arc<Gauge>>,
    ledger_users: Arc<Gauge>,
    ledger_unbounded: Arc<Gauge>,
    /// Fraction of ledgered subjects at ≥ 80% of the ε cap (or
    /// unbounded); 0 when no cap is configured. The privacy SLO's input.
    ledger_near_cap: Arc<Gauge>,
    /// Cumulative k-anonymity distribution gauges in [`K_ANON_BUCKETS`]
    /// order: subjects sitting in a cohort of size ≤ k.
    privacy_k_anon: Vec<Arc<Gauge>>,
    /// Fraction of linkable subjects unique in their cohort — the
    /// re-identification-risk ratio and the privacy-at-risk SLO's input.
    privacy_at_risk: Arc<Gauge>,
    /// Shannon entropy (bits) of the cohort-size distribution.
    privacy_entropy: Arc<Gauge>,
    /// Subjects with at least one disclosed demographic fragment.
    privacy_subjects: Arc<Gauge>,
    /// Time merging the observatory's shard sketches into one cohort
    /// view (the O(shards) read the scan paths were replaced with).
    agg_merge_seconds: Arc<Histogram>,
    /// Open reactor connections, refreshed on scrape from the attached
    /// [`NetStats`] (aggregate plus [`SHARD_LABELS`] children).
    net_open_conns: Arc<Gauge>,
    shard_net_open: Vec<Arc<Gauge>>,
    /// Reactor event-loop wakeups, advanced by counter deltas against
    /// the attached [`NetStats`] on each refresh.
    net_wakeups: Arc<Counter>,
    shard_net_wakeups: Vec<Arc<Counter>>,
    /// Connections accepted / shed by the reactor accept loops, advanced
    /// by counter deltas on refresh. The [`SHARD_LABELS`] children make
    /// accept imbalance across reactor shards directly visible.
    net_accepted: Arc<Counter>,
    shard_net_accepted: Vec<Arc<Counter>>,
    net_shed: Arc<Counter>,
    shard_net_shed: Vec<Arc<Counter>>,
    /// The live stats block of the currently-served listener, plus the
    /// wakeup watermarks already folded into the counters.
    net: Mutex<NetAttachment>,
    /// Process-wide allocator counters, advanced by watermark deltas
    /// against the [`loki_obs::CountingAlloc`] statics on each scrape
    /// (zero and flat unless the bin installs the counting allocator).
    alloc_allocs: Arc<Counter>,
    alloc_frees: Arc<Counter>,
    alloc_bytes: Arc<Counter>,
    /// Wall-clock profiler samples accumulated so far, by delta.
    prof_samples: Arc<Counter>,
    /// `/proc/self` resource gauges (flat 0 off-Linux).
    proc_rss_bytes: Arc<Gauge>,
    proc_open_fds: Arc<Gauge>,
    proc_threads: Arc<Gauge>,
    /// CPU ticks by mode in [`CPU_MODES`] order, advanced by delta.
    proc_cpu_ticks: Vec<Arc<Counter>>,
    /// Watermarks for the process-global sources above.
    resources: Mutex<ResourceWatermarks>,
    access_log: AccessLog,
    tracer: Tracer,
    audit_log: AuditLog,
    /// The history layer: scrape counter, ring-buffer store, SLO engine.
    scrape_tick: AtomicU64,
    tsdb: Tsdb,
    slo: SloEngine,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Registers every family under the `loki_` prefix, with the default
    /// tracing policy (sampled + slow-threshold retention).
    pub fn new() -> ServerMetrics {
        ServerMetrics::with_trace_config(TraceConfig::default())
    }

    /// Same instruments, explicit tracing policy (pass
    /// [`TraceConfig::disabled`] to compile tracing in but record
    /// nothing — the OBS-2 overhead configuration).
    pub fn with_trace_config(trace_config: TraceConfig) -> ServerMetrics {
        ServerMetrics::with_configs(trace_config, HistoryConfig::default())
    }

    /// Fully explicit construction: tracing policy plus history-layer
    /// shape (tests shrink the burn windows to scale hours into
    /// milliseconds of scaled test time).
    pub fn with_configs(trace_config: TraceConfig, history: HistoryConfig) -> ServerMetrics {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x6c6f_6b69);
        let registry = Registry::new("loki");
        let mut requests = Vec::with_capacity(METHODS.len() * CLASSES.len());
        for method in METHODS {
            for class in CLASSES {
                requests.push(registry.counter(
                    "http_requests_total",
                    "Requests served, by method and status class",
                    &[("method", method.as_str()), ("class", class)],
                ));
            }
        }
        let submissions_by_level = PrivacyLevel::ALL
            .iter()
            .map(|level| {
                registry.counter(
                    "submissions_total",
                    "Accepted submissions, by chosen privacy level",
                    &[("level", &level.to_string())],
                )
            })
            .collect();
        let epsilon_gauges = EPSILON_STATS
            .iter()
            .map(|stat| {
                registry.gauge(
                    "ledger_epsilon",
                    "Distribution of cumulative privacy loss (tight ε at the default δ) \
                     across users with a ledger; refreshed on scrape",
                    &[("stat", stat)],
                )
            })
            .collect();
        ServerMetrics {
            requests,
            keepalive_reuses: registry.counter(
                "http_keepalive_reuses_total",
                "Requests served on an already-used keep-alive connection",
                &[],
            ),
            parse_seconds: registry.histogram(
                "http_parse_seconds",
                "Time parsing a request off the socket",
                LATENCY_BUCKETS,
                &[],
            ),
            dispatch_seconds: registry.histogram(
                "http_dispatch_seconds",
                "Time in routing + handler",
                LATENCY_BUCKETS,
                &[],
            ),
            submit_seconds: registry.histogram(
                "submit_seconds",
                "Submission round-trip inside the handler (validation through commit)",
                LATENCY_BUCKETS,
                &[],
            ),
            wal_write_seconds: registry.histogram(
                "wal_write_seconds",
                "Time serializing + writing one journal record",
                LATENCY_BUCKETS,
                &[],
            ),
            wal_fsync_seconds: registry.histogram(
                "wal_fsync_seconds",
                "Time in sync_data for one journal record",
                LATENCY_BUCKETS,
                &[],
            ),
            wal_batch_size: registry.histogram(
                "wal_batch_size",
                "Records made durable per group-commit fsync",
                BATCH_SIZE_BUCKETS,
                &[],
            ),
            wal_group_commit_seconds: registry.histogram(
                "wal_group_commit_seconds",
                "Full group-commit latency of one batch (write + fsync)",
                LATENCY_BUCKETS,
                &[],
            ),
            wal_errors: registry.counter(
                "wal_errors_total",
                "Writes refused because the journal could not make them durable",
                &[],
            ),
            conns_shed: registry.counter(
                "http_conns_shed_total",
                "Connections dropped by the accept loop because the worker queue was full",
                &[],
            ),
            store_lock_seconds: registry.histogram(
                "store_lock_seconds",
                "Submission-store write-lock hold time",
                LATENCY_BUCKETS,
                &[],
            ),
            shard_lock_seconds: SHARD_LABELS
                .iter()
                .map(|shard| {
                    registry.histogram(
                        "store_lock_seconds",
                        "Submission-store write-lock hold time",
                        LATENCY_BUCKETS,
                        &[("shard", shard)],
                    )
                })
                .collect(),
            shard_commit_seconds: SHARD_LABELS
                .iter()
                .map(|shard| {
                    registry.histogram(
                        "wal_group_commit_seconds",
                        "Full group-commit latency of one batch (write + fsync)",
                        LATENCY_BUCKETS,
                        &[("shard", shard)],
                    )
                })
                .collect(),
            legacy_requests: registry.counter(
                "http_legacy_requests_total",
                "Requests served through a legacy (un-/v1) route alias",
                &[],
            ),
            budget_rejections: registry.counter(
                "budget_rejections_total",
                "Submissions refused because the user's cumulative ε is at or over the cap",
                &[],
            ),
            submissions_by_level,
            epsilon_gauges,
            ledger_users: registry.gauge("ledger_users", "Users with a privacy ledger", &[]),
            ledger_unbounded: registry.gauge(
                "ledger_unbounded_users",
                "Users whose cumulative loss is unbounded (a raw release on record)",
                &[],
            ),
            ledger_near_cap: registry.gauge(
                "ledger_near_cap_ratio",
                "Fraction of ledgered users whose cumulative ε is at or above 80% of \
                 the configured cap (unbounded users count); 0 without a cap",
                &[],
            ),
            privacy_k_anon: K_ANON_BUCKETS
                .iter()
                .map(|k| {
                    registry.gauge(
                        "privacy_k_anon_bucket",
                        "Linkable subjects in a quasi-identifier cohort of size <= k \
                         (cumulative, Prometheus le idiom); refreshed on scrape",
                        &[("k", k)],
                    )
                })
                .collect(),
            privacy_at_risk: registry.gauge(
                "privacy_at_risk_ratio",
                "Fraction of linkable subjects unique in their quasi-identifier \
                 cohort (k = 1); the privacy-at-risk SLO input",
                &[],
            ),
            privacy_entropy: registry.gauge(
                "privacy_linkage_entropy_bits",
                "Shannon entropy of the anonymity-cohort-size distribution; \
                 higher means harder linkage",
                &[],
            ),
            privacy_subjects: registry.gauge(
                "privacy_subjects",
                "Subjects that have disclosed at least one demographic fragment",
                &[],
            ),
            agg_merge_seconds: registry.histogram(
                "agg_merge_seconds",
                "Time merging per-shard streaming state for an O(shards) read \
                 (estimates, /v1/privacy, /v1/stats)",
                LATENCY_BUCKETS,
                &[],
            ),
            net_open_conns: registry.gauge(
                "net_open_conns",
                "Open connections across the reactor shards; refreshed on scrape",
                &[],
            ),
            shard_net_open: SHARD_LABELS
                .iter()
                .map(|shard| {
                    registry.gauge(
                        "net_open_conns",
                        "Open connections across the reactor shards; refreshed on scrape",
                        &[("shard", shard)],
                    )
                })
                .collect(),
            net_wakeups: registry.counter(
                "net_reactor_wakeups_total",
                "Reactor event-loop wakeups (poll returns), across all shards",
                &[],
            ),
            shard_net_wakeups: SHARD_LABELS
                .iter()
                .map(|shard| {
                    registry.counter(
                        "net_reactor_wakeups_total",
                        "Reactor event-loop wakeups (poll returns), across all shards",
                        &[("shard", shard)],
                    )
                })
                .collect(),
            net_accepted: registry.counter(
                "net_accepted_total",
                "Connections accepted by the reactor accept loops, across all shards",
                &[],
            ),
            shard_net_accepted: SHARD_LABELS
                .iter()
                .map(|shard| {
                    registry.counter(
                        "net_accepted_total",
                        "Connections accepted by the reactor accept loops, across all shards",
                        &[("shard", shard)],
                    )
                })
                .collect(),
            net_shed: registry.counter(
                "net_conns_shed_total",
                "Connections shed by the reactor accept loops (per-shard conn cap hit)",
                &[],
            ),
            shard_net_shed: SHARD_LABELS
                .iter()
                .map(|shard| {
                    registry.counter(
                        "net_conns_shed_total",
                        "Connections shed by the reactor accept loops (per-shard conn cap hit)",
                        &[("shard", shard)],
                    )
                })
                .collect(),
            net: Mutex::new(NetAttachment::default()),
            alloc_allocs: registry.counter(
                "alloc_allocs_total",
                "Heap allocations counted by the installed counting allocator",
                &[],
            ),
            alloc_frees: registry.counter(
                "alloc_frees_total",
                "Heap frees counted by the installed counting allocator",
                &[],
            ),
            alloc_bytes: registry.counter(
                "alloc_bytes_total",
                "Heap bytes requested across counted allocations",
                &[],
            ),
            prof_samples: registry.counter(
                "prof_samples_total",
                "Wall-clock profiler samples accumulated across registered threads",
                &[],
            ),
            proc_rss_bytes: registry.gauge(
                "proc_rss_bytes",
                "Resident set size from /proc/self/status (0 off-Linux)",
                &[],
            ),
            proc_open_fds: registry.gauge(
                "proc_open_fds",
                "Open file descriptors from /proc/self/fd (0 off-Linux)",
                &[],
            ),
            proc_threads: registry.gauge(
                "proc_threads",
                "OS threads from /proc/self/stat (0 off-Linux)",
                &[],
            ),
            proc_cpu_ticks: CPU_MODES
                .iter()
                .map(|mode| {
                    registry.counter(
                        "proc_cpu_ticks_total",
                        "CPU time from /proc/self/stat in clock ticks, by mode",
                        &[("mode", mode)],
                    )
                })
                .collect(),
            resources: Mutex::new(ResourceWatermarks::default()),
            access_log: AccessLog::with_capacity(1024),
            tracer: Tracer::new(seed, trace_config),
            audit_log: AuditLog::with_capacity(4096),
            scrape_tick: AtomicU64::new(0),
            tsdb: Tsdb::new(history.tsdb),
            slo: SloEngine::new(history.slo_specs, history.alert_history),
            registry,
        }
    }

    /// The request tracer (span trees + bounded trace store).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The append-only ε-audit event stream.
    pub fn audit_log(&self) -> &AuditLog {
        &self.audit_log
    }

    /// A [`RequestObserver`] recording into this instance; install it via
    /// [`loki_net::server::ServerConfig::observer`].
    pub fn observer(self: &Arc<Self>) -> RequestObserver {
        let metrics = Arc::clone(self);
        Arc::new(move |req, resp, timing| {
            metrics.on_request(req.method, &req.path, resp.status.0, timing);
        })
    }

    /// Records one served request (counter + timing histograms + access
    /// log). The path is reduced to its route shape before logging.
    pub fn on_request(&self, method: Method, path: &str, status: u16, timing: &RequestTiming) {
        let midx = METHODS.iter().position(|m| *m == method).unwrap_or(0);
        let cidx = match status / 100 {
            2 => 0,
            3 => 1,
            4 => 2,
            _ => 3,
        };
        if let Some(counter) = self.requests.get(midx * CLASSES.len() + cidx) {
            counter.inc();
        }
        self.parse_seconds.observe_duration(timing.parse);
        self.dispatch_seconds.observe_duration(timing.dispatch);
        if timing.reused {
            self.keepalive_reuses.inc();
        }
        self.access_log.record(
            method.as_str(),
            &route_shape(path),
            status,
            timing.parse.as_micros() as u64,
            timing.dispatch.as_micros() as u64,
            timing.reused,
        );
    }

    /// Counts one budget-cap rejection.
    pub fn on_budget_rejection(&self) {
        self.budget_rejections.inc();
    }

    /// Counts one accepted submission at `level`.
    pub fn on_submission_stored(&self, level: PrivacyLevel) {
        let idx = PrivacyLevel::ALL.iter().position(|l| *l == level).unwrap_or(0);
        if let Some(counter) = self.submissions_by_level.get(idx) {
            counter.inc();
        }
    }

    /// Records a submission-store write-lock hold time.
    pub fn observe_store_lock(&self, held: Duration) {
        self.store_lock_seconds.observe_duration(held);
    }

    /// Records a submission-store write-lock hold time against both the
    /// aggregate family and the `shard` child (clamped into the label
    /// pool), so the exact-total assertions and the per-shard view stay
    /// consistent.
    pub fn observe_store_lock_sharded(&self, held: Duration, shard: usize) {
        self.store_lock_seconds.observe_duration(held);
        if let Some(h) = self.shard_lock_seconds.get(shard.min(SHARD_LABELS.len() - 1)) {
            h.observe_duration(held);
        }
    }

    /// Counts one request served through a legacy (un-`/v1`) alias.
    pub fn on_legacy_request(&self) {
        self.legacy_requests.inc();
    }

    /// Records one journal append's write and fsync phases.
    pub fn observe_wal_append(&self, timing: &crate::wal::AppendTiming) {
        self.wal_write_seconds.observe_duration(timing.write);
        self.wal_fsync_seconds.observe_duration(timing.fsync);
    }

    /// Records one group-commit batch outcome: a committed batch feeds
    /// the batch-size and latency histograms (the per-phase write/fsync
    /// families keep working — each batch is one shared append); a failed
    /// batch counts every refused write in `loki_wal_errors_total`.
    pub fn on_wal_batch(&self, event: &crate::wal::BatchEvent) {
        match event {
            crate::wal::BatchEvent::Committed(t) => {
                self.wal_batch_size.observe(t.records as f64);
                self.wal_group_commit_seconds.observe_with_exemplar(
                    (t.write + t.fsync).as_secs_f64(),
                    t.exemplar_trace.unwrap_or(0),
                );
                self.wal_write_seconds.observe_duration(t.write);
                self.wal_fsync_seconds.observe_duration(t.fsync);
            }
            crate::wal::BatchEvent::Failed { records } => {
                self.wal_errors.add(*records as u64);
            }
        }
    }

    /// [`ServerMetrics::on_wal_batch`] for a per-shard WAL lane: the
    /// aggregate families record as usual, and a committed batch also
    /// lands in the lane's `wal_group_commit_seconds{shard=…}` child
    /// (clamped into the label pool).
    pub fn on_wal_batch_lane(&self, event: &crate::wal::BatchEvent, lane: usize) {
        self.on_wal_batch(event);
        if let crate::wal::BatchEvent::Committed(t) = event {
            if let Some(h) = self.shard_commit_seconds.get(lane.min(SHARD_LABELS.len() - 1)) {
                h.observe_duration(t.write + t.fsync);
            }
        }
    }

    /// Counts one shed connection.
    pub fn on_conn_shed(&self) {
        self.conns_shed.inc();
    }

    /// A [`ShedObserver`] recording into this instance; install it via
    /// [`loki_net::server::ServerConfig::shed_observer`].
    pub fn shed_observer(self: &Arc<Self>) -> ShedObserver {
        let metrics = Arc::clone(self);
        Arc::new(move || metrics.on_conn_shed())
    }

    /// Records a full submission round-trip, exemplar-tagged with the
    /// request's trace id when the request was traced (`0` = untraced).
    pub fn observe_submit(&self, elapsed: Duration, trace_id: u64) {
        self.submit_seconds
            .observe_with_exemplar(elapsed.as_secs_f64(), trace_id);
    }

    /// Refreshes the ledger ε gauges from the accountant (called on
    /// scrape, not on every submission — the summary walks every
    /// ledger). `cap` is the server's cumulative-ε budget, used for the
    /// near-cap headroom ratio; without one the ratio is 0.
    pub fn refresh_ledger_gauges(&self, accountant: &Accountant, cap: Option<f64>) {
        let summary = accountant.epsilon_summary(Delta::new(loki_dp::DEFAULT_DELTA));
        let values = [summary.p50, summary.p90, summary.p99, summary.mean, summary.max];
        for (gauge, value) in self.epsilon_gauges.iter().zip(values) {
            gauge.set(value);
        }
        self.ledger_users.set(summary.users as f64);
        self.ledger_unbounded.set(summary.unbounded as f64);
        let near_cap = match cap {
            Some(cap) if cap > 0.0 => {
                // O(1) once the threshold is registered: the accountant
                // maintains the crossing counters inside `record`, so no
                // per-scrape ledger walk remains on this path (the first
                // scrape — or a cap change — pays one exact walk).
                accountant
                    .near_cap_counts(0.8 * cap, Delta::new(loki_dp::DEFAULT_DELTA))
                    .ratio()
            }
            _ => 0.0,
        };
        self.ledger_near_cap.set(near_cap);
    }

    /// Refreshes the privacy-observatory gauges from an identity-free
    /// summary (bucket counts only — the summary type cannot carry a
    /// subject id or quasi-identifier value by construction).
    pub fn refresh_privacy_gauges(&self, privacy: &crate::agg::PrivacySummary) {
        for (gauge, label) in self.privacy_k_anon.iter().zip(K_ANON_BUCKETS) {
            let le = match label {
                "+Inf" => u64::MAX,
                k => k.parse().unwrap_or(u64::MAX),
            };
            let cumulative: u64 = privacy
                .k
                .histogram
                .iter()
                .filter(|(size, _)| **size <= le)
                .map(|(_, members)| *members)
                .sum();
            gauge.set(cumulative as f64);
        }
        self.privacy_at_risk.set(privacy.k.at_risk_ratio());
        self.privacy_entropy.set(privacy.k.entropy_bits);
        self.privacy_subjects.set(privacy.subjects as f64);
    }

    /// Records one observatory merge (the O(shards) read path).
    pub fn observe_agg_merge(&self, elapsed: Duration) {
        self.agg_merge_seconds.observe_duration(elapsed);
    }

    /// Points the `loki_net_*` families at a live reactor stats block
    /// (normally the serving listener's, via `ServerHandle::stats()`).
    /// Re-attaching — e.g. when a test embeds several servers in turn —
    /// resets the wakeup watermarks so the counters only ever advance.
    pub fn attach_net_stats(&self, stats: Arc<NetStats>) {
        self.reset_net_attachment(stats);
        self.refresh_net_gauges();
    }

    /// Swaps the attached stats block and zeroes the wakeup watermarks
    /// (its own fn so the `net` guard is provably released before
    /// [`ServerMetrics::refresh_net_gauges`] re-locks).
    fn reset_net_attachment(&self, stats: Arc<NetStats>) {
        if let Ok(mut net) = self.net.lock() {
            net.stats = Some(stats);
            net.seen = [0; SHARD_LABELS.len()];
            net.seen_total = 0;
            net.seen_accepted = [0; SHARD_LABELS.len()];
            net.seen_accepted_total = 0;
            net.seen_shed = [0; SHARD_LABELS.len()];
            net.seen_shed_total = 0;
        }
    }

    /// Refreshes the `loki_net_*` families from the attached stats
    /// block: gauges are overwritten, wakeup counters advance by delta.
    /// A no-op until [`ServerMetrics::attach_net_stats`] is called.
    pub fn refresh_net_gauges(&self) {
        let Ok(mut net) = self.net.lock() else {
            return;
        };
        let Some(stats) = net.stats.clone() else {
            return;
        };
        let mut open = [0u64; SHARD_LABELS.len()];
        let mut wakeups = [0u64; SHARD_LABELS.len()];
        let mut accepted = [0u64; SHARD_LABELS.len()];
        let mut shed = [0u64; SHARD_LABELS.len()];
        for shard in 0..stats.shards() {
            let label = shard.min(SHARD_LABELS.len() - 1);
            if let Some(slot) = open.get_mut(label) {
                *slot += stats.open_conns_for(shard);
            }
            if let Some(slot) = wakeups.get_mut(label) {
                *slot += stats.wakeups_for(shard);
            }
            if let Some(slot) = accepted.get_mut(label) {
                *slot += stats.accepted_for(shard);
            }
            if let Some(slot) = shed.get_mut(label) {
                *slot += stats.shed_for(shard);
            }
        }
        self.net_open_conns.set(stats.open_conns() as f64);
        for (gauge, count) in self.shard_net_open.iter().zip(open) {
            gauge.set(count as f64);
        }
        let total = stats.wakeups();
        self.net_wakeups.add(total.saturating_sub(net.seen_total));
        net.seen_total = total;
        for ((counter, seen), current) in self
            .shard_net_wakeups
            .iter()
            .zip(net.seen.iter_mut())
            .zip(wakeups)
        {
            counter.add(current.saturating_sub(*seen));
            *seen = current;
        }
        let total = stats.accepted();
        self.net_accepted.add(total.saturating_sub(net.seen_accepted_total));
        net.seen_accepted_total = total;
        for ((counter, seen), current) in self
            .shard_net_accepted
            .iter()
            .zip(net.seen_accepted.iter_mut())
            .zip(accepted)
        {
            counter.add(current.saturating_sub(*seen));
            *seen = current;
        }
        let total = stats.shed_total();
        self.net_shed.add(total.saturating_sub(net.seen_shed_total));
        net.seen_shed_total = total;
        for ((counter, seen), current) in self
            .shard_net_shed
            .iter()
            .zip(net.seen_shed.iter_mut())
            .zip(shed)
        {
            counter.add(current.saturating_sub(*seen));
            *seen = current;
        }
    }

    /// Refreshes the process-resource families: `/proc/self` gauges are
    /// overwritten, allocator / profiler / CPU-tick counters advance by
    /// watermark delta against their process-global sources. Safe to
    /// call with no counting allocator installed (the statics read 0).
    pub fn refresh_resource_gauges(&self) {
        let stats = loki_obs::ProcStats::read();
        self.proc_rss_bytes.set(stats.rss_bytes.unwrap_or(0) as f64);
        self.proc_open_fds.set(stats.open_fds.unwrap_or(0) as f64);
        self.proc_threads.set(stats.threads.unwrap_or(0) as f64);
        let Ok(mut seen) = self.resources.lock() else {
            return;
        };
        let seen = &mut *seen;
        let allocs = loki_obs::CountingAlloc::allocs();
        self.alloc_allocs.add(allocs.saturating_sub(seen.allocs));
        seen.allocs = allocs;
        let frees = loki_obs::CountingAlloc::frees();
        self.alloc_frees.add(frees.saturating_sub(seen.frees));
        seen.frees = frees;
        let bytes = loki_obs::CountingAlloc::bytes();
        self.alloc_bytes.add(bytes.saturating_sub(seen.bytes));
        seen.bytes = bytes;
        let samples = loki_obs::prof::snapshot().total_samples();
        self.prof_samples.add(samples.saturating_sub(seen.samples));
        seen.samples = samples;
        let utime = stats.utime_ticks.unwrap_or(0);
        let stime = stats.stime_ticks.unwrap_or(0);
        for (counter, (current, seen)) in self.proc_cpu_ticks.iter().zip([
            (utime, &mut seen.utime),
            (stime, &mut seen.stime),
        ]) {
            counter.add(current.saturating_sub(*seen));
            *seen = current;
        }
    }

    /// One self-scrape: refresh the derived gauges, snapshot every
    /// registered family straight from the atomic cells into the tsdb,
    /// and run the SLO state machines. Returns the tick it recorded.
    pub fn scrape(
        &self,
        accountant: &Accountant,
        cap: Option<f64>,
        privacy: &crate::agg::PrivacySummary,
    ) -> u64 {
        self.refresh_ledger_gauges(accountant, cap);
        self.refresh_privacy_gauges(privacy);
        self.refresh_net_gauges();
        self.refresh_resource_gauges();
        let tick = self.scrape_tick.fetch_add(1, Ordering::Relaxed);
        self.tsdb.ingest(tick, &self.registry.snapshot());
        self.slo.evaluate(tick, &self.tsdb);
        tick
    }

    /// The in-process time-series store.
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    /// The SLO engine (statuses, alert states, transition history).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// Number of self-scrapes recorded so far.
    pub fn scrapes(&self) -> u64 {
        self.scrape_tick.load(Ordering::Relaxed)
    }

    /// The Prometheus text exposition of every family.
    pub fn render_exposition(&self) -> String {
        self.registry.render()
    }

    /// The bounded access log.
    pub fn access_log(&self) -> &AccessLog {
        &self.access_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_dp::accountant::ReleaseKind;

    #[test]
    fn route_shape_masks_parameters() {
        assert_eq!(route_shape("/v1/surveys/17/results/0"), "/v1/surveys/:p/results/:p");
        assert_eq!(route_shape("/ledger/alice"), "/ledger/:p");
        assert_eq!(route_shape("/v1/metrics"), "/v1/metrics");
        assert_eq!(route_shape("/v1/traces/00ab12"), "/v1/traces/:p");
        assert_eq!(route_shape("/v1/healthz"), "/v1/healthz");
        assert_eq!(route_shape("/"), "/");
        assert_eq!(route_shape(""), "/");
    }

    #[test]
    fn request_observation_renders_expected_families() {
        let m = ServerMetrics::new();
        let timing = RequestTiming {
            parse: Duration::from_micros(30),
            dispatch: Duration::from_micros(200),
            reused: true,
        };
        m.on_request(Method::Get, "/v1/ledger/u7", 200, &timing);
        m.on_request(Method::Post, "/v1/surveys/1/responses", 403, &timing);
        let text = m.render_exposition();
        assert!(
            text.contains("loki_http_requests_total{method=\"GET\",class=\"2xx\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("loki_http_requests_total{method=\"POST\",class=\"4xx\"} 1"),
            "{text}"
        );
        assert!(text.contains("loki_http_keepalive_reuses_total 2"), "{text}");
        assert!(text.contains("loki_http_parse_seconds_bucket"), "{text}");
        assert!(text.contains("loki_http_dispatch_seconds_count 2"), "{text}");
        // The access log never retains the raw user-bearing path.
        let tail = m.access_log().render_tail(10);
        assert!(tail.contains("path=/v1/ledger/:p"), "{tail}");
        assert!(!tail.contains("u7"), "{tail}");
    }

    #[test]
    fn submit_path_instruments() {
        let m = ServerMetrics::new();
        m.on_budget_rejection();
        m.on_submission_stored(PrivacyLevel::Medium);
        m.observe_submit(Duration::from_micros(500), 0xab);
        m.observe_store_lock(Duration::from_micros(5));
        m.observe_wal_append(&crate::wal::AppendTiming {
            write: Duration::from_micros(40),
            fsync: Duration::from_millis(2),
        });
        let text = m.render_exposition();
        assert!(text.contains("loki_budget_rejections_total 1"), "{text}");
        assert!(
            text.contains("loki_submissions_total{level=\"medium\"} 1"),
            "{text}"
        );
        assert!(text.contains("loki_submit_seconds_count 1"), "{text}");
        assert!(
            text.contains("# EXEMPLAR loki_submit_seconds trace_id=00000000000000ab"),
            "{text}"
        );
        assert!(text.contains("loki_store_lock_seconds_count 1"), "{text}");
        assert!(text.contains("loki_wal_fsync_seconds_count 1"), "{text}");
        assert!(text.contains("loki_wal_write_seconds_count 1"), "{text}");
    }

    #[test]
    fn wal_batch_events_feed_group_commit_families() {
        let m = ServerMetrics::new();
        m.on_wal_batch(&crate::wal::BatchEvent::Committed(crate::wal::BatchTiming {
            write: Duration::from_micros(80),
            fsync: Duration::from_millis(3),
            records: 7,
            exemplar_trace: Some(0xbeef),
        }));
        m.on_wal_batch(&crate::wal::BatchEvent::Failed { records: 4 });
        let text = m.render_exposition();
        assert!(text.contains("loki_wal_batch_size_count 1"), "{text}");
        assert!(text.contains("loki_wal_batch_size_sum 7"), "{text}");
        assert!(text.contains("loki_wal_group_commit_seconds_count 1"), "{text}");
        assert!(
            text.contains("# EXEMPLAR loki_wal_group_commit_seconds trace_id=000000000000beef"),
            "{text}"
        );
        // A committed batch is one shared append for the phase families.
        assert!(text.contains("loki_wal_write_seconds_count 1"), "{text}");
        assert!(text.contains("loki_wal_fsync_seconds_count 1"), "{text}");
        assert!(text.contains("loki_wal_errors_total 4"), "{text}");
    }

    #[test]
    fn sharded_lock_observation_feeds_aggregate_and_child() {
        let m = ServerMetrics::new();
        m.observe_store_lock_sharded(Duration::from_micros(5), 2);
        // Out-of-pool shard indices clamp to the last label.
        m.observe_store_lock_sharded(Duration::from_micros(5), 99);
        let text = m.render_exposition();
        assert!(text.contains("loki_store_lock_seconds_count 2"), "{text}");
        assert!(
            text.contains("loki_store_lock_seconds_count{shard=\"2\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("loki_store_lock_seconds_count{shard=\"7\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("loki_store_lock_seconds_count{shard=\"0\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn lane_batch_events_feed_per_shard_commit_family() {
        let m = ServerMetrics::new();
        m.on_wal_batch_lane(
            &crate::wal::BatchEvent::Committed(crate::wal::BatchTiming {
                write: Duration::from_micros(80),
                fsync: Duration::from_millis(3),
                records: 3,
                exemplar_trace: None,
            }),
            1,
        );
        m.on_wal_batch_lane(&crate::wal::BatchEvent::Failed { records: 2 }, 1);
        let text = m.render_exposition();
        // Aggregates recorded exactly as the unlane'd path would.
        assert!(text.contains("loki_wal_group_commit_seconds_count 1"), "{text}");
        assert!(text.contains("loki_wal_batch_size_sum 3"), "{text}");
        assert!(text.contains("loki_wal_errors_total 2"), "{text}");
        // The lane child got only the committed batch.
        assert!(
            text.contains("loki_wal_group_commit_seconds_count{shard=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("loki_wal_group_commit_seconds_count{shard=\"0\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn legacy_requests_counted_separately() {
        let m = ServerMetrics::new();
        m.on_legacy_request();
        m.on_legacy_request();
        let text = m.render_exposition();
        assert!(text.contains("loki_http_legacy_requests_total 2"), "{text}");
    }

    #[test]
    fn admin_route_segments_are_literals() {
        assert_eq!(route_shape("/v1/admin/shards"), "/v1/admin/shards");
        assert_eq!(route_shape("/admin/shards"), "/admin/shards");
    }

    #[test]
    fn shed_observer_counts_into_conns_shed() {
        let m = Arc::new(ServerMetrics::new());
        let observer = m.shed_observer();
        observer();
        observer();
        let text = m.render_exposition();
        assert!(text.contains("loki_http_conns_shed_total 2"), "{text}");
    }

    #[test]
    fn ledger_gauges_refresh_from_accountant() {
        let m = ServerMetrics::new();
        let acc = Accountant::new();
        acc.record(
            "a",
            "t",
            ReleaseKind::Gaussian {
                sigma: 2.0,
                sensitivity: 4.0,
            },
        );
        acc.record("b", "t", ReleaseKind::Raw);
        m.refresh_ledger_gauges(&acc, None);
        let text = m.render_exposition();
        assert!(text.contains("loki_ledger_users 2"), "{text}");
        assert!(text.contains("loki_ledger_unbounded_users 1"), "{text}");
        assert!(
            text.contains("loki_ledger_epsilon{stat=\"max\"} +Inf"),
            "{text}"
        );
        assert!(text.contains("loki_ledger_epsilon{stat=\"p50\"}"), "{text}");
        // No cap configured → the near-cap ratio reads 0.
        assert!(text.contains("loki_ledger_near_cap_ratio 0"), "{text}");
    }

    #[test]
    fn near_cap_ratio_counts_tight_and_unbounded_users() {
        let m = ServerMetrics::new();
        let acc = Accountant::new();
        // One user far below the cap, one unbounded (counts as near).
        acc.record(
            "a",
            "t",
            ReleaseKind::Gaussian {
                sigma: 100.0,
                sensitivity: 1.0,
            },
        );
        acc.record("b", "t", ReleaseKind::Raw);
        m.refresh_ledger_gauges(&acc, Some(50.0));
        let text = m.render_exposition();
        assert!(text.contains("loki_ledger_near_cap_ratio 0.5"), "{text}");
    }

    #[test]
    fn net_families_refresh_from_a_live_reactor() {
        use loki_net::http::{Response, StatusCode};
        use loki_net::router::Router;
        use loki_net::server::{Server, ServerConfig};
        use std::io::{Read, Write};

        let m = ServerMetrics::new();
        let mut r = Router::new();
        r.get("/ping", |_, _| Response::text(StatusCode::OK, "pong"));
        let h = Server::spawn("127.0.0.1:0", r, ServerConfig::default()).unwrap();
        // One keep-alive connection held open so the gauge has something
        // to count.
        let mut s = std::net::TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        let mut byte = [0u8; 1];
        s.read_exact(&mut byte).unwrap();

        m.attach_net_stats(h.stats());
        let text = m.render_exposition();
        assert!(text.contains("loki_net_open_conns 1"), "{text}");
        assert!(text.contains("loki_net_open_conns{shard="), "{text}");
        assert!(!text.contains("loki_net_reactor_wakeups_total 0\n"), "{text}");

        // Refreshing twice must not double-count wakeups: the counter
        // advances by delta against the monotone source.
        m.refresh_net_gauges();
        let text = m.render_exposition();
        let rendered: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("loki_net_reactor_wakeups_total "))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(
            rendered <= h.stats().wakeups(),
            "counter {rendered} ran ahead of source {}",
            h.stats().wakeups()
        );
        drop(s);
        h.shutdown();
    }

    #[test]
    fn net_families_are_inert_until_attached() {
        let m = ServerMetrics::new();
        m.refresh_net_gauges();
        let text = m.render_exposition();
        assert!(text.contains("loki_net_open_conns 0"), "{text}");
        assert!(text.contains("loki_net_reactor_wakeups_total 0"), "{text}");
        assert!(text.contains("loki_net_accepted_total 0"), "{text}");
        assert!(text.contains("loki_net_conns_shed_total 0"), "{text}");
    }

    /// Exposition-shape regression for the per-shard accept/shed
    /// children (PR 9 satellite): the families must render one child per
    /// label in [`SHARD_LABELS`] alongside the exact aggregate, and the
    /// accepted deltas must land on the shard that did the accepting.
    #[test]
    fn accept_and_shed_families_render_per_shard_children() {
        use loki_net::http::{Response, StatusCode};
        use loki_net::router::Router;
        use loki_net::server::{Server, ServerConfig};
        use std::io::{Read, Write};

        let m = ServerMetrics::new();
        let mut r = Router::new();
        r.get("/ping", |_, _| Response::text(StatusCode::OK, "pong"));
        let mut cfg = ServerConfig::default();
        cfg.workers = 1; // one shard → the child that must carry the count
        let h = Server::spawn("127.0.0.1:0", r, cfg).unwrap();
        let mut s = std::net::TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        let mut byte = [0u8; 1];
        s.read_exact(&mut byte).unwrap();

        m.attach_net_stats(h.stats());
        let text = m.render_exposition();
        // Shape: every shard label present for both families.
        for shard in SHARD_LABELS {
            assert!(
                text.contains(&format!("loki_net_accepted_total{{shard=\"{shard}\"}}")),
                "missing accepted child {shard}: {text}"
            );
            assert!(
                text.contains(&format!("loki_net_conns_shed_total{{shard=\"{shard}\"}}")),
                "missing shed child {shard}: {text}"
            );
        }
        // Values: the single accept landed on shard 0 and the aggregate.
        assert!(text.contains("loki_net_accepted_total 1"), "{text}");
        assert!(text.contains("loki_net_accepted_total{shard=\"0\"} 1"), "{text}");
        assert!(text.contains("loki_net_conns_shed_total 0"), "{text}");

        // Refreshing again must not double-count (watermark deltas).
        m.refresh_net_gauges();
        let text = m.render_exposition();
        assert!(text.contains("loki_net_accepted_total 1"), "{text}");
        drop(s);
        h.shutdown();
    }

    #[test]
    fn resource_families_refresh_by_watermark_delta() {
        let m = ServerMetrics::new();
        m.refresh_resource_gauges();
        let text = m.render_exposition();
        // The allocator counters exist even when the counting allocator
        // is not installed as #[global_allocator] in the test bin; the
        // counting statics may still be zero, so assert shape only.
        assert!(text.contains("loki_alloc_allocs_total"), "{text}");
        assert!(text.contains("loki_alloc_frees_total"), "{text}");
        assert!(text.contains("loki_alloc_bytes_total"), "{text}");
        assert!(text.contains("loki_prof_samples_total"), "{text}");
        assert!(text.contains("loki_proc_cpu_ticks_total{mode=\"user\"}"), "{text}");
        assert!(text.contains("loki_proc_cpu_ticks_total{mode=\"system\"}"), "{text}");
        if loki_obs::ProcStats::available() {
            let rss: f64 = text
                .lines()
                .find_map(|l| l.strip_prefix("loki_proc_rss_bytes "))
                .and_then(|v| v.parse().ok())
                .unwrap();
            assert!(rss > 0.0, "{text}");
            let threads: f64 = text
                .lines()
                .find_map(|l| l.strip_prefix("loki_proc_threads "))
                .and_then(|v| v.parse().ok())
                .unwrap();
            assert!(threads >= 1.0, "{text}");
        }
        // Idempotence: a second refresh must not inflate the counters
        // faster than the process-global sources themselves grow.
        let parse = |text: &str, prefix: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix(prefix))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        let before = parse(&text, "loki_alloc_allocs_total ");
        m.refresh_resource_gauges();
        let after = parse(&m.render_exposition(), "loki_alloc_allocs_total ");
        assert!(
            after <= loki_obs::CountingAlloc::allocs(),
            "counter {after} ran ahead of source"
        );
        assert!(after >= before, "counter went backwards: {before} -> {after}");
    }

    #[test]
    fn scrape_feeds_tsdb_and_slo_engine() {
        let m = ServerMetrics::new();
        let acc = Accountant::new();
        let timing = RequestTiming {
            parse: Duration::from_micros(30),
            dispatch: Duration::from_micros(200),
            reused: false,
        };
        let privacy = crate::agg::PrivacyObservatory::new().summary();
        m.on_request(Method::Get, "/v1/stats", 200, &timing);
        assert_eq!(m.scrape(&acc, None, &privacy), 0);
        m.on_request(Method::Get, "/v1/stats", 200, &timing);
        assert_eq!(m.scrape(&acc, None, &privacy), 1);
        assert_eq!(m.scrapes(), 2);
        // The counter family landed as per-tick deltas.
        let series = m.tsdb().query("loki_http_requests_total", "class=\"2xx\"", 0, 1);
        let total: f64 = series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|p| p.last * p.count as f64)
            .sum();
        assert_eq!(total, 2.0, "{series:?}");
        // Histogram families fanned out; every configured SLO has a
        // status and nothing fires on two healthy scrapes.
        assert!(!m.tsdb().query("loki_http_dispatch_seconds_count", "", 0, 1).is_empty());
        let statuses = m.slo().statuses();
        assert_eq!(statuses.len(), 4, "{statuses:?}");
        assert!(!m.slo().any_firing());
    }

    #[test]
    fn privacy_gauges_render_cumulative_buckets() {
        let m = ServerMetrics::new();
        // Hand-built summary: 3 subjects in one cohort of 3, plus 2
        // singletons → at-risk ratio 2/5, cumulative buckets 2 at k≤1
        // and k≤2, 5 from k≤4 up.
        let k = loki_attack::stream::KAnonymity::from_cohort_sizes([3, 1, 1]);
        let privacy = crate::agg::PrivacySummary {
            k,
            subjects: 7,
            fragments_by_survey: std::collections::BTreeMap::new(),
        };
        m.refresh_privacy_gauges(&privacy);
        let text = m.render_exposition();
        assert!(text.contains("loki_privacy_k_anon_bucket{k=\"1\"} 2"), "{text}");
        assert!(text.contains("loki_privacy_k_anon_bucket{k=\"2\"} 2"), "{text}");
        assert!(text.contains("loki_privacy_k_anon_bucket{k=\"4\"} 5"), "{text}");
        assert!(text.contains("loki_privacy_k_anon_bucket{k=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("loki_privacy_at_risk_ratio 0.4"), "{text}");
        assert!(text.contains("loki_privacy_subjects 7"), "{text}");
        assert!(text.contains("loki_privacy_linkage_entropy_bits"), "{text}");
        m.observe_agg_merge(Duration::from_micros(20));
        let text = m.render_exposition();
        assert!(text.contains("loki_agg_merge_seconds_count 1"), "{text}");
    }
}
