//! Snapshot persistence: the state's durable core (surveys + submissions)
//! serialized to a JSON file.
//!
//! The accountant is *not* snapshotted directly — it is reconstructed
//! from the stored submissions' declared releases on load, so the ledger
//! can never drift from the data that justifies it.
//!
//! This module only ever talks to the [`AppState`] facade, never to
//! individual shards: [`AppState::surveys`] merges every shard in id
//! order and submissions are walked survey-by-survey, so the snapshot
//! bytes are identical no matter how many shards the source state ran
//! with — a 1-shard and an 8-shard store that saw the same operations
//! produce byte-equal files (pinned by a test below).

use crate::store::{AppState, StoredSubmission};
use loki_survey::survey::Survey;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk snapshot format.
#[derive(Debug, Serialize, Deserialize)]
struct Snapshot {
    /// Format version for forward compatibility.
    version: u32,
    surveys: Vec<Survey>,
    submissions: Vec<SnapshotSubmission>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SnapshotSubmission {
    submission: StoredSubmission,
    releases: Vec<(String, loki_dp::accountant::ReleaseKind)>,
}

/// Errors while saving/loading snapshots.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Format(e) => write!(f, "format: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Saves the state to a JSON snapshot.
///
/// The client-declared releases are re-derived per submission from the
/// submission's own ledger view: we reconstruct minimal Gaussian entries
/// from the stored privacy level, which is what the server would have
/// recorded. (Submissions store everything the accountant needs.)
///
/// Iteration order is the facade's deterministic merged order (surveys
/// ascending by id, each survey's submissions in arrival order), so the
/// output is independent of the store's shard count.
pub fn save(state: &AppState, path: &Path) -> Result<(), PersistError> {
    let surveys = state.surveys();
    let mut submissions = Vec::new();
    for survey in &surveys {
        for sub in state.submissions(survey.id) {
            let releases = releases_for(survey, &sub);
            submissions.push(SnapshotSubmission {
                submission: sub,
                releases,
            });
        }
    }
    let snapshot = Snapshot {
        version: 1,
        surveys,
        submissions,
    };
    let json =
        serde_json::to_vec_pretty(&snapshot).map_err(|e| PersistError::Format(e.to_string()))?;
    // Write-then-rename for atomicity.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a snapshot into a fresh state, replaying submissions through the
/// normal ingest path (so all invariants re-apply).
pub fn load(path: &Path) -> Result<AppState, PersistError> {
    let bytes = std::fs::read(path)?;
    let snapshot: Snapshot =
        serde_json::from_slice(&bytes).map_err(|e| PersistError::Format(e.to_string()))?;
    if snapshot.version != 1 {
        return Err(PersistError::Format(format!(
            "unsupported snapshot version {}",
            snapshot.version
        )));
    }
    let state = AppState::new();
    for survey in snapshot.surveys {
        match state.add_survey(survey) {
            Ok(true) => {}
            Ok(false) => return Err(PersistError::Format("duplicate survey id".into())),
            Err(e) => return Err(PersistError::Format(format!("replay failed: {e}"))),
        }
    }
    for item in snapshot.submissions {
        let SnapshotSubmission {
            submission,
            releases,
        } = item;
        state
            .submit(
                &submission.user.clone(),
                submission.level,
                submission.response,
                &releases,
            )
            .map_err(|e| PersistError::Format(format!("replay failed: {e}")))?;
    }
    Ok(state)
}

/// The ledger entries a submission implies, derived from its level and
/// the survey's question kinds — identical to what the client declared.
fn releases_for(
    survey: &Survey,
    sub: &StoredSubmission,
) -> Vec<(String, loki_dp::accountant::ReleaseKind)> {
    use loki_dp::accountant::ReleaseKind;
    use loki_survey::question::QuestionKind;
    let level = sub.level;
    survey
        .questions
        .iter()
        .filter_map(|q| {
            let tag = format!("{}/{}", survey.id, q.id);
            let kind = match &q.kind {
                QuestionKind::FreeText => return None,
                QuestionKind::MultipleChoice { .. } => match level.randomized_response_epsilon() {
                    Some(eps) => ReleaseKind::Pure { epsilon: eps },
                    None => ReleaseKind::Raw,
                },
                QuestionKind::Rating { .. } | QuestionKind::Numeric { .. } => {
                    // Rating/Numeric kinds carry a range by construction;
                    // a survey that somehow lost it contributes no ledger
                    // entry rather than aborting the whole replay.
                    let range = q.kind.numeric_range()?;
                    if level == loki_core::privacy_level::PrivacyLevel::None {
                        ReleaseKind::Raw
                    } else {
                        ReleaseKind::Gaussian {
                            sigma: level.sigma_for_range(range),
                            sensitivity: range,
                        }
                    }
                }
            };
            Some((tag, kind))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_core::privacy_level::PrivacyLevel;
    use loki_survey::question::{Answer, QuestionKind};
    use loki_survey::response::Response;
    use loki_survey::survey::{SurveyBuilder, SurveyId};
    use loki_survey::QuestionId;

    fn populated_state() -> AppState {
        let state = AppState::new();
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        b.question("rate", QuestionKind::likert5(), false);
        state.add_survey(b.build().unwrap()).unwrap();
        for (i, level) in [PrivacyLevel::Low, PrivacyLevel::High].iter().enumerate() {
            let user = format!("u{i}");
            let mut r = Response::new(user.clone(), SurveyId(1));
            r.answer(QuestionId(0), Answer::Obfuscated(4.0 + i as f64));
            state
                .submit(
                    &user,
                    *level,
                    r,
                    &[(
                        "survey-1/q0".into(),
                        loki_dp::accountant::ReleaseKind::Gaussian {
                            sigma: level.sigma(),
                            sensitivity: 4.0,
                        },
                    )],
                )
                .unwrap();
        }
        state
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("loki-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");

        let state = populated_state();
        save(&state, &path).unwrap();
        let loaded = load(&path).unwrap();

        assert_eq!(loaded.surveys().len(), 1);
        assert_eq!(loaded.submission_count(SurveyId(1)), 2);
        // Ledger reconstructed: both users have one recorded release.
        assert_eq!(loaded.accountant.releases_of("u0"), 1);
        assert_eq!(loaded.accountant.releases_of("u1"), 1);
        // Loss ordering preserved (low privacy → higher ε).
        assert!(
            loaded.user_loss("u0").epsilon.value() > loaded.user_loss("u1").epsilon.value()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bytes_are_shard_count_invariant() {
        let dir = std::env::temp_dir().join(format!("loki-persist-shards-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // The same operation sequence against a single-shard and a
        // many-shard store must serialize to byte-identical snapshots.
        let mut bytes = Vec::new();
        for (i, shards) in [1usize, 8].iter().enumerate() {
            let state = AppState::with_shards(*shards);
            for id in [5u64, 2, 9, 1] {
                let mut b = SurveyBuilder::new(SurveyId(id), format!("s{id}"));
                b.question("rate", QuestionKind::likert5(), false);
                state.add_survey(b.build().unwrap()).unwrap();
                let user = format!("u{id}");
                let mut r = Response::new(user.clone(), SurveyId(id));
                r.answer(QuestionId(0), Answer::Obfuscated(3.5));
                state
                    .submit(
                        &user,
                        PrivacyLevel::Medium,
                        r,
                        &[(
                            format!("survey-{id}/q0"),
                            loki_dp::accountant::ReleaseKind::Gaussian {
                                sigma: 1.0,
                                sensitivity: 4.0,
                            },
                        )],
                    )
                    .unwrap();
            }
            let path = dir.join(format!("snap-{i}.json"));
            save(&state, &path).unwrap();
            bytes.push(std::fs::read(&path).unwrap());
        }
        assert_eq!(bytes[0], bytes[1], "snapshot must not depend on shard count");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_file_fails() {
        assert!(matches!(
            load(Path::new("/nonexistent/loki.json")),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn load_garbage_fails() {
        let dir = std::env::temp_dir().join(format!("loki-garbage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, b"{broken").unwrap();
        assert!(matches!(load(&path), Err(PersistError::Format(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn releases_for_matches_level() {
        let mut b = SurveyBuilder::new(SurveyId(2), "mixed");
        b.question("rate", QuestionKind::likert5(), false);
        b.question(
            "pick",
            QuestionKind::MultipleChoice {
                options: vec!["a".into(), "b".into()],
            },
            false,
        );
        b.question("say", QuestionKind::FreeText, false);
        let survey = b.build().unwrap();
        let mut r = Response::new("u", SurveyId(2));
        r.answer(QuestionId(0), Answer::Obfuscated(3.0));
        r.answer(QuestionId(1), Answer::Choice(0));
        r.answer(QuestionId(2), Answer::Text("x".into()));
        let sub = StoredSubmission {
            user: "u".into(),
            level: PrivacyLevel::Medium,
            response: r,
        };
        let releases = releases_for(&survey, &sub);
        assert_eq!(releases.len(), 2, "free text contributes no release");
        assert!(matches!(
            releases[0].1,
            loki_dp::accountant::ReleaseKind::Gaussian { sigma, .. } if (sigma - 1.0).abs() < 1e-12
        ));
        assert!(matches!(
            releases[1].1,
            loki_dp::accountant::ReleaseKind::Pure { .. }
        ));
    }
}
