//! `loki-server` — run the Loki backend standalone.
//!
//! ```sh
//! loki-server [--addr 127.0.0.1:8080] [--snapshot state.json]
//!             [--token REQUESTER_TOKEN]... [--demo]
//! ```
//!
//! * `--snapshot PATH` — load state from PATH if it exists; save back on
//!   Ctrl-D (EOF on stdin).
//! * `--token T` — require a requester token for `POST /surveys` (may be
//!   repeated).
//! * `--demo` — publish a demo lecturer survey at startup.

use loki_server::{serve, AppState};
use loki_survey::question::QuestionKind;
use loki_survey::survey::{SurveyBuilder, SurveyId};
use std::io::Read;
use std::path::PathBuf;
use std::sync::Arc;

/// Counting wrapper over the system allocator: feeds the
/// `loki_alloc_*` families and the per-phase allocation deltas on
/// `/v1/profile`. Forwarding-only except three relaxed atomic bumps,
/// and the PROF-1 bench holds its submit-path overhead under 2%.
#[global_allocator]
static ALLOC: loki_obs::CountingAlloc = loki_obs::CountingAlloc::new();

struct Options {
    addr: String,
    snapshot: Option<PathBuf>,
    wal: Option<PathBuf>,
    tokens: Vec<String>,
    budget: Option<f64>,
    demo: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:8080".to_string(),
        snapshot: None,
        wal: None,
        tokens: Vec::new(),
        budget: None,
        demo: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = args.next().ok_or("--addr needs a value")?,
            "--snapshot" => {
                opts.snapshot = Some(PathBuf::from(args.next().ok_or("--snapshot needs a value")?))
            }
            "--wal" => opts.wal = Some(PathBuf::from(args.next().ok_or("--wal needs a value")?)),
            "--token" => opts.tokens.push(args.next().ok_or("--token needs a value")?),
            "--budget" => {
                opts.budget = Some(
                    args.next()
                        .ok_or("--budget needs a value")?
                        .parse()
                        .map_err(|e| format!("bad budget: {e}"))?,
                )
            }
            "--demo" => opts.demo = true,
            "--help" | "-h" => {
                return Err(
                    "usage: loki-server [--addr HOST:PORT] [--snapshot PATH] [--wal PATH] \
                     [--token T]... [--budget EPS] [--demo]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

// Startup-only demo data; the builder error is surfaced at the call
// site like every other startup failure instead of panicking.
fn demo_survey() -> Result<loki_survey::survey::Survey, loki_survey::survey::SurveyError> {
    let mut b = SurveyBuilder::new(SurveyId(1), "Rate your lecturers (demo)");
    for i in 1..=5 {
        b.question(format!("Rate lecturer {i}"), QuestionKind::likert5(), false);
    }
    b.build()
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let state = match (&opts.wal, &opts.snapshot) {
        (Some(path), _) if path.exists() => match loki_server::wal::replay(path) {
            Ok(s) => {
                eprintln!("replayed journal from {}", path.display());
                Arc::new(s)
            }
            Err(e) => {
                eprintln!("failed to replay journal {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        (None, Some(path)) if path.exists() => match loki_server::persist::load(path) {
            Ok(s) => {
                eprintln!("loaded snapshot from {}", path.display());
                Arc::new(s)
            }
            Err(e) => {
                eprintln!("failed to load snapshot {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        _ => Arc::new(AppState::new()),
    };
    if let Some(path) = &opts.wal {
        match loki_server::wal::Wal::open(path) {
            Ok(wal) => state.attach_journal(wal),
            Err(e) => {
                eprintln!("failed to open journal {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    for token in &opts.tokens {
        state.add_requester_token(token.clone());
    }
    if let Some(budget) = opts.budget {
        match state.set_epsilon_budget(Some(budget)) {
            Ok(()) => eprintln!("per-user cumulative ε capped at {budget}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    if opts.demo && state.survey(SurveyId(1)).is_none() {
        let outcome = demo_survey()
            .map_err(|e| e.to_string())
            .and_then(|sv| state.add_survey(sv).map_err(|e| e.to_string()));
        match outcome {
            Ok(_) => eprintln!("published demo survey 1"),
            Err(e) => {
                eprintln!("failed to publish demo survey: {e}");
                std::process::exit(1);
            }
        }
    }

    let handle = match serve(&opts.addr, Arc::clone(&state)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    eprintln!("loki-server listening on {}", handle.base_url());
    eprintln!("routes (also reachable without the /v1 prefix):");
    eprintln!("  /v1/health /v1/surveys /v1/surveys/:id /v1/surveys/:id/responses");
    eprintln!("  /v1/surveys/:id/results/:q /v1/surveys/:id/choices/:q /v1/ledger/:user");
    eprintln!("  /v1/stats /v1/metrics /v1/accesslog /v1/healthz");
    eprintln!("  /v1/timeseries /v1/slo /v1/alerts /v1/alerts/history");
    eprintln!("  /v1/profile /v1/procstats");
    eprintln!("press Ctrl-D to shut down");

    // Block until stdin closes, then shut down (and snapshot if asked).
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);

    if let Some(path) = &opts.snapshot {
        match loki_server::persist::save(&state, path) {
            Ok(()) => eprintln!("snapshot saved to {}", path.display()),
            Err(e) => eprintln!("snapshot save failed: {e}"),
        }
    }
    handle.shutdown();
    eprintln!("bye");
}
