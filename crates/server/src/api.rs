//! Wire DTOs of the REST API.
//!
//! Survey and response bodies reuse `loki-survey`'s serde representations
//! directly — one source of truth for the schema.

use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_survey::response::Response as SurveyResponse;
use serde::{Deserialize, Serialize};

/// One row of `GET /surveys`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveySummary {
    /// Survey id (numeric part).
    pub id: u64,
    /// Title shown in the app list.
    pub title: String,
    /// Number of questions.
    pub questions: usize,
    /// Reward per completion, cents.
    pub reward_cents: u32,
}

/// Body of `POST /surveys/:id/responses`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Submitting user (pseudonym).
    pub user: String,
    /// The privacy level the user chose for this survey.
    pub privacy_level: PrivacyLevel,
    /// The obfuscated response (worker field must equal `user`).
    pub response: SurveyResponse,
    /// The client's declared ledger entries for this upload, as
    /// `(tag, release)` pairs produced by the obfuscator.
    pub releases: Vec<(String, ReleaseKind)>,
}

/// Reply to `POST /surveys/:id/responses`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitReply {
    /// Total responses now stored for the survey.
    pub stored: usize,
    /// The user's cumulative ε after this upload (`null` when unbounded).
    pub cumulative_epsilon: Option<f64>,
}

/// One bin of `GET /surveys/:id/results/:question`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinResult {
    /// Privacy level of the bin.
    pub level: PrivacyLevel,
    /// Responses in the bin.
    pub n: usize,
    /// Bin mean of the uploaded (noisy) values.
    pub mean: f64,
    /// Predicted standard error.
    pub standard_error: f64,
}

/// Reply to `GET /surveys/:id/results/:question`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionResults {
    /// Survey id.
    pub survey: u64,
    /// Question id.
    pub question: u32,
    /// Per-bin estimates (non-empty bins only).
    pub bins: Vec<BinResult>,
    /// Inverse-variance pooled mean.
    pub pooled_mean: f64,
    /// Standard error of the pooled mean.
    pub pooled_standard_error: f64,
    /// Total responses used.
    pub n_total: usize,
}

/// Reply to `GET /ledger/:user`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerInfo {
    /// The user.
    pub user: String,
    /// Number of recorded releases.
    pub releases: usize,
    /// Cumulative ε (tight accounting); `null` when unbounded (a raw
    /// release happened).
    pub epsilon: Option<f64>,
    /// The δ the ε is stated at.
    pub delta: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::Answer;
    use loki_survey::QuestionId;
    use loki_survey::SurveyId;

    #[test]
    fn submit_request_round_trips() {
        let mut response = SurveyResponse::new("u1", SurveyId(3));
        response.answer(QuestionId(0), Answer::Obfuscated(4.3));
        let req = SubmitRequest {
            user: "u1".into(),
            privacy_level: PrivacyLevel::Medium,
            response,
            releases: vec![(
                "survey-3/q0".into(),
                ReleaseKind::Gaussian {
                    sigma: 1.0,
                    sensitivity: 4.0,
                },
            )],
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: SubmitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn ledger_info_nullable_epsilon() {
        let info = LedgerInfo {
            user: "u".into(),
            releases: 3,
            epsilon: None,
            delta: 1e-5,
        };
        let json = serde_json::to_string(&info).unwrap();
        assert!(json.contains("\"epsilon\":null"));
    }

    #[test]
    fn results_serialize() {
        let r = QuestionResults {
            survey: 1,
            question: 0,
            bins: vec![BinResult {
                level: PrivacyLevel::Low,
                n: 32,
                mean: 4.1,
                standard_error: 0.17,
            }],
            pooled_mean: 4.12,
            pooled_standard_error: 0.1,
            n_total: 32,
        };
        let v: serde_json::Value = serde_json::to_value(&r).unwrap();
        assert_eq!(v["bins"][0]["level"], "low");
    }
}
