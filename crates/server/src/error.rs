//! Typed API errors and the unified `/v1` JSON error envelope.
//!
//! Every error the API emits — handler rejections, bad path params,
//! body-parse failures, and the framework's own 404/405/413 (routed here
//! through [`loki_net::router::Router::set_error_renderer`]) — renders as
//!
//! ```json
//! {"error": {"code": "budget_exhausted", "message": "…"}}
//! ```
//!
//! The `code` field is a stable machine-readable token; `message` is
//! human-oriented and may change between releases.

use crate::store::SubmitError;
use loki_net::http::{Request, Response, StatusCode};
use loki_net::json::json_response;
use loki_net::router::Params;
use serde::de::DeserializeOwned;
use std::str::FromStr;

/// A typed API error: status + stable code + human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: StatusCode,
    /// Stable machine-readable error code (snake_case token).
    pub code: &'static str,
    /// Human-oriented description.
    pub message: String,
}

impl ApiError {
    /// Creates an error.
    pub fn new(status: StatusCode, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
        }
    }

    /// Renders the error as the unified JSON envelope.
    pub fn into_response(self) -> Response {
        error_envelope(self.status, self.code, &self.message)
    }

    /// Renders the error as the envelope with the request's trace id
    /// embedded, so a failing response can be joined to its span tree.
    pub fn into_response_traced(self, trace_id: u64) -> Response {
        error_envelope_traced(self.status, self.code, &self.message, trace_id)
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.status, self.code, self.message)
    }
}

/// The unified error body: `{"error": {"code", "message"}}`.
pub fn error_envelope(status: StatusCode, code: &str, message: &str) -> Response {
    json_response(
        status,
        &serde_json::json!({"error": {"code": code, "message": message}}),
    )
}

/// The envelope plus the request's trace id, both in the body
/// (`error.trace_id`, 16 hex digits) and as the
/// [`loki_net::http::TRACE_ID_HEADER`] response header.
pub fn error_envelope_traced(
    status: StatusCode,
    code: &str,
    message: &str,
    trace_id: u64,
) -> Response {
    let id = format!("{trace_id:016x}");
    let mut resp = json_response(
        status,
        &serde_json::json!({"error": {"code": code, "message": message, "trace_id": id}}),
    );
    resp.headers.insert(loki_net::http::TRACE_ID_HEADER, id);
    resp
}

impl From<SubmitError> for ApiError {
    fn from(e: SubmitError) -> ApiError {
        let (status, code) = match &e {
            SubmitError::UnknownSurvey => (StatusCode::NOT_FOUND, "unknown_survey"),
            SubmitError::Duplicate => (StatusCode::CONFLICT, "duplicate_submission"),
            SubmitError::BudgetExhausted { .. } => (StatusCode::FORBIDDEN, "budget_exhausted"),
            SubmitError::RawAnswer { .. } => (StatusCode::UNPROCESSABLE, "raw_answer"),
            SubmitError::UserMismatch => (StatusCode::UNPROCESSABLE, "user_mismatch"),
            SubmitError::Invalid(_) => (StatusCode::UNPROCESSABLE, "invalid_response"),
            SubmitError::Durability(_) => (StatusCode::SERVICE_UNAVAILABLE, "durability"),
        };
        ApiError::new(status, code, e.to_string())
    }
}

/// Parses a JSON request body: empty → 400 `empty_body`, malformed →
/// 422 `invalid_json`.
pub fn parse_body<T: DeserializeOwned>(request: &Request) -> Result<T, ApiError> {
    if request.body.is_empty() {
        return Err(ApiError::new(StatusCode::BAD_REQUEST, "empty_body", "empty body"));
    }
    serde_json::from_slice(&request.body).map_err(|e| {
        ApiError::new(
            StatusCode::UNPROCESSABLE,
            "invalid_json",
            format!("invalid JSON body: {e}"),
        )
    })
}

/// Extracts and parses a `:name` path capture, mapping absence or a parse
/// failure to 400 `bad_param`. Replaces the per-handler
/// `params.get(..) + parse()` boilerplate.
pub fn path_param<T: FromStr>(params: &Params, name: &str) -> Result<T, ApiError> {
    params.get(name).and_then(|raw| raw.parse().ok()).ok_or_else(|| {
        ApiError::new(
            StatusCode::BAD_REQUEST,
            "bad_param",
            format!("bad path parameter `{name}`"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_net::http::Method;

    #[test]
    fn envelope_shape() {
        let resp = error_envelope(StatusCode::NOT_FOUND, "not_found", "nope");
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["error"]["code"], "not_found");
        assert_eq!(v["error"]["message"], "nope");
    }

    #[test]
    fn traced_envelope_carries_the_id_in_body_and_header() {
        let resp = error_envelope_traced(StatusCode::FORBIDDEN, "budget_exhausted", "over", 0xab);
        assert_eq!(
            resp.headers.get(loki_net::http::TRACE_ID_HEADER),
            Some("00000000000000ab")
        );
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["error"]["code"], "budget_exhausted");
        assert_eq!(v["error"]["trace_id"], "00000000000000ab");
    }

    #[test]
    fn api_error_round_trips_through_response() {
        let resp = ApiError::new(StatusCode::FORBIDDEN, "budget_exhausted", "over cap")
            .into_response();
        assert_eq!(resp.status, StatusCode::FORBIDDEN);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["error"]["code"], "budget_exhausted");
    }

    #[test]
    fn submit_errors_map_to_stable_codes() {
        let cases = [
            (SubmitError::UnknownSurvey, 404, "unknown_survey"),
            (SubmitError::Duplicate, 409, "duplicate_submission"),
            (
                SubmitError::BudgetExhausted {
                    current: Some(1.0),
                    budget: 2.0,
                },
                403,
                "budget_exhausted",
            ),
            (SubmitError::RawAnswer { question: 3 }, 422, "raw_answer"),
            (SubmitError::UserMismatch, 422, "user_mismatch"),
            (SubmitError::Invalid("x".into()), 422, "invalid_response"),
            (
                SubmitError::Durability("fsync failed".into()),
                503,
                "durability",
            ),
        ];
        for (e, status, code) in cases {
            let api: ApiError = e.into();
            assert_eq!(api.status.0, status, "{code}");
            assert_eq!(api.code, code);
        }
    }

    #[test]
    fn parse_body_codes() {
        let empty = Request::new(Method::Post, "/x");
        let err = parse_body::<serde_json::Value>(&empty).unwrap_err();
        assert_eq!((err.status.0, err.code), (400, "empty_body"));

        let bad = Request::new(Method::Post, "/x").with_body("{nope");
        let err = parse_body::<serde_json::Value>(&bad).unwrap_err();
        assert_eq!((err.status.0, err.code), (422, "invalid_json"));

        let ok = Request::new(Method::Post, "/x").with_body("{\"a\":1}");
        assert!(parse_body::<serde_json::Value>(&ok).is_ok());
    }

    #[test]
    fn path_param_parses_or_400s() {
        let mut router = loki_net::router::Router::new();
        let captured = std::sync::Arc::new(parking_lot::Mutex::new(None));
        let c = std::sync::Arc::clone(&captured);
        router.get("/s/:id", move |_, params| {
            *c.lock() = Some(path_param::<u64>(params, "id"));
            Response::status(StatusCode::OK)
        });
        router.dispatch(&Request::new(Method::Get, "/s/42"));
        assert_eq!(captured.lock().clone().unwrap().unwrap(), 42);
        router.dispatch(&Request::new(Method::Get, "/s/abc"));
        let err = captured.lock().clone().unwrap().unwrap_err();
        assert_eq!((err.status.0, err.code), (400, "bad_param"));
    }
}
