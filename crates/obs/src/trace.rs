//! Request-scoped tracing: span trees that survive thread handoff.
//!
//! The submit path crosses a thread boundary — the writer enqueues a
//! commit request and the `GroupCommitter` thread pays the durability
//! cost inside a batch. Aggregate histograms can say *that* p99 spiked;
//! a trace says *which* request waited, in *which* batch, and how long
//! the fsync under it took. This module is the zero-dependency core:
//!
//! * [`Tracer`] — issues trace ids from a splitmix64 stream over an
//!   explicitly seeded state (same discipline as the rest of the
//!   workspace: no ambient entropy), decides sampling, and owns the
//!   bounded retention store.
//! * [`Trace`] / [`SpanContext`] — a trace plus its cloneable handoff
//!   handle. The context is what crosses thread boundaries: the writer
//!   clones it onto the commit request and the committer records
//!   complete spans against it with [`SpanContext::add_span_at`].
//! * [`ActiveSpan`] — an in-progress span on the current thread.
//! * A thread-local *current* context ([`set_current`], [`current`])
//!   so deep layers (the store) pick up the request's trace without
//!   threading a parameter through every signature.
//!
//! **Cost discipline:** when sampling is off and no slow threshold is
//! configured, a [`Trace`] carries no buffer at all (`inner` is `None`)
//! — starting it, setting the thread-local, "recording" spans and
//! finishing are all allocation-free. The id is still generated so every
//! response can carry an `x-loki-trace-id` header.
//!
//! **Privacy discipline:** span names are `&'static str` and span
//! attributes are numeric (`u64`) by construction. There is no API to
//! attach a user id, path, or any other free-form string to a span, so
//! traces are structurally incapable of leaking quasi-identifiers. The
//! `loki-lint` sensitive-egress rule additionally keeps forbidden
//! identifier names out of this module.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Span id within one trace. `0` is "no span"; the root span is [`ROOT_SPAN`].
pub type SpanId = u64;

/// The id of the implicit root span every trace owns.
pub const ROOT_SPAN: SpanId = 1;

/// splitmix64 — the same tiny generator used across the workspace for
/// deterministic, explicitly seeded id streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One recorded span: name, tree position, start/end offsets (nanoseconds
/// since the trace began) and numeric attributes.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id, unique within the trace.
    pub id: SpanId,
    /// Static span name ("request", "enqueue", "batch", "fsync", ...).
    pub name: &'static str,
    /// Parent span id; `None` only for the root span.
    pub parent: Option<SpanId>,
    /// Nanoseconds from trace start to span start.
    pub start_ns: u64,
    /// Nanoseconds from trace start to span end.
    pub end_ns: u64,
    /// Numeric attributes (e.g. `("batch_id", 7)`). Numeric on purpose:
    /// there is no way to smuggle an identifier string into a trace.
    pub attrs: Vec<(&'static str, u64)>,
}

/// The shared recording buffer behind a recorded trace.
#[derive(Debug)]
struct TraceInner {
    started: Instant,
    next_span: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceInner {
    fn new() -> TraceInner {
        TraceInner {
            started: Instant::now(),
            // Span 1 is reserved for the root; children start at 2.
            next_span: AtomicU64::new(ROOT_SPAN + 1),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn offset_ns(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.started)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }
}

/// The cloneable handle that crosses thread boundaries.
///
/// The handoff rule: whoever moves work to another thread clones the
/// context onto the message; the receiving thread records complete spans
/// with [`SpanContext::add_span_at`], never through the thread-local.
#[derive(Debug, Clone)]
pub struct SpanContext {
    trace_id: u64,
    inner: Option<Arc<TraceInner>>,
}

impl SpanContext {
    /// The trace id this context belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Whether spans recorded against this context are actually kept.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the trace started (0 when not recording).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.offset_ns(Instant::now()),
            None => 0,
        }
    }

    /// Starts a span parented to the root span.
    pub fn start_child(&self, name: &'static str) -> ActiveSpan {
        self.start_span(name, Some(ROOT_SPAN))
    }

    /// Starts a span with an explicit parent.
    pub fn start_span(&self, name: &'static str, parent: Option<SpanId>) -> ActiveSpan {
        let (id, start_ns) = match &self.inner {
            Some(inner) => (
                inner.next_span.fetch_add(1, Ordering::Relaxed),
                inner.offset_ns(Instant::now()),
            ),
            None => (0, 0),
        };
        ActiveSpan {
            ctx: self.clone(),
            id,
            name,
            parent,
            start_ns,
            attrs: Vec::new(),
            finished: false,
        }
    }

    /// Records a complete span from explicit instants. This is the
    /// cross-thread API: offsets are computed against the *trace's* own
    /// epoch, so a committer thread can record spans for many different
    /// traces in one batch. Returns the new span's id (0 if dropped).
    pub fn add_span_at(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start: Instant,
        end: Instant,
        attrs: &[(&'static str, u64)],
    ) -> SpanId {
        let Some(inner) = &self.inner else { return 0 };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            id,
            name,
            parent,
            start_ns: inner.offset_ns(start),
            end_ns: inner.offset_ns(end),
            attrs: attrs.to_vec(),
        };
        inner.spans.lock().expect("span buffer lock").push(record);
        id
    }

    fn record(&self, span: SpanRecord) {
        if let Some(inner) = &self.inner {
            inner.spans.lock().expect("span buffer lock").push(span);
        }
    }
}

/// An in-progress span. Finishes (records its end offset) on [`drop`] or
/// explicitly via [`ActiveSpan::finish`].
#[derive(Debug)]
pub struct ActiveSpan {
    ctx: SpanContext,
    id: SpanId,
    name: &'static str,
    parent: Option<SpanId>,
    start_ns: u64,
    attrs: Vec<(&'static str, u64)>,
    finished: bool,
}

impl ActiveSpan {
    /// This span's id, for parenting children (0 when not recording).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches a numeric attribute.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.ctx.inner.is_some() {
            self.attrs.push((key, value));
        }
    }

    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.ctx.inner.is_none() {
            return;
        }
        let end_ns = self.ctx.now_ns();
        self.ctx.record(SpanRecord {
            id: self.id,
            name: self.name,
            parent: self.parent,
            start_ns: self.start_ns,
            end_ns,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// One live trace, owned by the request's serving thread.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    sampled: bool,
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// The trace id (present even when nothing is recorded).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether this trace was selected by the sampler.
    pub fn sampled(&self) -> bool {
        self.sampled
    }

    /// A cloneable handoff handle for this trace.
    pub fn ctx(&self) -> SpanContext {
        SpanContext {
            trace_id: self.id,
            inner: self.inner.clone(),
        }
    }
}

/// Sampling, retention and capacity knobs for a [`Tracer`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring capacity of the retained-trace store.
    pub capacity: usize,
    /// Keep every Nth trace (0 disables sampling entirely).
    pub sample_every: u64,
    /// Additionally keep any trace at least this slow, sampled or not.
    pub slow_threshold: Option<Duration>,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: 512,
            sample_every: 16,
            slow_threshold: Some(Duration::from_millis(250)),
        }
    }
}

impl TraceConfig {
    /// Tracing compiled in, recording fully off: ids are still issued
    /// but no trace allocates or retains anything (the OBS-2 posture).
    pub fn disabled() -> TraceConfig {
        TraceConfig {
            capacity: 1,
            sample_every: 0,
            slow_threshold: None,
        }
    }
}

/// A finished, retained trace as held by the store.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// Trace id.
    pub id: u64,
    /// Whether the sampler (vs the slow threshold) retained it.
    pub sampled: bool,
    /// Total wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Recorded spans in completion order; span ids give tree structure.
    pub spans: Vec<SpanRecord>,
}

/// Issues ids, samples, and retains finished traces in a bounded ring.
#[derive(Debug)]
pub struct Tracer {
    seed: u64,
    seq: AtomicU64,
    config: TraceConfig,
    store: Mutex<VecDeque<StoredTrace>>,
}

impl Tracer {
    /// A tracer with an explicit id seed (no ambient entropy).
    pub fn new(seed: u64, config: TraceConfig) -> Tracer {
        let capacity = config.capacity.max(1);
        Tracer {
            seed,
            seq: AtomicU64::new(0),
            config: TraceConfig { capacity, ..config },
            store: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Issues a bare id from the same stream as [`Tracer::start`], for
    /// responses produced outside any handler (router-level errors).
    pub fn next_id(&self) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Begins a trace. Allocates a recording buffer only if the trace
    /// could possibly be retained (sampled, or a slow threshold is set).
    pub fn start(&self) -> Trace {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let id = if id == 0 { 1 } else { id };
        let sampled = self.config.sample_every != 0 && seq % self.config.sample_every == 0;
        let record = sampled || self.config.slow_threshold.is_some();
        Trace {
            id,
            sampled,
            inner: record.then(|| Arc::new(TraceInner::new())),
        }
    }

    /// Ends a trace, deciding retention: kept if sampled, or if its
    /// duration crossed the slow threshold. The store is a bounded ring
    /// — the oldest retained trace is evicted at capacity.
    pub fn finish(&self, trace: Trace) {
        let Some(inner) = trace.inner else { return };
        let duration = inner.started.elapsed();
        let slow = self
            .config
            .slow_threshold
            .is_some_and(|t| duration >= t);
        if !trace.sampled && !slow {
            return;
        }
        let spans = std::mem::take(&mut *inner.spans.lock().expect("span buffer lock"));
        let mut store = self.store.lock().expect("trace store lock");
        if store.len() >= self.config.capacity {
            store.pop_front();
        }
        store.push_back(StoredTrace {
            id: trace.id,
            sampled: trace.sampled,
            duration_ns: duration.as_nanos() as u64,
            spans,
        });
    }

    /// Retained traces, oldest first (most recent last).
    pub fn list(&self) -> Vec<StoredTrace> {
        self.store
            .lock()
            .expect("trace store lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Looks up one retained trace by id.
    pub fn get(&self, id: u64) -> Option<StoredTrace> {
        self.store
            .lock()
            .expect("trace store lock")
            .iter()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.store.lock().expect("trace store lock").len()
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Thread-local current context
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT: std::cell::RefCell<Option<SpanContext>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `ctx` as the current thread's trace context; the previous
/// one is restored when the returned guard drops.
pub fn set_current(ctx: SpanContext) -> TraceGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    TraceGuard { prev }
}

/// The current thread's trace context, if a request is being traced.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Restores the previously current trace context on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: Option<SpanContext>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recording_tracer() -> Tracer {
        Tracer::new(
            7,
            TraceConfig {
                capacity: 4,
                sample_every: 1,
                slow_threshold: None,
            },
        )
    }

    #[test]
    fn ids_are_deterministic_and_distinct() {
        let a = Tracer::new(42, TraceConfig::default());
        let b = Tracer::new(42, TraceConfig::default());
        let ids_a: Vec<u64> = (0..16).map(|_| a.next_id()).collect();
        let ids_b: Vec<u64> = (0..16).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b, "same seed, same id stream");
        let unique: std::collections::HashSet<u64> = ids_a.iter().copied().collect();
        assert_eq!(unique.len(), ids_a.len(), "ids repeat");
        assert!(ids_a.iter().all(|&id| id != 0), "0 is reserved for no-trace");
    }

    #[test]
    fn disabled_config_allocates_nothing() {
        let tracer = Tracer::new(1, TraceConfig::disabled());
        let trace = tracer.start();
        assert!(trace.inner.is_none(), "no buffer when recording is off");
        assert_ne!(trace.id(), 0, "id still issued for the response header");
        let ctx = trace.ctx();
        assert!(!ctx.is_recording());
        let mut span = ctx.start_child("apply");
        span.attr("n", 3);
        assert_eq!(span.id(), 0);
        span.finish();
        assert_eq!(
            ctx.add_span_at("batch", None, Instant::now(), Instant::now(), &[]),
            0
        );
        tracer.finish(trace);
        assert_eq!(tracer.len(), 0);
    }

    #[test]
    fn span_tree_records_parents_offsets_and_attrs() {
        let tracer = recording_tracer();
        let trace = tracer.start();
        let id = trace.id();
        let ctx = trace.ctx();
        let mut apply = ctx.start_child("apply");
        apply.attr("stored", 5);
        let apply_id = apply.id();
        apply.finish();
        let t0 = Instant::now();
        let batch = ctx.add_span_at("batch", Some(ROOT_SPAN), t0, Instant::now(), &[("batch_id", 9)]);
        ctx.add_span_at("fsync", Some(batch), t0, Instant::now(), &[]);
        tracer.finish(trace);

        let stored = tracer.get(id).expect("trace retained");
        assert_eq!(stored.spans.len(), 3);
        let apply = stored.spans.iter().find(|s| s.name == "apply").unwrap();
        assert_eq!(apply.id, apply_id);
        assert_eq!(apply.parent, Some(ROOT_SPAN));
        assert!(apply.end_ns >= apply.start_ns);
        assert_eq!(apply.attrs, vec![("stored", 5)]);
        let fsync = stored.spans.iter().find(|s| s.name == "fsync").unwrap();
        assert_eq!(fsync.parent, Some(batch), "fsync parents to the batch span");
    }

    #[test]
    fn context_crosses_threads() {
        let tracer = recording_tracer();
        let trace = tracer.start();
        let ctx = trace.ctx();
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            ctx.add_span_at("batch", Some(ROOT_SPAN), t0, Instant::now(), &[("batch_id", 1)]);
        });
        handle.join().unwrap();
        let id = trace.id();
        tracer.finish(trace);
        let stored = tracer.get(id).unwrap();
        assert_eq!(stored.spans.len(), 1);
        assert_eq!(stored.spans[0].name, "batch");
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let tracer = Tracer::new(
            3,
            TraceConfig {
                capacity: 100,
                sample_every: 4,
                slow_threshold: None,
            },
        );
        for _ in 0..20 {
            let t = tracer.start();
            tracer.finish(t);
        }
        assert_eq!(tracer.len(), 5, "every 4th of 20 traces is retained");
    }

    #[test]
    fn slow_threshold_retains_unsampled_traces() {
        let tracer = Tracer::new(
            5,
            TraceConfig {
                capacity: 8,
                sample_every: 0,
                slow_threshold: Some(Duration::from_millis(1)),
            },
        );
        let fast = tracer.start();
        tracer.finish(fast);
        assert_eq!(tracer.len(), 0, "fast unsampled trace dropped");
        let slow = tracer.start();
        std::thread::sleep(Duration::from_millis(5));
        tracer.finish(slow);
        assert_eq!(tracer.len(), 1, "slow trace retained without sampling");
    }

    #[test]
    fn store_is_bounded_under_sustained_load() {
        let tracer = Tracer::new(
            11,
            TraceConfig {
                capacity: 32,
                sample_every: 1,
                slow_threshold: None,
            },
        );
        let mut last = 0;
        for _ in 0..10_000 {
            let t = tracer.start();
            last = t.id();
            t.ctx().start_child("apply").finish();
            tracer.finish(t);
        }
        assert_eq!(tracer.len(), 32, "ring never grows past its cap");
        assert!(tracer.get(last).is_some(), "most recent trace retained");
    }

    #[test]
    fn concurrent_wraparound_keeps_traces_untorn_and_ids_unique() {
        // 8 writers × 200 traces through an 8-slot ring: every span's
        // attribute is derived from its own trace id, so a torn entry
        // (spans from one trace stored under another) is detectable.
        const THREADS: usize = 8;
        const PER_THREAD: usize = 200;
        let tracer = std::sync::Arc::new(Tracer::new(
            13,
            TraceConfig {
                capacity: 8,
                sample_every: 1,
                slow_threshold: None,
            },
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let tracer = std::sync::Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        let t = tracer.start();
                        let ctx = t.ctx();
                        let mut span = ctx.start_child("apply");
                        span.attr("tag", t.id() ^ 0xa5a5);
                        span.finish();
                        tracer.finish(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(tracer.len(), 8, "memory stays bounded under wraparound");
        let stored = tracer.list();
        let ids: std::collections::HashSet<u64> = stored.iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), stored.len(), "retained trace ids are unique");
        for trace in &stored {
            assert_eq!(trace.spans.len(), 1, "torn entry: {trace:?}");
            assert_eq!(trace.spans[0].name, "apply");
            assert_eq!(
                trace.spans[0].attrs,
                vec![("tag", trace.id ^ 0xa5a5)],
                "span belongs to a different trace: {trace:?}"
            );
            assert!(trace.spans[0].end_ns >= trace.spans[0].start_ns);
        }
    }

    #[test]
    fn current_context_nests_and_restores() {
        assert!(current().is_none());
        let tracer = recording_tracer();
        let outer = tracer.start();
        {
            let _g = set_current(outer.ctx());
            assert_eq!(current().unwrap().trace_id(), outer.id());
            let inner_trace = tracer.start();
            {
                let _g2 = set_current(inner_trace.ctx());
                assert_eq!(current().unwrap().trace_id(), inner_trace.id());
            }
            assert_eq!(current().unwrap().trace_id(), outer.id());
        }
        assert!(current().is_none(), "guard restores the empty state");
    }

    #[test]
    fn dropped_span_still_records() {
        let tracer = recording_tracer();
        let trace = tracer.start();
        let id = trace.id();
        {
            let _span = trace.ctx().start_child("ack");
        }
        tracer.finish(trace);
        assert_eq!(tracer.get(id).unwrap().spans.len(), 1);
    }
}
