//! # loki-obs — the observability substrate
//!
//! The platform holds every user's cumulative privacy ledger, so an
//! operator must be able to *see* ingest latency, budget-cap rejections
//! and the live ε distribution to run it at scale (§3.1: loss "tracked
//! and balanced across the user base" — tracking nobody can watch is not
//! tracking). This crate is the substrate the serving crates hang those
//! signals on:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free instruments.
//!   Recording is a handful of relaxed atomic operations and never
//!   allocates; handles are `Arc`s captured at registration time, so the
//!   hot path does no name lookups either.
//! * [`Registry`] — owns the instruments and renders the Prometheus text
//!   exposition format (`/v1/metrics`). Registration validates metric
//!   and label names up front; rendering is the only allocating path.
//! * [`AccessLog`] — a bounded ring of structured per-request records
//!   (`key=value` lines), the tracing layer next to the numeric one.
//! * [`Tracer`] / [`Trace`] / [`SpanContext`] — request-scoped span
//!   trees with explicit context handoff across thread boundaries
//!   (writer → `GroupCommitter` → reply channel), retained in a bounded
//!   store by sampling or slow-threshold.
//! * [`AuditLog`] — the append-only ε-audit event stream: every budget
//!   charge attempted/charged/rejected-at-cap, keyed by opaque subject
//!   index, joinable to traces by id.
//! * [`Tsdb`] — a fixed-memory ring-buffer time-series store fed by the
//!   server's self-scraper: per-series history of registry snapshots
//!   (delta-aware for counters, histogram fan-out into `_bucket` /
//!   `_count` / `_sum` series) with min/max/avg/last downsampling.
//! * [`SloEngine`] — declarative [`SloSpec`]s evaluated against the
//!   tsdb each scrape tick: multi-window burn rates, an
//!   `Ok → Pending → Firing → Resolved` alert state machine, and a
//!   bounded audit-style ring of [`AlertEvent`] transitions carrying
//!   violating-exemplar trace ids.
//!
//! * [`prof`] — the continuous-profiling layer: threads declare their
//!   current phase with [`phase!`]`("name")` (interned `&'static str`
//!   literals), a 97 Hz sampler accumulates per-thread × per-phase
//!   wall-clock sample tables (`/v1/profile`), and [`CountingAlloc`]
//!   attributes every allocation to the tagging thread's phase.
//! * [`ProcStats`] — `/proc/self` resource readings (RSS, fds, threads,
//!   CPU ticks) on Linux, `None`s elsewhere, feeding the tsdb so
//!   `/v1/timeseries` covers process resources too.
//!
//! Deliberately `std`-only: no serde, no parking_lot, no clocks beyond
//! `std::time`. Privacy note: metric *labels* must never carry
//! quasi-identifiers (user ids, raw paths with embedded ids); the serving
//! crates label by route pattern, method, status class and privacy level
//! only, and `loki-lint`'s `sensitive-egress` rule covers this crate.

// `deny` rather than `forbid` since the profiling layer landed: the
// counting global allocator (alloc.rs) implements the unsafe
// `GlobalAlloc` trait and is the single, module-scoped opt-out below.
// Everything else in the crate still refuses unsafe at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod access;
// GlobalAlloc is an unsafe trait; the module forwards verbatim to
// std's System allocator and documents each block. See alloc.rs.
#[allow(unsafe_code)]
mod alloc;
mod audit;
mod metrics;
pub mod prof;
mod procstats;
mod registry;
mod slo;
pub mod trace;
mod tsdb;

pub use access::{AccessLog, AccessRecord};
pub use alloc::{CountingAlloc, PhaseAlloc};
pub use procstats::ProcStats;
pub use audit::{AuditEvent, AuditLog, AuditOutcome};
pub use metrics::{Counter, Gauge, Histogram, LATENCY_BUCKETS};
pub use registry::{Registry, Sample, SampleValue};
pub use slo::{AlertEvent, AlertState, BurnRule, SloEngine, SloKind, SloSpec, SloStatus};
pub use tsdb::{PointAgg, SeriesData, Tsdb, TsdbConfig};
pub use trace::{
    ActiveSpan, SpanContext, SpanRecord, StoredTrace, Trace, TraceConfig, TraceGuard, Tracer,
};
