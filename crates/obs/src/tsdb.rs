//! Fixed-memory ring-buffer time-series store (the history layer).
//!
//! `/v1/metrics` and the ε gauges are instantaneous; the paper's §3
//! framing — cumulative privacy loss *tracked over time* and balanced
//! across the whole base — needs history: "how fast is aggregate ε
//! burning?", "did submit p99 regress?", "page me when the WAL poisons".
//! This module is the retention side of that question: a zero-dependency
//! store of per-series rings fed by the server's self-scraper, which
//! samples every registered family straight from the atomic cells (see
//! [`crate::Registry::snapshot`] — no text-format round-trip).
//!
//! Design points:
//!
//! * **Fixed memory.** Every series is a ring of at most
//!   `samples_per_series` points, and at most `max_series` distinct
//!   series are ever admitted; past both caps the store only overwrites.
//!   Memory is provably bounded however long the process runs.
//! * **Coarse ticks.** Samples are `(tick, f64)` pairs where a tick is
//!   the scrape index (one tick per self-scrape interval). Queries,
//!   windows and downsampling all speak ticks, so tests can scale time
//!   by shrinking the scrape interval instead of sleeping wall-clock
//!   hours.
//! * **Delta-aware counters.** Counter-kind series store the per-tick
//!   *increase*, not the raw monotone value, so a window sum is directly
//!   "events in this window" (what the SLO burn-rate math needs). A raw
//!   value below its predecessor is treated as a counter reset. The
//!   first sample attributes the counter's whole standing value to its
//!   first tick.
//! * **Histogram fan-out.** A histogram sample expands into
//!   `{family}_bucket{le="…"}` (cumulative per-bound, counter-kind),
//!   `{family}_count` and `{family}_sum` series — the same derived
//!   series PromQL would see — plus a per-family exemplar trace id so an
//!   alert can point at a concrete violating request.
//!
//! **Privacy discipline:** series are keyed by metric name + label body
//! only. Labels are route shapes, methods, status classes and privacy
//! levels by the serving crates' construction; nothing here can carry an
//! identity, and the `loki-lint` sensitive-egress rule keeps forbidden
//! identifier names out of this module.

use crate::registry::{Sample, SampleValue};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, PoisonError};

/// Sizing knobs for a [`Tsdb`]. Memory is bounded by roughly
/// `max_series × samples_per_series × 16` bytes plus key strings.
#[derive(Debug, Clone, Copy)]
pub struct TsdbConfig {
    /// Retained points per series (ring capacity, minimum 1).
    pub samples_per_series: usize,
    /// Hard cap on distinct series; later series are counted in
    /// [`Tsdb::dropped_series`] and never stored (minimum 1).
    pub max_series: usize,
}

impl Default for TsdbConfig {
    fn default() -> TsdbConfig {
        TsdbConfig {
            // 512 ticks at the default 1 s scrape interval ≈ 8.5 minutes
            // of full-resolution history per series; ~1024 series covers
            // every server family including histogram fan-out.
            samples_per_series: 512,
            max_series: 1024,
        }
    }
}

/// How a series interprets incoming raw values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeriesKind {
    /// Store the raw value.
    Gauge,
    /// Store the per-tick increase (delta), reset-aware.
    Counter,
}

/// One bounded series: a ring of `(tick, value)` points.
#[derive(Debug)]
struct RingSeries {
    kind: SeriesKind,
    /// Last raw (pre-delta) value seen, for counter series.
    prev_raw: Option<f64>,
    points: VecDeque<(u64, f64)>,
}

impl RingSeries {
    fn new(kind: SeriesKind, capacity: usize) -> RingSeries {
        RingSeries {
            kind,
            prev_raw: None,
            points: VecDeque::with_capacity(capacity),
        }
    }

    fn push(&mut self, capacity: usize, tick: u64, raw: f64) {
        let value = match self.kind {
            SeriesKind::Gauge => raw,
            SeriesKind::Counter => {
                let delta = match self.prev_raw {
                    // Reset-aware: a drop below the previous raw value
                    // means the process restarted the counter.
                    Some(prev) if raw >= prev => raw - prev,
                    Some(_) => raw,
                    None => raw,
                };
                self.prev_raw = Some(raw);
                delta
            }
        };
        if self.points.len() >= capacity {
            self.points.pop_front();
        }
        self.points.push_back((tick, value));
    }
}

/// One downsampled point covering a `step`-wide tick bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointAgg {
    /// First tick of the bin.
    pub tick: u64,
    /// Minimum stored value inside the bin.
    pub min: f64,
    /// Maximum stored value inside the bin.
    pub max: f64,
    /// Mean of stored values inside the bin.
    pub avg: f64,
    /// Most recent stored value inside the bin.
    pub last: f64,
    /// Number of raw points aggregated into the bin.
    pub count: u64,
}

/// One series' downsampled range-query result.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesData {
    /// Full series key: `name` or `name{label="…",…}`.
    pub key: String,
    /// Downsampled points, oldest first.
    pub points: Vec<PointAgg>,
}

#[derive(Debug, Default)]
struct TsdbInner {
    series: BTreeMap<String, RingSeries>,
    /// Last exemplar trace id per histogram family.
    exemplars: BTreeMap<String, u64>,
    dropped: u64,
}

/// The fixed-memory time-series store. All methods take `&self`; one
/// mutex guards the series map (the scraper writes once per interval and
/// queries are operator-paced, so contention is nil by construction).
#[derive(Debug)]
pub struct Tsdb {
    config: TsdbConfig,
    inner: Mutex<TsdbInner>,
}

impl Default for Tsdb {
    fn default() -> Tsdb {
        Tsdb::new(TsdbConfig::default())
    }
}

impl Tsdb {
    /// An empty store with the given sizing.
    pub fn new(config: TsdbConfig) -> Tsdb {
        let config = TsdbConfig {
            samples_per_series: config.samples_per_series.max(1),
            max_series: config.max_series.max(1),
        };
        Tsdb {
            config,
            inner: Mutex::new(TsdbInner::default()),
        }
    }

    /// The active sizing.
    pub fn config(&self) -> TsdbConfig {
        self.config
    }

    /// Ingests one scrape's worth of samples at `tick`. Histogram
    /// samples fan out into `_bucket`/`_count`/`_sum` derived series.
    pub fn ingest(&self, tick: u64, samples: &[Sample]) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        for sample in samples {
            match &sample.value {
                SampleValue::Counter(v) => {
                    let key = series_key(&sample.name, &sample.labels);
                    push(&mut inner, &self.config, key, SeriesKind::Counter, tick, *v as f64);
                }
                SampleValue::Gauge(v) => {
                    let key = series_key(&sample.name, &sample.labels);
                    push(&mut inner, &self.config, key, SeriesKind::Gauge, tick, *v);
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    exemplar_trace,
                } => {
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum = cum.saturating_add(*c);
                        let le = match bounds.get(i) {
                            Some(b) => format!("{b}"),
                            None => "+Inf".to_string(),
                        };
                        let labels = join_label(&sample.labels, &format!("le=\"{le}\""));
                        let key = series_key(&format!("{}_bucket", sample.name), &labels);
                        push(&mut inner, &self.config, key, SeriesKind::Counter, tick, cum as f64);
                    }
                    let count_key = series_key(&format!("{}_count", sample.name), &sample.labels);
                    push(&mut inner, &self.config, count_key, SeriesKind::Counter, tick, cum as f64);
                    let sum_key = series_key(&format!("{}_sum", sample.name), &sample.labels);
                    push(&mut inner, &self.config, sum_key, SeriesKind::Counter, tick, *sum);
                    if let Some(trace) = exemplar_trace {
                        inner.exemplars.insert(sample.name.clone(), *trace);
                    }
                }
            }
        }
    }

    /// Downsampled range query: every series whose key starts with
    /// `name` and whose label body contains `label_filter` (empty filter
    /// matches everything), points with `tick >= since`, aggregated into
    /// `step`-wide bins (`step` 0 behaves as 1).
    pub fn query(&self, name: &str, label_filter: &str, since: u64, step: u64) -> Vec<SeriesData> {
        let step = step.max(1);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        for (key, series) in matching(&inner.series, name, label_filter) {
            let mut points: Vec<PointAgg> = Vec::new();
            for &(tick, value) in series.points.iter().filter(|(t, _)| *t >= since) {
                let bin = since + ((tick - since) / step) * step;
                match points.last_mut() {
                    Some(p) if p.tick == bin => {
                        p.min = p.min.min(value);
                        p.max = p.max.max(value);
                        // `avg` accumulates the sum until the bin closes.
                        p.avg += value;
                        p.last = value;
                        p.count += 1;
                    }
                    _ => points.push(PointAgg {
                        tick: bin,
                        min: value,
                        max: value,
                        avg: value,
                        last: value,
                        count: 1,
                    }),
                }
            }
            for p in &mut points {
                if p.count > 0 {
                    p.avg /= p.count as f64;
                }
            }
            out.push(SeriesData {
                key: key.clone(),
                points,
            });
        }
        out
    }

    /// Sum of stored values over ticks in `(from, to]`, across every
    /// matching series. For counter-kind series (which store deltas)
    /// this is "events in the window" — the SLO engine's burn-rate
    /// numerators and denominators.
    pub fn window_sum(&self, name: &str, label_filter: &str, from: u64, to: u64) -> f64 {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut total = 0.0;
        for (_, series) in matching(&inner.series, name, label_filter) {
            for &(tick, value) in &series.points {
                if tick > from && tick <= to {
                    total += value;
                }
            }
        }
        total
    }

    /// The most recent stored value across matching series (highest
    /// tick wins), e.g. the current level of a gauge series.
    pub fn latest(&self, name: &str, label_filter: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut best: Option<(u64, f64)> = None;
        for (_, series) in matching(&inner.series, name, label_filter) {
            if let Some(&(tick, value)) = series.points.back() {
                if best.map_or(true, |(t, _)| tick >= t) {
                    best = Some((tick, value));
                }
            }
        }
        best.map(|(_, v)| v)
    }

    /// The last exemplar trace id ingested for a histogram family.
    pub fn exemplar(&self, family: &str) -> Option<u64> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.exemplars.get(family).copied()
    }

    /// Number of admitted series.
    pub fn series_count(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.series.len()
    }

    /// Samples refused because the series cap was reached (series, not
    /// points: an established series never drops a point, it evicts).
    pub fn dropped_series(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.dropped
    }

    /// Total ring slots currently allocated across all series — the
    /// bounded-memory proof hook: after warm-up this number must stop
    /// growing no matter how many more ticks are ingested.
    pub fn allocated_points(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.series.values().map(|s| s.points.capacity()).sum()
    }
}

fn push(
    inner: &mut TsdbInner,
    config: &TsdbConfig,
    key: String,
    kind: SeriesKind,
    tick: u64,
    raw: f64,
) {
    if !inner.series.contains_key(&key) {
        if inner.series.len() >= config.max_series {
            inner.dropped += 1;
            return;
        }
        inner
            .series
            .insert(key.clone(), RingSeries::new(kind, config.samples_per_series));
    }
    if let Some(series) = inner.series.get_mut(&key) {
        series.push(config.samples_per_series, tick, raw);
    }
}

fn series_key(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{labels}}}")
    }
}

fn join_label(base: &str, extra: &str) -> String {
    if base.is_empty() {
        extra.to_string()
    } else {
        format!("{base},{extra}")
    }
}

/// Series whose key starts with `name` and whose label body contains
/// `label_filter`. Prefix matching is what lets one query cover a
/// histogram family's derived `_bucket`/`_count`/`_sum` series.
fn matching<'a>(
    series: &'a BTreeMap<String, RingSeries>,
    name: &'a str,
    label_filter: &'a str,
) -> impl Iterator<Item = (&'a String, &'a RingSeries)> {
    series
        .range(name.to_string()..)
        .take_while(move |(k, _)| k.starts_with(name))
        .filter(move |(k, _)| label_filter.is_empty() || k.contains(label_filter))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, labels: &str, v: u64) -> Sample {
        Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value: SampleValue::Counter(v),
        }
    }

    fn gauge(name: &str, v: f64) -> Sample {
        Sample {
            name: name.to_string(),
            labels: String::new(),
            value: SampleValue::Gauge(v),
        }
    }

    #[test]
    fn counters_store_deltas_and_handle_resets() {
        let db = Tsdb::default();
        db.ingest(0, &[counter("c_total", "", 5)]);
        db.ingest(1, &[counter("c_total", "", 8)]);
        db.ingest(2, &[counter("c_total", "", 8)]);
        db.ingest(3, &[counter("c_total", "", 2)]); // reset
        let data = db.query("c_total", "", 0, 1);
        assert_eq!(data.len(), 1);
        let values: Vec<f64> = data[0].points.iter().map(|p| p.last).collect();
        assert_eq!(values, vec![5.0, 3.0, 0.0, 2.0]);
        assert_eq!(db.window_sum("c_total", "", 0, 3), 5.0, "(0,3] sums the deltas");
    }

    #[test]
    fn gauges_store_raw_values() {
        let db = Tsdb::default();
        for t in 0..4 {
            db.ingest(t, &[gauge("g", t as f64 * 1.5)]);
        }
        let data = db.query("g", "", 0, 1);
        let values: Vec<f64> = data[0].points.iter().map(|p| p.last).collect();
        assert_eq!(values, vec![0.0, 1.5, 3.0, 4.5]);
        assert_eq!(db.latest("g", ""), Some(4.5));
    }

    #[test]
    fn downsampling_aggregates_min_max_avg_last() {
        let db = Tsdb::default();
        // Gauge values 10, 20, 30, 40 over ticks 0..4; step 2.
        for t in 0..4u64 {
            db.ingest(t, &[gauge("g", (t as f64 + 1.0) * 10.0)]);
        }
        let data = db.query("g", "", 0, 2);
        assert_eq!(data[0].points.len(), 2);
        let first = data[0].points[0];
        assert_eq!((first.tick, first.min, first.max), (0, 10.0, 20.0));
        assert_eq!(first.avg, 15.0);
        assert_eq!(first.last, 20.0);
        assert_eq!(first.count, 2);
        let second = data[0].points[1];
        assert_eq!((second.tick, second.min, second.max), (2, 30.0, 40.0));
        // `since` trims older ticks before binning.
        let tail = db.query("g", "", 3, 2);
        assert_eq!(tail[0].points.len(), 1);
        assert_eq!(tail[0].points[0].count, 1);
        assert_eq!(tail[0].points[0].last, 40.0);
    }

    #[test]
    fn label_filter_selects_children() {
        let db = Tsdb::default();
        db.ingest(
            0,
            &[
                counter("req_total", "method=\"GET\",class=\"2xx\"", 7),
                counter("req_total", "method=\"GET\",class=\"5xx\"", 3),
            ],
        );
        assert_eq!(db.query("req_total", "", 0, 1).len(), 2);
        let bad = db.query("req_total", "class=\"5xx\"", 0, 1);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].points[0].last, 3.0);
        assert_eq!(db.window_sum("req_total", "", u64::MAX, u64::MAX), 0.0);
        assert_eq!(db.window_sum("req_total", "class=\"5xx\"", 0, 1), 0.0, "tick 0 excluded (from is exclusive)");
    }

    #[test]
    fn histograms_fan_out_into_bucket_count_sum_series() {
        let db = Tsdb::default();
        let sample = Sample {
            name: "lat_seconds".to_string(),
            labels: String::new(),
            value: SampleValue::Histogram {
                bounds: vec![0.1, 1.0],
                counts: vec![2, 1, 1], // non-cumulative, overflow last
                sum: 3.5,
                exemplar_trace: Some(0xbeef),
            },
        };
        db.ingest(0, std::slice::from_ref(&sample));
        let buckets = db.query("lat_seconds_bucket", "", 0, 1);
        assert_eq!(buckets.len(), 3);
        let by_key: BTreeMap<&str, f64> = buckets
            .iter()
            .map(|s| (s.key.as_str(), s.points[0].last))
            .collect();
        // Cumulative per-le, exactly as exposition would render.
        assert_eq!(by_key["lat_seconds_bucket{le=\"0.1\"}"], 2.0);
        assert_eq!(by_key["lat_seconds_bucket{le=\"1\"}"], 3.0);
        assert_eq!(by_key["lat_seconds_bucket{le=\"+Inf\"}"], 4.0);
        assert_eq!(db.query("lat_seconds_count", "", 0, 1)[0].points[0].last, 4.0);
        assert_eq!(db.query("lat_seconds_sum", "", 0, 1)[0].points[0].last, 3.5);
        assert_eq!(db.exemplar("lat_seconds"), Some(0xbeef));
        // A family prefix query covers all derived series.
        assert_eq!(db.query("lat_seconds", "", 0, 1).len(), 5);
    }

    #[test]
    fn series_cap_is_enforced() {
        let db = Tsdb::new(TsdbConfig {
            samples_per_series: 4,
            max_series: 2,
        });
        db.ingest(0, &[gauge("a", 1.0), gauge("b", 2.0), gauge("c", 3.0)]);
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.dropped_series(), 1);
        // Established series keep accepting points.
        db.ingest(1, &[gauge("a", 9.0), gauge("c", 9.0)]);
        assert_eq!(db.latest("a", ""), Some(9.0));
        assert_eq!(db.latest("c", ""), None);
        assert_eq!(db.dropped_series(), 2);
    }

    #[test]
    fn soak_memory_is_bounded_and_aggregates_stay_correct() {
        // The acceptance soak: insert 100× the ring capacity and assert
        // allocation stops growing after warm-up while downsampled
        // min/max/avg stay exact over the retained window.
        let capacity = 32u64;
        let db = Tsdb::new(TsdbConfig {
            samples_per_series: capacity as usize,
            max_series: 4,
        });
        let warm = |t: u64| {
            [
                gauge("g", t as f64),
                counter("c_total", "", t * 2), // +2 per tick
            ]
        };
        for t in 0..capacity {
            db.ingest(t, &warm(t));
        }
        let allocated = db.allocated_points();
        assert!(allocated >= 2 * capacity as usize);
        for t in capacity..capacity * 100 {
            db.ingest(t, &warm(t));
        }
        assert_eq!(
            db.allocated_points(),
            allocated,
            "allocation must be flat after warm-up"
        );
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.dropped_series(), 0);
        // Retained window is exactly the last `capacity` ticks.
        let last = capacity * 100 - 1;
        let data = db.query("g", "", 0, 1);
        assert_eq!(data[0].points.len(), capacity as usize);
        assert_eq!(data[0].points[0].tick, last - capacity + 1);
        // Downsampled aggregates over the final 8 ticks: gauge values are
        // the tick numbers themselves.
        let since = last - 7;
        let agg = db.query("g", "", since, 8);
        assert_eq!(agg[0].points.len(), 1);
        let p = agg[0].points[0];
        assert_eq!(p.min, since as f64);
        assert_eq!(p.max, last as f64);
        assert_eq!(p.avg, (since as f64 + last as f64) / 2.0);
        assert_eq!(p.last, last as f64);
        assert_eq!(p.count, 8);
        // Counter deltas stay +2 per tick across the whole soak.
        assert_eq!(db.window_sum("c_total", "", last - 8, last), 16.0);
    }

    #[test]
    fn prefix_matching_does_not_cross_family_names() {
        let db = Tsdb::default();
        db.ingest(0, &[gauge("ledger_users", 5.0), gauge("ledger_unbounded", 1.0)]);
        assert_eq!(db.query("ledger_users", "", 0, 1).len(), 1);
        assert_eq!(db.query("ledger_", "", 0, 1).len(), 2);
    }
}
