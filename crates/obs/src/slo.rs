//! SLO evaluation: multi-window burn rates and an alert state machine.
//!
//! The alerting side of the history layer: declarative [`SloSpec`]s are
//! evaluated each scrape tick against the [`Tsdb`](crate::Tsdb), using
//! the multi-window multi-burn-rate recipe (a fast window pair catches
//! sudden total outages, a slow pair catches slow budget leaks; both
//! halves of a pair must breach, so a brief spike inside an otherwise
//! healthy long window never pages). Three SLO shapes cover the server:
//!
//! * **availability** — bad/total ratio of two counter window-sums
//!   (non-5xx request ratio);
//! * **latency** — the fraction of histogram samples above a bucket
//!   bound, from the `_bucket`/`_count` fan-out series;
//! * **privacy** — a gauge read directly as the bad ratio (the fraction
//!   of ledgered subjects above 80 % of the ε cap: the paper's §3
//!   "balanced across the base" invariant as a pageable objective).
//!
//! Each SLO runs the state machine `Ok → Pending → Firing → Resolved`:
//! a breach must persist `pending_ticks` before firing (no flapping on
//! one bad scrape), and recovery passes through `Resolved` so operators
//! see the transition in the history before the state returns to `Ok`.
//! Every transition is appended to a bounded, audit-style event ring —
//! sequence-numbered, wall-clock stamped, and carrying the trace id of
//! the violating exemplar when the underlying family recorded one — so
//! an alert joins directly to a concrete request's span tree.

use crate::access::now_ms;
use crate::tsdb::Tsdb;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// One burn-rate rule: both the long and the short window's burn rate
/// must be at or above `factor` for the rule to breach.
#[derive(Debug, Clone, Copy)]
pub struct BurnRule {
    /// Long window width in ticks (e.g. 1 h at one tick per second).
    pub long_ticks: u64,
    /// Short window width in ticks (e.g. 5 m) — the "is it still
    /// happening right now" guard.
    pub short_ticks: u64,
    /// Burn-rate threshold (1.0 = burning exactly the error budget).
    pub factor: f64,
}

/// What a spec measures.
#[derive(Debug, Clone)]
pub enum SloKind {
    /// `bad / total` over counter window sums: availability-style.
    /// An empty window (total = 0) is a bad ratio of 0 — no traffic
    /// burns no budget.
    ErrorRatio {
        /// Series name of the bad-event counter.
        bad_name: String,
        /// Label filter selecting the bad children (e.g. `class="5xx"`).
        bad_filter: String,
        /// Series name of the total counter.
        total_name: String,
        /// Label filter for the total (usually empty).
        total_filter: String,
    },
    /// Fraction of histogram samples slower than a bucket bound:
    /// bad = 1 − `{family}_bucket{le}` / `{family}_count`.
    LatencyThreshold {
        /// Histogram family name (without `_bucket`/`_count` suffix).
        family: String,
        /// The bucket bound, exactly as rendered (e.g. `0.25`).
        le: String,
    },
    /// A gauge whose value *is* the bad ratio (clamped to `0..=1`).
    GaugeLevel {
        /// Gauge series name.
        name: String,
        /// Label filter (usually empty).
        filter: String,
    },
}

/// One declarative objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable name ("availability", "submit-latency", ...).
    pub name: String,
    /// The objective as a good-ratio target in `0..1` (0.999 = three
    /// nines; error budget = 1 − objective).
    pub objective: f64,
    /// What to measure.
    pub kind: SloKind,
    /// Burn-rate rules; *any* breaching rule counts as a breach.
    pub rules: Vec<BurnRule>,
    /// Evaluations a breach must persist before `Pending` becomes
    /// `Firing`.
    pub pending_ticks: u64,
    /// Histogram family whose exemplar trace id is attached to alert
    /// transitions (the "violating exemplar").
    pub exemplar_family: Option<String>,
}

/// Alert state of one SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Within budget.
    Ok,
    /// Breaching, not yet long enough to fire.
    Pending,
    /// Breaching past the pending window — page.
    Firing,
    /// No longer breaching; one evaluation later this becomes `Ok`.
    Resolved,
}

impl AlertState {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One alert transition, appended to the bounded history ring. The same
/// audit-stream shape as [`crate::AuditEvent`]: gap-free sequence,
/// wall-clock stamp, and a trace-id join point.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Monotonic sequence number (gap-free within the process).
    pub seq: u64,
    /// Wall-clock milliseconds since the UNIX epoch.
    pub timestamp_ms: u64,
    /// Scrape tick at which the transition happened.
    pub tick: u64,
    /// The SLO's name.
    pub slo: String,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Short-window burn rate of the first rule at transition time.
    pub burn_short: f64,
    /// Long-window burn rate of the first rule at transition time.
    pub burn_long: f64,
    /// Trace id of the violating exemplar, when the spec names an
    /// exemplar family and it has recorded one.
    pub trace_id: Option<u64>,
}

/// Point-in-time status of one SLO, as served by `/v1/slo`.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The SLO's name.
    pub name: String,
    /// The configured good-ratio objective.
    pub objective: f64,
    /// Current alert state.
    pub state: AlertState,
    /// Tick the current state was entered.
    pub since_tick: u64,
    /// Bad ratio over the first rule's long window.
    pub bad_ratio: f64,
    /// Short-window burn rate of the first rule.
    pub burn_short: f64,
    /// Long-window burn rate of the first rule.
    pub burn_long: f64,
    /// Error budget left in the longest configured window, in `0..=1`.
    pub budget_remaining: f64,
}

#[derive(Debug)]
struct SloRuntime {
    state: AlertState,
    since_tick: u64,
    last: Option<SloStatus>,
}

/// Evaluates a set of [`SloSpec`]s against the tsdb each tick, running
/// the per-SLO alert state machine and retaining transitions in a
/// bounded ring.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    runtimes: Mutex<Vec<SloRuntime>>,
    history_capacity: usize,
    history_seq: AtomicU64,
    history: Mutex<VecDeque<AlertEvent>>,
}

impl SloEngine {
    /// An engine over `specs`, retaining at most `history_capacity`
    /// transitions (minimum 1).
    pub fn new(specs: Vec<SloSpec>, history_capacity: usize) -> SloEngine {
        let runtimes = specs
            .iter()
            .map(|_| SloRuntime {
                state: AlertState::Ok,
                since_tick: 0,
                last: None,
            })
            .collect();
        SloEngine {
            specs,
            runtimes: Mutex::new(runtimes),
            history_capacity: history_capacity.max(1),
            history_seq: AtomicU64::new(0),
            history: Mutex::new(VecDeque::new()),
        }
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Evaluates every spec at `tick` and advances the state machines.
    /// Called by the self-scraper right after [`Tsdb::ingest`].
    pub fn evaluate(&self, tick: u64, tsdb: &Tsdb) {
        let mut runtimes = self.runtimes.lock().unwrap_or_else(PoisonError::into_inner);
        for (spec, runtime) in self.specs.iter().zip(runtimes.iter_mut()) {
            let budget = (1.0 - spec.objective).max(f64::MIN_POSITIVE);
            let mut breached = false;
            let mut first: Option<(f64, f64, f64)> = None; // (bad_long, burn_short, burn_long)
            let mut longest: (u64, f64) = (0, 0.0); // (window, bad ratio)
            for rule in &spec.rules {
                let bad_long = bad_ratio(&spec.kind, tsdb, tick, rule.long_ticks);
                let bad_short = bad_ratio(&spec.kind, tsdb, tick, rule.short_ticks);
                let burn_long = bad_long / budget;
                let burn_short = bad_short / budget;
                if burn_long >= rule.factor && burn_short >= rule.factor {
                    breached = true;
                }
                if first.is_none() {
                    first = Some((bad_long, burn_short, burn_long));
                }
                if rule.long_ticks >= longest.0 {
                    longest = (rule.long_ticks, bad_long);
                }
            }
            let (bad_ratio, burn_short, burn_long) = first.unwrap_or((0.0, 0.0, 0.0));
            let next = next_state(runtime.state, breached, tick, runtime.since_tick, spec.pending_ticks);
            if next != runtime.state {
                let trace_id = spec
                    .exemplar_family
                    .as_deref()
                    .and_then(|family| tsdb.exemplar(family));
                self.push_event(AlertEvent {
                    seq: 0, // assigned in push_event
                    timestamp_ms: now_ms(),
                    tick,
                    slo: spec.name.clone(),
                    from: runtime.state,
                    to: next,
                    burn_short,
                    burn_long,
                    trace_id,
                });
                runtime.state = next;
                runtime.since_tick = tick;
            }
            runtime.last = Some(SloStatus {
                name: spec.name.clone(),
                objective: spec.objective,
                state: runtime.state,
                since_tick: runtime.since_tick,
                bad_ratio,
                burn_short,
                burn_long,
                budget_remaining: (1.0 - longest.1 / budget).clamp(0.0, 1.0),
            });
        }
    }

    fn push_event(&self, mut event: AlertEvent) {
        event.seq = self.history_seq.fetch_add(1, Ordering::Relaxed);
        let mut history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        if history.len() >= self.history_capacity {
            history.pop_front();
        }
        history.push_back(event);
    }

    /// Current status of every SLO (specs not yet evaluated report `Ok`
    /// with zeroed ratios).
    pub fn statuses(&self) -> Vec<SloStatus> {
        let runtimes = self.runtimes.lock().unwrap_or_else(PoisonError::into_inner);
        self.specs
            .iter()
            .zip(runtimes.iter())
            .map(|(spec, runtime)| {
                runtime.last.clone().unwrap_or(SloStatus {
                    name: spec.name.clone(),
                    objective: spec.objective,
                    state: runtime.state,
                    since_tick: runtime.since_tick,
                    bad_ratio: 0.0,
                    burn_short: 0.0,
                    burn_long: 0.0,
                    budget_remaining: 1.0,
                })
            })
            .collect()
    }

    /// Whether any SLO is currently `Firing` (healthz's degraded bit).
    pub fn any_firing(&self) -> bool {
        let runtimes = self.runtimes.lock().unwrap_or_else(PoisonError::into_inner);
        runtimes.iter().any(|r| r.state == AlertState::Firing)
    }

    /// Transitions appended so far (including evicted ones).
    pub fn history_total(&self) -> u64 {
        self.history_seq.load(Ordering::Relaxed)
    }

    /// The most recent `n` transitions, oldest first.
    pub fn history_tail(&self, n: usize) -> Vec<AlertEvent> {
        let history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        let skip = history.len().saturating_sub(n);
        history.iter().skip(skip).cloned().collect()
    }
}

/// The state machine. Breaches must persist `pending_ticks` evaluations
/// to fire; recovery from `Firing` passes through `Resolved`.
fn next_state(
    state: AlertState,
    breached: bool,
    tick: u64,
    since_tick: u64,
    pending_ticks: u64,
) -> AlertState {
    match (state, breached) {
        (AlertState::Ok, true) => AlertState::Pending,
        (AlertState::Ok, false) => AlertState::Ok,
        (AlertState::Pending, true) => {
            if tick.saturating_sub(since_tick) >= pending_ticks {
                AlertState::Firing
            } else {
                AlertState::Pending
            }
        }
        (AlertState::Pending, false) => AlertState::Ok,
        (AlertState::Firing, true) => AlertState::Firing,
        (AlertState::Firing, false) => AlertState::Resolved,
        (AlertState::Resolved, true) => AlertState::Pending,
        (AlertState::Resolved, false) => AlertState::Ok,
    }
}

/// The bad ratio of one spec over the window `(tick − window, tick]`.
fn bad_ratio(kind: &SloKind, tsdb: &Tsdb, tick: u64, window: u64) -> f64 {
    let from = tick.saturating_sub(window);
    match kind {
        SloKind::ErrorRatio {
            bad_name,
            bad_filter,
            total_name,
            total_filter,
        } => {
            let total = tsdb.window_sum(total_name, total_filter, from, tick);
            if total <= 0.0 {
                return 0.0;
            }
            (tsdb.window_sum(bad_name, bad_filter, from, tick) / total).clamp(0.0, 1.0)
        }
        SloKind::LatencyThreshold { family, le } => {
            let total = tsdb.window_sum(&format!("{family}_count"), "", from, tick);
            if total <= 0.0 {
                return 0.0;
            }
            let good = tsdb.window_sum(
                &format!("{family}_bucket"),
                &format!("le=\"{le}\""),
                from,
                tick,
            );
            (1.0 - good / total).clamp(0.0, 1.0)
        }
        SloKind::GaugeLevel { name, filter } => {
            tsdb.latest(name, filter).unwrap_or(0.0).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Sample, SampleValue};
    use crate::tsdb::TsdbConfig;

    fn availability_spec(pending: u64) -> SloSpec {
        SloSpec {
            name: "availability".to_string(),
            objective: 0.9,
            kind: SloKind::ErrorRatio {
                bad_name: "req_total".to_string(),
                bad_filter: "class=\"5xx\"".to_string(),
                total_name: "req_total".to_string(),
                total_filter: String::new(),
            },
            rules: vec![BurnRule {
                long_ticks: 8,
                short_ticks: 2,
                factor: 1.0,
            }],
            pending_ticks: pending,
            exemplar_family: Some("lat_seconds".to_string()),
        }
    }

    fn req(class: &str, v: u64) -> Sample {
        Sample {
            name: "req_total".to_string(),
            labels: format!("class=\"{class}\""),
            value: SampleValue::Counter(v),
        }
    }

    /// Drives `tick`s of traffic: `ok`/`bad` are cumulative counters.
    fn drive(db: &Tsdb, engine: &SloEngine, tick: u64, ok: u64, bad: u64) {
        db.ingest(tick, &[req("2xx", ok), req("5xx", bad)]);
        engine.evaluate(tick, db);
    }

    #[test]
    fn availability_lifecycle_ok_pending_firing_resolved() {
        let db = Tsdb::new(TsdbConfig::default());
        let engine = SloEngine::new(vec![availability_spec(2)], 64);
        // Healthy traffic: 10 good per tick, no errors.
        let mut ok = 0;
        for t in 0..4 {
            ok += 10;
            drive(&db, &engine, t, ok, 0);
        }
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
        assert!(!engine.any_firing());
        // Outage: everything 5xx. Budget is 0.1, so burn hits 10×.
        let mut bad = 0;
        for t in 4..6 {
            bad += 10;
            drive(&db, &engine, t, ok, bad);
        }
        assert_eq!(engine.statuses()[0].state, AlertState::Pending);
        for t in 6..8 {
            bad += 10;
            drive(&db, &engine, t, ok, bad);
        }
        assert_eq!(engine.statuses()[0].state, AlertState::Firing);
        assert!(engine.any_firing());
        let firing = engine.statuses()[0].clone();
        assert!(firing.burn_short >= 1.0, "{firing:?}");
        assert!(firing.bad_ratio > 0.3, "{firing:?}");
        assert!(firing.budget_remaining < 1.0, "{firing:?}");
        // Recovery: good traffic only. The short window clears first;
        // once both clear the state passes through Resolved to Ok.
        let mut state = AlertState::Firing;
        for t in 8..32 {
            ok += 50;
            drive(&db, &engine, t, ok, bad);
            state = engine.statuses()[0].state;
            if state != AlertState::Firing {
                break;
            }
        }
        assert_eq!(state, AlertState::Resolved);
        assert!(!engine.any_firing());
        let t_next = engine.statuses()[0].since_tick + 1;
        ok += 50;
        drive(&db, &engine, t_next, ok, bad);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
        // History holds the full lifecycle in order.
        let transitions: Vec<(AlertState, AlertState)> =
            engine.history_tail(10).iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(
            transitions,
            vec![
                (AlertState::Ok, AlertState::Pending),
                (AlertState::Pending, AlertState::Firing),
                (AlertState::Firing, AlertState::Resolved),
                (AlertState::Resolved, AlertState::Ok),
            ]
        );
        // Sequence numbers are gap-free.
        let seqs: Vec<u64> = engine.history_tail(10).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(engine.history_total(), 4);
    }

    #[test]
    fn short_window_guard_prevents_paging_on_stale_breaches() {
        // A burst of errors deep in the long window must not fire once
        // the short window is clean again: both halves must breach.
        let db = Tsdb::new(TsdbConfig::default());
        let engine = SloEngine::new(vec![availability_spec(0)], 16);
        drive(&db, &engine, 0, 10, 10); // 50% errors at tick 0
        // Clean traffic for the rest of the long window.
        let mut ok = 10;
        for t in 1..6 {
            ok += 30;
            drive(&db, &engine, t, ok, 10);
        }
        let status = &engine.statuses()[0];
        assert_ne!(status.state, AlertState::Firing, "{status:?}");
        assert!(status.burn_short < 1.0, "{status:?}");
    }

    #[test]
    fn latency_threshold_reads_bucket_fanout() {
        let db = Tsdb::new(TsdbConfig::default());
        let spec = SloSpec {
            name: "latency".to_string(),
            objective: 0.5, // half the requests must be ≤ le
            kind: SloKind::LatencyThreshold {
                family: "lat_seconds".to_string(),
                le: "0.25".to_string(),
            },
            rules: vec![BurnRule {
                long_ticks: 4,
                short_ticks: 1,
                factor: 1.0,
            }],
            pending_ticks: 0,
            exemplar_family: Some("lat_seconds".to_string()),
        };
        let engine = SloEngine::new(vec![spec], 16);
        let hist = |fast: u64, slow: u64| Sample {
            name: "lat_seconds".to_string(),
            labels: String::new(),
            value: SampleValue::Histogram {
                bounds: vec![0.25],
                counts: vec![fast, slow],
                sum: 0.0,
                exemplar_trace: Some(0xfeed),
            },
        };
        // Tick 0: all fast. Tick 1: 9 of 10 new samples slow.
        db.ingest(0, &[hist(10, 0)]);
        engine.evaluate(0, &db);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
        db.ingest(1, &[hist(11, 9)]);
        engine.evaluate(1, &db);
        let status = engine.statuses()[0].clone();
        assert_eq!(status.state, AlertState::Pending);
        assert!((status.burn_short - 1.8).abs() < 1e-9, "{status:?}");
        engine.evaluate(2, &db);
        // The transition event carries the family's exemplar trace.
        let events = engine.history_tail(4);
        assert!(!events.is_empty());
        assert_eq!(events[0].trace_id, Some(0xfeed));
    }

    #[test]
    fn gauge_level_reads_the_latest_value() {
        let db = Tsdb::new(TsdbConfig::default());
        let spec = SloSpec {
            name: "privacy-headroom".to_string(),
            objective: 0.95, // at most 5% of subjects near the cap
            kind: SloKind::GaugeLevel {
                name: "near_cap_ratio".to_string(),
                filter: String::new(),
            },
            rules: vec![BurnRule {
                long_ticks: 4,
                short_ticks: 1,
                factor: 1.0,
            }],
            pending_ticks: 0,
            exemplar_family: None,
        };
        let engine = SloEngine::new(vec![spec], 16);
        let level = |v: f64| Sample {
            name: "near_cap_ratio".to_string(),
            labels: String::new(),
            value: SampleValue::Gauge(v),
        };
        db.ingest(0, &[level(0.01)]);
        engine.evaluate(0, &db);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
        db.ingest(1, &[level(0.2)]); // 20% near cap: 4× the budget
        engine.evaluate(1, &db);
        let status = engine.statuses()[0].clone();
        assert_eq!(status.state, AlertState::Pending);
        assert!((status.bad_ratio - 0.2).abs() < 1e-9, "{status:?}");
        assert_eq!(engine.history_tail(1)[0].trace_id, None);
    }

    #[test]
    fn burn_rate_math_is_ratio_over_budget() {
        let db = Tsdb::new(TsdbConfig::default());
        let mut spec = availability_spec(0);
        spec.objective = 0.99; // budget 0.01
        let engine = SloEngine::new(vec![spec], 16);
        drive(&db, &engine, 1, 95, 5); // 5% errors
        let status = engine.statuses()[0].clone();
        assert!((status.bad_ratio - 0.05).abs() < 1e-9, "{status:?}");
        assert!((status.burn_long - 5.0).abs() < 1e-9, "{status:?}");
    }

    #[test]
    fn history_ring_is_bounded() {
        let db = Tsdb::new(TsdbConfig::default());
        let engine = SloEngine::new(vec![availability_spec(0)], 4);
        // Flap between all-bad and all-good to generate transitions.
        let (mut ok, mut bad) = (0u64, 0u64);
        for round in 0..20u64 {
            let t = round * 20;
            if round % 2 == 0 {
                bad += 1000;
            } else {
                ok += 100_000;
            }
            drive(&db, &engine, t, ok, bad);
            drive(&db, &engine, t + 1, ok, bad);
        }
        assert!(engine.history_total() > 4);
        let tail = engine.history_tail(100);
        assert_eq!(tail.len(), 4, "ring never grows past capacity");
        // Eviction is detectable through the sequence gap.
        assert_eq!(tail[3].seq, engine.history_total() - 1);
        assert!(tail[0].seq > 0);
    }

    #[test]
    fn empty_windows_burn_nothing() {
        let db = Tsdb::new(TsdbConfig::default());
        let engine = SloEngine::new(vec![availability_spec(0)], 4);
        engine.evaluate(5, &db); // no data at all
        let status = engine.statuses()[0].clone();
        assert_eq!(status.state, AlertState::Ok);
        assert_eq!(status.bad_ratio, 0.0);
        assert_eq!(status.budget_remaining, 1.0);
    }

    #[test]
    fn states_have_stable_wire_names() {
        assert_eq!(AlertState::Ok.as_str(), "ok");
        assert_eq!(AlertState::Pending.as_str(), "pending");
        assert_eq!(AlertState::Firing.as_str(), "firing");
        assert_eq!(AlertState::Resolved.as_str(), "resolved");
    }
}
