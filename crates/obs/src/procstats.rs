//! Process resource stats from `/proc/self` (Linux), with a portable
//! no-op fallback.
//!
//! The metrics layer covers what the *code* does; this covers what the
//! *process* costs the machine: resident set, open file descriptors,
//! thread count and CPU time split user/system. On Linux the numbers
//! come straight from `procfs` text files — no libc calls, no unsafe,
//! in keeping with the crate's zero-dep discipline. Off Linux every
//! field reads [`None`] and callers degrade gracefully (gauges simply
//! are not set, the `/v1/procstats` endpoint says `"available": false`).
//!
//! Every field is per-process and identity-free by construction — there
//! is nothing user-shaped in `/proc/self` — but the file sits in
//! `loki-lint`'s raw-identity scope like the rest of the egress
//! surfaces, so that stays true structurally.

use std::fs;

/// A point-in-time reading of the process's resource footprint. Fields
/// are `None` when the platform (or a racing teardown) cannot supply
/// them; readings are not atomic across fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Resident set size in bytes (`VmRSS` of `/proc/self/status`).
    pub rss_bytes: Option<u64>,
    /// Open file descriptors (entries in `/proc/self/fd`).
    pub open_fds: Option<u64>,
    /// OS threads in the process (`num_threads` of `/proc/self/stat`).
    pub threads: Option<u64>,
    /// User-mode CPU time in clock ticks (`utime`).
    pub utime_ticks: Option<u64>,
    /// Kernel-mode CPU time in clock ticks (`stime`).
    pub stime_ticks: Option<u64>,
}

impl ProcStats {
    /// Reads the current process's stats. Cheap (three small procfs
    /// reads plus one directory scan) but not free — call it on scrape
    /// ticks, not per request.
    pub fn read() -> ProcStats {
        imp::read()
    }

    /// Whether this platform supplies any readings at all.
    pub fn available() -> bool {
        cfg!(target_os = "linux")
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{fs, ProcStats};

    pub(super) fn read() -> ProcStats {
        let (threads, utime, stime) = stat_fields().unwrap_or((None, None, None));
        ProcStats {
            rss_bytes: vm_rss(),
            open_fds: fd_count(),
            threads,
            utime_ticks: utime,
            stime_ticks: stime,
        }
    }

    /// `VmRSS:	  12345 kB` from `/proc/self/status`.
    fn vm_rss() -> Option<u64> {
        let status = fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
        let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kb * 1024)
    }

    fn fd_count() -> Option<u64> {
        Some(fs::read_dir("/proc/self/fd").ok()?.count() as u64)
    }

    /// `utime`, `stime` and `num_threads` from `/proc/self/stat`. The
    /// `comm` field may itself contain spaces and parentheses, so the
    /// parse anchors on the *last* `)` and counts space-separated fields
    /// from there: utime is overall field 14, stime 15, num_threads 20;
    /// after the comm that is rest[11], rest[12], rest[17].
    fn stat_fields() -> Option<(Option<u64>, Option<u64>, Option<u64>)> {
        let stat = fs::read_to_string("/proc/self/stat").ok()?;
        let rest = &stat[stat.rfind(')')? + 1..];
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let grab = |i: usize| fields.get(i).and_then(|v| v.parse::<u64>().ok());
        Some((grab(17), grab(11), grab(12)))
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::ProcStats;

    pub(super) fn read() -> ProcStats {
        ProcStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_readings_are_sane() {
        let s = ProcStats::read();
        assert!(ProcStats::available());
        // A running Rust test binary is comfortably past all of these.
        assert!(s.rss_bytes.unwrap_or(0) > 1024 * 1024, "{s:?}");
        assert!(s.open_fds.unwrap_or(0) >= 3, "{s:?}");
        assert!(s.threads.unwrap_or(0) >= 1, "{s:?}");
        assert!(s.utime_ticks.is_some() && s.stime_ticks.is_some(), "{s:?}");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn thread_count_sees_a_parked_helper_thread() {
        // Other tests spawn/join threads concurrently, so exact deltas
        // are racy; a parked helper guarantees the floor is >= 2.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let joiner = std::thread::spawn(move || {
            ready_tx.send(()).ok();
            rx.recv().ok();
        });
        ready_rx.recv().expect("helper thread started");
        let during = ProcStats::read().threads.unwrap_or(0);
        assert!(during >= 2, "during={during}");
        tx.send(()).ok();
        joiner.join().expect("helper thread joined");
    }

    #[test]
    #[cfg(not(target_os = "linux"))]
    fn non_linux_reads_are_all_none() {
        assert_eq!(ProcStats::read(), ProcStats::default());
        assert!(!ProcStats::available());
    }
}
