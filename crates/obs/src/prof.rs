//! Phase-tagged wall-clock profiler: always-on, near-zero hot-path cost.
//!
//! The serving threads (reactor shards, the WAL group committer, the
//! self-scraper) are long-lived loops, and the question an operator asks
//! under load is *where inside the loop the wall-clock goes* — epoll
//! wait vs. dispatch, fsync vs. batch drain, lock vs. apply. Signal
//! profilers answer that with `SIGPROF` + stack unwinding, which is
//! exactly the machinery a zero-dep `std`-only workspace cannot carry
//! (and whose async-signal handlers are a well of UB). This module
//! answers it with cooperation instead:
//!
//! * Hot loops *declare* their current phase with [`phase!`]`("name")`.
//!   Names are interned to a small integer id once per call site (a
//!   `OnceLock` in the macro expansion), so the steady-state cost is one
//!   thread-local store plus one relaxed atomic store — cheaper than a
//!   metrics counter bump.
//! * Long-lived threads [`register_thread`] once; the registration guard
//!   owns a [`ThreadSlot`] whose `phase` cell the sampler reads.
//! * A sampler ticks at [`SAMPLE_HZ`] (97 Hz — prime, so it cannot lock
//!   step with 10 ms/100 ms periodic work), reads every registered
//!   thread's current phase and bumps a fixed per-thread × per-phase
//!   sample table. No signals, no unwinding, no allocation on the
//!   sampled threads.
//!
//! The result is a statistical wall-clock profile — `samples ×
//! 1/SAMPLE_HZ ≈ time` — rendered by [`snapshot`] as a phase table and
//! by [`ProfileSnapshot::collapsed`] in the collapsed-stack text format
//! flamegraph tooling eats.
//!
//! **Privacy contract:** phase names and thread names are `&'static str`
//! literals (the [`phase!`] macro only accepts a literal), so per-user
//! or per-request data structurally cannot enter the profile. The
//! sampler never reads anything but the phase id. `loki-lint`'s
//! raw-identity taint pass covers this file as an egress surface.
//!
//! The allocator wrapper ([`crate::CountingAlloc`]) reads the same
//! thread-local phase tag to attribute allocations, which is why the
//! thread-local is a const-initialized `Cell` (its first access must not
//! allocate — the allocator itself consults it).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};
use std::time::Duration;

/// Capacity of the phase intern table. Phases are compile-time literals
/// named by this workspace's own hot loops, so a small fixed table is a
/// feature: overflow means someone is generating phase names, which the
/// design forbids. Overflowing interns collapse into id 0 ("untagged")
/// and are counted in [`phases_dropped`].
pub const MAX_PHASES: usize = 64;

/// Sampler frequency. Prime, so the sampling grid cannot alias with the
/// reactor's 100 ms timer tick, a 1 Hz scraper or any other round-number
/// periodic loop (the classic "profiler only ever fires during sleep"
/// failure mode of aligned sampling).
pub const SAMPLE_HZ: u64 = 97;

/// Phase id 0: registered but not (currently) inside a declared phase.
pub const UNTAGGED: &str = "untagged";

static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
static TICKS: AtomicU64 = AtomicU64::new(0);
static THREADS: Mutex<Vec<Weak<ThreadSlot>>> = Mutex::new(Vec::new());

thread_local! {
    /// The calling thread's current phase id, readable by the counting
    /// allocator mid-allocation: const-initialized so the first access
    /// allocates nothing (a lazy TLS init inside `GlobalAlloc::alloc`
    /// would recurse).
    static PHASE: Cell<u32> = const { Cell::new(0) };
    /// The slot the sampler reads for this thread, when registered.
    static SLOT: RefCell<Option<Arc<ThreadSlot>>> = const { RefCell::new(None) };
}

/// Interns a phase name, returning its small id. Idempotent; call sites
/// should cache the id (the [`phase!`] macro does, via a `OnceLock`).
/// A full table returns id 0 and counts the drop.
pub fn intern(name: &'static str) -> u16 {
    let mut names = NAMES.lock().unwrap_or_else(PoisonError::into_inner);
    if names.is_empty() {
        names.push(UNTAGGED);
    }
    if let Some(idx) = names.iter().position(|n| *n == name) {
        return idx as u16;
    }
    if names.len() >= MAX_PHASES {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return 0;
    }
    names.push(name);
    (names.len() - 1) as u16
}

/// Resolves a phase id back to its name ([`UNTAGGED`] for unknown ids).
pub fn phase_name(id: u16) -> &'static str {
    let names = NAMES.lock().unwrap_or_else(PoisonError::into_inner);
    names.get(id as usize).copied().unwrap_or(UNTAGGED)
}

/// Number of distinct interned phases (including [`UNTAGGED`] once
/// anything has been interned).
pub fn phase_count() -> usize {
    NAMES.lock().unwrap_or_else(PoisonError::into_inner).len()
}

/// Interns that were collapsed into id 0 because the table was full.
pub fn phases_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Declares the calling thread's current phase by interned id. Use the
/// [`phase!`] macro instead of calling this directly — the macro pins
/// the name to a `&'static str` literal and caches the intern.
pub fn set_phase(id: u16) {
    // `try_with` so a phase declared during thread teardown (a Drop impl
    // late in TLS destruction) degrades to a no-op instead of aborting.
    let _ = PHASE.try_with(|c| c.set(u32::from(id)));
    let _ = SLOT.try_with(|s| {
        if let Some(slot) = s.borrow().as_ref() {
            slot.phase.store(u32::from(id), Ordering::Relaxed);
        }
    });
}

/// The calling thread's current phase id. Allocation-safe: reads only
/// the const-initialized cell, returning 0 when TLS is already torn
/// down. This is the counting allocator's attribution hook.
pub fn current_phase_id() -> u16 {
    PHASE.try_with(|c| c.get()).unwrap_or(0) as u16
}

/// One registered thread as the sampler sees it: an identity (a
/// `&'static str` name plus an ordinal for thread pools, e.g.
/// `net.reactor/3`), the phase cell the thread publishes into, and the
/// sample table the sampler accumulates into.
#[derive(Debug)]
pub struct ThreadSlot {
    name: &'static str,
    ordinal: u16,
    phase: AtomicU32,
    samples: [AtomicU64; MAX_PHASES],
}

impl ThreadSlot {
    /// The thread's registered (static) name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Ordinal distinguishing threads that share a name.
    pub fn ordinal(&self) -> u16 {
        self.ordinal
    }
}

/// Guard returned by [`register_thread`]; the thread stays visible to
/// the sampler until this drops.
#[derive(Debug)]
pub struct ThreadRegistration {
    slot: Arc<ThreadSlot>,
}

impl ThreadRegistration {
    /// The registered slot (mostly useful in tests).
    pub fn slot(&self) -> &Arc<ThreadSlot> {
        &self.slot
    }
}

impl Drop for ThreadRegistration {
    fn drop(&mut self) {
        let _ = SLOT.try_with(|s| *s.borrow_mut() = None);
        let _ = PHASE.try_with(|c| c.set(0));
        // The registry holds only a Weak; dropping our Arc is what
        // actually retires the slot. The sampler prunes dead entries.
    }
}

#[allow(clippy::declare_interior_mutable_const)] // const template for array init
const ZERO: AtomicU64 = AtomicU64::new(0);

/// Registers the calling thread with the profiler under a static `name`
/// (plus `ordinal` for pools). The returned guard must live as long as
/// the thread's working loop; on drop the thread disappears from
/// subsequent samples. Re-registering replaces the previous slot.
pub fn register_thread(name: &'static str, ordinal: u16) -> ThreadRegistration {
    let slot = Arc::new(ThreadSlot {
        name,
        ordinal,
        phase: AtomicU32::new(u32::from(current_phase_id())),
        samples: [ZERO; MAX_PHASES],
    });
    let _ = SLOT.try_with(|s| *s.borrow_mut() = Some(Arc::clone(&slot)));
    let mut threads = THREADS.lock().unwrap_or_else(PoisonError::into_inner);
    threads.retain(|w| w.strong_count() > 0);
    threads.push(Arc::downgrade(&slot));
    ThreadRegistration { slot }
}

/// Takes one sample: reads every live registered thread's current phase
/// and bumps its table entry, pruning threads that exited. Normally
/// driven by the background sampler; tests call it directly for
/// determinism. Returns the number of threads sampled.
pub fn sample_once() -> usize {
    let slots: Vec<Arc<ThreadSlot>> = {
        let mut threads = THREADS.lock().unwrap_or_else(PoisonError::into_inner);
        threads.retain(|w| w.strong_count() > 0);
        threads.iter().filter_map(Weak::upgrade).collect()
    };
    for slot in &slots {
        let phase = slot.phase.load(Ordering::Relaxed) as usize;
        if let Some(cell) = slot.samples.get(phase) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }
    TICKS.fetch_add(1, Ordering::Relaxed);
    slots.len()
}

/// Total sampling ticks taken so far (across the background sampler and
/// any direct [`sample_once`] calls).
pub fn ticks() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

static SAMPLER_STARTED: OnceLock<()> = OnceLock::new();
static SAMPLER_ENABLED: AtomicBool = AtomicBool::new(true);

/// Pauses/resumes the background sampler without tearing it down (the
/// PROF-1 bench interleaves on/off trials in one process this way).
/// [`sample_once`] is unaffected.
pub fn set_sampler_enabled(on: bool) {
    SAMPLER_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the background sampler is currently taking samples.
pub fn sampler_enabled() -> bool {
    SAMPLER_ENABLED.load(Ordering::Relaxed)
}

/// Starts the process-wide background sampler thread (idempotent;
/// returns `true` only for the call that actually started it). The
/// thread is detached and lives for the rest of the process — it costs
/// one wakeup every ~10 ms and touches only profiler state, so there is
/// nothing to shut down in an orderly way.
pub fn start_sampler() -> bool {
    let mut started = false;
    SAMPLER_STARTED.get_or_init(|| {
        started = true;
        // The sampler must never sample itself into the tables it reads
        // (it is not registered), but it does declare a phase so its own
        // allocations (the snapshot Vec in sample_once) are attributed.
        let spawned = std::thread::Builder::new()
            .name("loki-prof-sampler".to_string())
            .spawn(|| {
                let period = Duration::from_nanos(1_000_000_000 / SAMPLE_HZ);
                loop {
                    if SAMPLER_ENABLED.load(Ordering::Relaxed) {
                        sample_once();
                    }
                    std::thread::sleep(period);
                }
            });
        // A spawn failure (thread exhaustion) degrades to "no background
        // sampler": sample_once still works, /v1/profile just stays at
        // whatever was accumulated.
        drop(spawned);
    });
    started
}

/// One phase row of a thread's profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSample {
    /// Interned phase name.
    pub phase: &'static str,
    /// Samples observed in this phase.
    pub samples: u64,
}

/// One registered thread's accumulated profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadProfile {
    /// Registered thread name (static by construction).
    pub name: &'static str,
    /// Ordinal distinguishing threads sharing a name.
    pub ordinal: u16,
    /// Total samples across all phases.
    pub total: u64,
    /// Non-zero phase rows, descending by sample count.
    pub phases: Vec<PhaseSample>,
}

/// A point-in-time view of the whole profiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// The background sampler's nominal frequency.
    pub hz: u64,
    /// Sampling ticks taken so far.
    pub ticks: u64,
    /// Interns dropped because the phase table was full.
    pub dropped_phases: u64,
    /// Live registered threads, in registration order.
    pub threads: Vec<ThreadProfile>,
}

impl ProfileSnapshot {
    /// Sum of every thread's sample count.
    pub fn total_samples(&self) -> u64 {
        self.threads.iter().map(|t| t.total).sum()
    }

    /// Samples attributed to a declared phase (everything except
    /// [`UNTAGGED`]) — the numerator of the attribution ratio the
    /// PROF-1 acceptance bar is stated over.
    pub fn attributed_samples(&self) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| t.phases.iter())
            .filter(|p| p.phase != UNTAGGED)
            .map(|p| p.samples)
            .sum()
    }

    /// Renders the collapsed-stack text format flamegraph tooling
    /// consumes: one `thread/ordinal;phase count` line per non-zero
    /// cell, sorted for stable output.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for t in &self.threads {
            for p in &t.phases {
                out.push_str(t.name);
                out.push('/');
                out.push_str(&t.ordinal.to_string());
                out.push(';');
                out.push_str(p.phase);
                out.push(' ');
                out.push_str(&p.samples.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// Snapshots every live registered thread's sample table. Reads race
/// benignly with the sampler (relaxed counters only ever grow).
pub fn snapshot() -> ProfileSnapshot {
    let slots: Vec<Arc<ThreadSlot>> = {
        let threads = THREADS.lock().unwrap_or_else(PoisonError::into_inner);
        threads.iter().filter_map(Weak::upgrade).collect()
    };
    let threads = slots
        .iter()
        .map(|slot| {
            let mut phases: Vec<PhaseSample> = slot
                .samples
                .iter()
                .enumerate()
                .filter_map(|(id, cell)| {
                    let samples = cell.load(Ordering::Relaxed);
                    (samples > 0).then(|| PhaseSample {
                        phase: phase_name(id as u16),
                        samples,
                    })
                })
                .collect();
            phases.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.phase.cmp(b.phase)));
            ThreadProfile {
                name: slot.name,
                ordinal: slot.ordinal,
                total: phases.iter().map(|p| p.samples).sum(),
                phases,
            }
        })
        .collect();
    ProfileSnapshot {
        hz: SAMPLE_HZ,
        ticks: ticks(),
        dropped_phases: phases_dropped(),
        threads,
    }
}

/// Declares the calling thread's current phase. The argument must be a
/// string *literal* — the macro rejects expressions at expansion time,
/// which is the structural guarantee that request- or user-derived data
/// can never become a phase name (an egress surface). The intern id is
/// cached per call site, so steady-state cost is one `OnceLock` load,
/// one thread-local store and one relaxed atomic store.
#[macro_export]
macro_rules! phase {
    ($name:literal) => {{
        static __LOKI_PHASE_ID: ::std::sync::OnceLock<u16> = ::std::sync::OnceLock::new();
        $crate::prof::set_phase(*__LOKI_PHASE_ID.get_or_init(|| $crate::prof::intern($name)));
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The intern table and registry are process-global, so tests here
    // share them (cargo runs tests in threads of one process). Each test
    // therefore asserts on its *own* registrations and relative growth,
    // never on global totals being exact.

    #[test]
    fn intern_is_idempotent_and_names_resolve() {
        let a = intern("test.alpha");
        let b = intern("test.beta");
        assert_ne!(a, b);
        assert_eq!(intern("test.alpha"), a);
        assert_eq!(phase_name(a), "test.alpha");
        assert_eq!(phase_name(b), "test.beta");
        assert_eq!(phase_name(u16::MAX), UNTAGGED);
        assert!(phase_count() >= 3); // untagged + the two above
    }

    #[test]
    fn registered_thread_phases_accumulate_samples() {
        let reg = register_thread("test.worker", 7);
        phase!("test.phase_one");
        sample_once();
        sample_once();
        phase!("test.phase_two");
        sample_once();

        let snap = snapshot();
        let me = snap
            .threads
            .iter()
            .find(|t| t.name == "test.worker" && t.ordinal == 7)
            .expect("registered thread visible");
        assert_eq!(me.total, 3);
        let one = me.phases.iter().find(|p| p.phase == "test.phase_one");
        let two = me.phases.iter().find(|p| p.phase == "test.phase_two");
        assert_eq!(one.map(|p| p.samples), Some(2));
        assert_eq!(two.map(|p| p.samples), Some(1));
        assert!(snap.collapsed().contains("test.worker/7;test.phase_one 2"));
        drop(reg);

        // After deregistration the thread no longer appears.
        let snap = snapshot();
        assert!(
            !snap.threads.iter().any(|t| t.name == "test.worker" && t.ordinal == 7),
            "{snap:?}"
        );
    }

    #[test]
    fn unregistered_threads_are_invisible_but_keep_a_phase_tag() {
        phase!("test.loose_phase");
        assert_eq!(phase_name(current_phase_id()), "test.loose_phase");
        let snap = snapshot();
        assert!(
            !snap.threads.iter().any(|t| t.name == "test.loose_phase"),
            "phases are not thread names"
        );
        // Reset so later tests on this runner thread start untagged.
        set_phase(0);
    }

    #[test]
    fn exited_threads_are_pruned_from_samples() {
        let handle = std::thread::spawn(|| {
            let _reg = register_thread("test.ephemeral", 0);
            phase!("test.ephemeral_work");
            sample_once();
        });
        handle.join().expect("ephemeral thread");
        sample_once(); // prunes the dead weak
        let snap = snapshot();
        assert!(
            !snap.threads.iter().any(|t| t.name == "test.ephemeral"),
            "{snap:?}"
        );
    }

    #[test]
    fn attribution_ratio_counts_only_declared_phases() {
        let _reg = register_thread("test.ratio", 0);
        set_phase(0); // untagged
        sample_once();
        phase!("test.ratio_work");
        sample_once();
        sample_once();
        let snap = snapshot();
        let me = snap
            .threads
            .iter()
            .find(|t| t.name == "test.ratio")
            .expect("registered");
        assert_eq!(me.total, 3);
        let tagged: u64 = me
            .phases
            .iter()
            .filter(|p| p.phase != UNTAGGED)
            .map(|p| p.samples)
            .sum();
        assert_eq!(tagged, 2);
    }

    #[test]
    fn sampler_toggle_is_observable() {
        assert!(sampler_enabled());
        set_sampler_enabled(false);
        assert!(!sampler_enabled());
        set_sampler_enabled(true);
    }
}
