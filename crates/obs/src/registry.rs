//! The metric registry and Prometheus text-format renderer.
//!
//! Registration happens once, at startup, and returns `Arc` handles the
//! hot path records through directly — scrape-time rendering walks the
//! registry under a mutex, but recording never touches it.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Child {
    /// Pre-rendered `key="value",…` label body (no braces), empty when
    /// the child is unlabelled.
    labels: String,
    instrument: Instrument,
}

struct Family {
    help: String,
    children: Vec<Child>,
}

/// One instrument's value at snapshot time, as handed to the tsdb.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A counter's standing total.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(f64),
    /// A histogram's full state: raw per-bucket counts (one per bound,
    /// plus overflow last) rather than cumulative — the tsdb fans this
    /// out into `_bucket`/`_count`/`_sum` series itself.
    Histogram {
        /// Configured bucket upper bounds.
        bounds: Vec<f64>,
        /// Raw per-bucket counts, `bounds.len() + 1` long.
        counts: Vec<u64>,
        /// Sum of all samples.
        sum: f64,
        /// Trace id of the family's current exemplar, if any.
        exemplar_trace: Option<u64>,
    },
}

/// One child series in a registry snapshot: full prefixed name,
/// pre-rendered label body, and the value read from the atomic cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full metric name including the registry prefix.
    pub name: String,
    /// Pre-rendered `key="value",…` label body (no braces).
    pub labels: String,
    /// The instrument's value.
    pub value: SampleValue,
}

/// A named collection of instruments with Prometheus text exposition.
pub struct Registry {
    prefix: String,
    families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fams = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        write!(f, "Registry(prefix={:?}, {} families)", self.prefix, fams.len())
    }
}

impl Registry {
    /// Creates a registry whose metric names are prefixed `<prefix>_`.
    /// An empty prefix leaves names bare.
    pub fn new(prefix: &str) -> Registry {
        if !prefix.is_empty() {
            assert!(valid_metric_name(prefix), "invalid registry prefix `{prefix}`");
        }
        Registry {
            prefix: prefix.to_string(),
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers (or retrieves) a counter child under `name` with the
    /// given labels.
    ///
    /// # Panics
    /// Panics on invalid names/labels or if `name` is already registered
    /// as a different instrument kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let handle = Arc::new(Counter::new());
        match self.register(name, help, labels, Instrument::Counter(Arc::clone(&handle))) {
            Some(Instrument::Counter(existing)) => existing,
            _ => handle,
        }
    }

    /// Registers (or retrieves) a gauge child.
    ///
    /// # Panics
    /// Panics on invalid names/labels or on an instrument-kind clash.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let handle = Arc::new(Gauge::new());
        match self.register(name, help, labels, Instrument::Gauge(Arc::clone(&handle))) {
            Some(Instrument::Gauge(existing)) => existing,
            _ => handle,
        }
    }

    /// Registers (or retrieves) a histogram child over `bounds`.
    ///
    /// # Panics
    /// Panics on invalid names/labels/bounds or on an instrument-kind
    /// clash. A `le` label is reserved for the renderer.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        assert!(
            labels.iter().all(|(k, _)| *k != "le"),
            "`le` is reserved for histogram buckets"
        );
        let handle = Arc::new(Histogram::new(bounds));
        match self.register(name, help, labels, Instrument::Histogram(Arc::clone(&handle))) {
            Some(Instrument::Histogram(existing)) => existing,
            _ => handle,
        }
    }

    /// Inserts a child; returns the existing instrument when the exact
    /// (name, labels) child is already registered (idempotent).
    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        instrument: Instrument,
    ) -> Option<Instrument> {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name `{k}` on `{name}`");
        }
        let label_body = render_labels(labels);
        let mut fams = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            children: Vec::new(),
        });
        if let Some(child) = family.children.iter().find(|c| c.labels == label_body) {
            assert!(
                child.instrument.kind() == instrument.kind(),
                "metric `{name}` re-registered as {} (was {})",
                instrument.kind(),
                child.instrument.kind()
            );
            return Some(clone_instrument(&child.instrument));
        }
        if let Some(first) = family.children.first() {
            assert!(
                first.instrument.kind() == instrument.kind(),
                "metric `{name}` mixes {} and {} children",
                first.instrument.kind(),
                instrument.kind()
            );
        }
        family.children.push(Child {
            labels: label_body,
            instrument,
        });
        None
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (`text/plain; version=0.0.4`), families in name order.
    pub fn render(&self) -> String {
        let fams = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::with_capacity(4096);
        for (name, family) in fams.iter() {
            let full = self.full_name(name);
            let kind = family
                .children
                .first()
                .map_or("untyped", |c| c.instrument.kind());
            out.push_str(&format!("# HELP {full} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {full} {kind}\n"));
            for child in &family.children {
                match &child.instrument {
                    Instrument::Counter(c) => {
                        render_sample(&mut out, &full, &child.labels, c.get() as f64);
                    }
                    Instrument::Gauge(g) => {
                        render_sample(&mut out, &full, &child.labels, g.get());
                    }
                    Instrument::Histogram(h) => {
                        let cumulative = h.cumulative_buckets();
                        for (bound, cum) in h.bounds().iter().zip(&cumulative) {
                            let labels = join_labels(
                                &child.labels,
                                &format!("le=\"{}\"", fmt_value(*bound)),
                            );
                            render_sample(&mut out, &format!("{full}_bucket"), &labels, *cum as f64);
                        }
                        let inf = join_labels(&child.labels, "le=\"+Inf\"");
                        let total = cumulative.last().copied().unwrap_or(0);
                        render_sample(&mut out, &format!("{full}_bucket"), &inf, total as f64);
                        render_sample(&mut out, &format!("{full}_sum"), &child.labels, h.sum());
                        render_sample(&mut out, &format!("{full}_count"), &child.labels, total as f64);
                        // Exemplars ride along as comment lines: the
                        // 0.0.4 text format has no native exemplar
                        // syntax, and comments keep every parser happy
                        // while still letting an operator join a
                        // histogram family to a concrete trace id.
                        if let Some((sample, trace_id)) = h.exemplar() {
                            let series = if child.labels.is_empty() {
                                full.clone()
                            } else {
                                format!("{full}{{{}}}", child.labels)
                            };
                            out.push_str(&format!(
                                "# EXEMPLAR {series} trace_id={trace_id:016x} value={}\n",
                                fmt_value(sample)
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// Snapshots every child series directly from the atomic cells — the
    /// self-scraper's ingestion path, with no text-format round-trip.
    /// Families come out in name order, children in registration order.
    pub fn snapshot(&self) -> Vec<Sample> {
        let fams = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        for (name, family) in fams.iter() {
            let full = self.full_name(name);
            for child in &family.children {
                let value = match &child.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        counts: h.snapshot_counts(),
                        sum: h.sum(),
                        exemplar_trace: h.exemplar().map(|(_, trace_id)| trace_id),
                    },
                };
                out.push(Sample {
                    name: full.clone(),
                    labels: child.labels.clone(),
                    value,
                });
            }
        }
        out
    }

    fn full_name(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}_{name}", self.prefix)
        }
    }
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
    }
}

fn render_sample(out: &mut String, name: &str, labels: &str, value: f64) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {}\n", fmt_value(value)));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {}\n", fmt_value(value)));
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

fn join_labels(base: &str, extra: &str) -> String {
    if base.is_empty() {
        extra.to_string()
    } else {
        format!("{base},{extra}")
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*`
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(h: &str) -> String {
    h.replace('\\', "\\\\").replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() }
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges() {
        let reg = Registry::new("loki");
        let c = reg.counter("requests_total", "Requests served", &[("method", "GET")]);
        c.add(3);
        let g = reg.gauge("users", "Users with a ledger", &[]);
        g.set(7.0);
        let text = reg.render();
        assert!(text.contains("# HELP loki_requests_total Requests served"), "{text}");
        assert!(text.contains("# TYPE loki_requests_total counter"), "{text}");
        assert!(text.contains("loki_requests_total{method=\"GET\"} 3"), "{text}");
        assert!(text.contains("# TYPE loki_users gauge"), "{text}");
        assert!(text.contains("loki_users 7"), "{text}");
    }

    #[test]
    fn renders_histogram_with_cumulative_buckets() {
        let reg = Registry::new("t");
        let h = reg.histogram("lat_seconds", "Latency", &[0.1, 1.0], &[]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(2.0);
        let text = reg.render();
        assert!(text.contains("# TYPE t_lat_seconds histogram"), "{text}");
        assert!(text.contains("t_lat_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("t_lat_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("t_lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("t_lat_seconds_count 3"), "{text}");
        assert!(text.contains("t_lat_seconds_sum 2.55"), "{text}");
    }

    #[test]
    fn registration_is_idempotent_per_label_set() {
        let reg = Registry::new("x");
        let a = reg.counter("hits_total", "h", &[("k", "a")]);
        let again = reg.counter("hits_total", "h", &[("k", "a")]);
        let other = reg.counter("hits_total", "h", &[("k", "b")]);
        a.inc();
        again.inc();
        other.inc();
        assert_eq!(a.get(), 2, "same labels must share the underlying counter");
        assert_eq!(other.get(), 1);
        let text = reg.render();
        assert!(text.contains("x_hits_total{k=\"a\"} 2"), "{text}");
        assert!(text.contains("x_hits_total{k=\"b\"} 1"), "{text}");
    }

    #[test]
    fn gauges_render_infinity_as_prometheus_inf() {
        let reg = Registry::new("x");
        let g = reg.gauge("eps_max", "max epsilon", &[]);
        g.set(f64::INFINITY);
        assert!(reg.render().contains("x_eps_max +Inf"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new("x");
        let _ = reg.counter("c_total", "c", &[("path", "a\"b\\c\nd")]);
        let text = reg.render();
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_name_rejected() {
        let reg = Registry::new("x");
        let _ = reg.counter("bad name", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_clash_rejected() {
        let reg = Registry::new("x");
        let _ = reg.counter("thing", "h", &[]);
        let _ = reg.gauge("thing", "h", &[]);
    }

    #[test]
    fn histogram_exemplar_renders_as_comment() {
        let reg = Registry::new("t");
        let h = reg.histogram("lat_seconds", "Latency", &[0.1, 1.0], &[]);
        h.observe(0.05);
        assert!(
            !reg.render().contains("# EXEMPLAR"),
            "no exemplar line before any traced sample"
        );
        h.observe_with_exemplar(0.5, 0xab);
        let text = reg.render();
        assert!(
            text.contains("# EXEMPLAR t_lat_seconds trace_id=00000000000000ab value=0.5"),
            "{text}"
        );
        // Every non-comment line still parses as `series value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "{line}");
        }
    }

    #[test]
    fn snapshot_reads_every_child_without_rendering() {
        let reg = Registry::new("loki");
        reg.counter("req_total", "r", &[("m", "GET")]).add(5);
        reg.counter("req_total", "r", &[("m", "POST")]).add(2);
        reg.gauge("eps_p50", "e", &[]).set(0.75);
        let h = reg.histogram("lat_seconds", "l", &[0.1, 1.0], &[]);
        h.observe(0.05);
        h.observe_with_exemplar(0.5, 0xab);
        let samples = reg.snapshot();
        assert_eq!(
            samples
                .iter()
                .map(|s| (s.name.as_str(), s.labels.as_str()))
                .collect::<Vec<_>>(),
            vec![
                ("loki_eps_p50", ""),
                ("loki_lat_seconds", ""),
                ("loki_req_total", "m=\"GET\""),
                ("loki_req_total", "m=\"POST\""),
            ]
        );
        assert_eq!(samples[0].value, SampleValue::Gauge(0.75));
        assert_eq!(
            samples[1].value,
            SampleValue::Histogram {
                bounds: vec![0.1, 1.0],
                counts: vec![1, 1, 0],
                sum: 0.55,
                exemplar_trace: Some(0xab),
            }
        );
        assert_eq!(samples[2].value, SampleValue::Counter(5));
        assert_eq!(samples[3].value, SampleValue::Counter(2));
    }

    #[test]
    fn exposition_is_parseable() {
        // A minimal syntactic check over every rendered line: comments or
        // `name{labels} value`.
        let reg = Registry::new("loki");
        reg.counter("a_total", "a", &[("m", "GET")]).inc();
        reg.gauge("b", "b", &[]).set(1.5);
        reg.histogram("c_seconds", "c", &[0.1], &[]).observe(0.05);
        for line in reg.render().lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "{line}");
            let name = series.split('{').next().expect("name");
            assert!(valid_metric_name(name), "{line}");
        }
    }
}
