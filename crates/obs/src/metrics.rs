//! The three instruments: counter, gauge, fixed-bucket histogram.
//!
//! All state is relaxed atomics. Metrics tolerate (indeed, expect)
//! slightly stale cross-thread reads; what they must never do is contend
//! or allocate on the recording path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default latency bucket upper bounds, in seconds.
///
/// Spans sub-microsecond lock holds through multi-second stalls; the
/// serving crates share one bound set so exposition stays comparable
/// across families.
pub const LATENCY_BUCKETS: &[f64] = &[
    1e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of non-negative samples (typically seconds).
///
/// Bucket upper bounds are set at construction; recording finds the
/// bucket by binary search and does two atomic adds. Quantiles
/// ([`Histogram::quantile`]) are estimated by linear interpolation inside
/// the covering bucket, exactly as `histogram_quantile` would from the
/// rendered exposition.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper bounds; the implicit final bucket is `+Inf`.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts, `bounds.len() + 1` long.
    buckets: Vec<AtomicU64>,
    /// Sum of all samples, in nanosecond-scale fixed point (1e-9 units),
    /// so concurrent adds stay a single integer `fetch_add`.
    sum_nanos: AtomicU64,
    /// Most recent exemplar sample, as `f64` bits (valid only while
    /// `exemplar_trace` is non-zero).
    exemplar_bits: AtomicU64,
    /// Trace id of the exemplar sample; 0 means "no exemplar yet".
    exemplar_trace: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given ascending, finite bounds.
    ///
    /// # Panics
    /// Panics when `bounds` is empty, unsorted, or non-finite —
    /// registration-time programmer errors.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.iter().all(|b| b.is_finite() && *b > 0.0),
            "histogram bounds must be finite and positive"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            exemplar_bits: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }

    /// Records one sample (in the bounds' unit, conventionally seconds).
    /// Negative or NaN samples are clamped to zero.
    pub fn observe(&self, sample: f64) {
        let v = if sample.is_finite() && sample > 0.0 { sample } else { 0.0 };
        let idx = self.bounds.partition_point(|b| *b < v);
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_nanos.fetch_add((v * 1e9) as u64, Ordering::Relaxed);
    }

    /// Records a duration as seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Records a sample and, when `trace_id` is non-zero, remembers it
    /// as the histogram's exemplar — the trace that last exercised this
    /// family, joinable via `GET /v1/traces/{id}`. Two extra relaxed
    /// stores; still lock- and allocation-free.
    pub fn observe_with_exemplar(&self, sample: f64, trace_id: u64) {
        self.observe(sample);
        if trace_id != 0 {
            self.exemplar_bits.store(sample.to_bits(), Ordering::Relaxed);
            self.exemplar_trace.store(trace_id, Ordering::Relaxed);
        }
    }

    /// The most recent exemplar as `(sample, trace_id)`, if any sample
    /// carried one.
    pub fn exemplar(&self) -> Option<(f64, u64)> {
        let trace_id = self.exemplar_trace.load(Ordering::Relaxed);
        if trace_id == 0 {
            return None;
        }
        Some((f64::from_bits(self.exemplar_bits.load(Ordering::Relaxed)), trace_id))
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples, in the bounds' unit.
    pub fn sum(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Estimated `q`-quantile by in-bucket linear interpolation.
    ///
    /// Edge semantics, pinned by tests:
    /// * empty histogram → `0.0` for every `q`;
    /// * `q` outside `0.0..=1.0` (or NaN) clamps into the range (NaN
    ///   behaves as `0.0`);
    /// * `q == 0.0` → the lower edge of the first non-empty bucket;
    /// * `q == 1.0` → the upper bound of the last non-empty bucket;
    /// * samples in the overflow bucket clamp to the top bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        if q == 0.0 {
            // The minimum observable estimate: the lower edge of the
            // first bucket holding a sample (interpolating here would
            // claim a value above samples we actually saw).
            let first = counts.iter().position(|c| *c > 0).unwrap_or(0);
            return if first == 0 {
                0.0
            } else {
                self.bounds.get(first - 1).copied().unwrap_or(0.0)
            };
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let top = self.bounds.last().copied().unwrap_or(0.0);
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum = cum.saturating_add(*c);
            if cum < rank {
                continue;
            }
            let Some(upper) = self.bounds.get(i).copied() else {
                return top; // overflow bucket
            };
            let lower = if i == 0 {
                0.0
            } else {
                self.bounds.get(i - 1).copied().unwrap_or(0.0)
            };
            let below = cum - c;
            let frac = if *c == 0 { 1.0 } else { (rank - below) as f64 / *c as f64 };
            return lower + (upper - lower) * frac;
        }
        top
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Raw (non-cumulative) per-bucket counts in bound order, plus the
    /// overflow bucket last — `bounds().len() + 1` entries.
    ///
    /// This is the tsdb ingestion accessor: exposition renders cumulative
    /// counts, but history needs per-bucket values it can difference
    /// tick-over-tick without re-parsing exposition text.
    pub fn snapshot_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Cumulative bucket counts in exposition order (one per bound, plus
    /// the `+Inf` total), used by the registry's renderer.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .map(|b| {
                cum = cum.saturating_add(b.load(Ordering::Relaxed));
                cum
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(f64::INFINITY);
        assert!(g.get().is_infinite());
    }

    #[test]
    fn histogram_buckets_samples() {
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        h.observe(0.0005); // bucket 0
        h.observe(0.001); // le is inclusive: bucket 0
        h.observe(0.05); // bucket 2
        h.observe(5.0); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.cumulative_buckets(), vec![2, 2, 3, 4]);
        assert!((h.sum() - 5.0515).abs() < 1e-6);
    }

    #[test]
    fn quantiles_interpolate() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..50 {
            h.observe(3.0);
        }
        // p50 falls at the top of the first bucket; p99 inside (2, 4].
        let p50 = h.quantile(0.50);
        assert!((0.9..=1.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((2.0..=4.0).contains(&p99), "p99 = {p99}");
        // Everything clamps to the top bound for overflow-heavy data.
        let big = Histogram::new(&[1.0]);
        big.observe(100.0);
        assert_eq!(big.quantile(0.99), 1.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(LATENCY_BUCKETS);
        assert_eq!(h.quantile(0.95), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn empty_histogram_extreme_quantiles_are_zero_and_finite() {
        // The full edge matrix on a zero-count histogram: nothing here
        // may be NaN or non-zero, whatever q is.
        let h = Histogram::new(&[1.0, 2.0]);
        for q in [0.0, 0.5, 1.0, -3.0, 7.0, f64::NAN, f64::INFINITY] {
            let v = h.quantile(q);
            assert_eq!(v, 0.0, "empty histogram, q={q}: got {v}");
        }
    }

    #[test]
    fn quantile_zero_is_the_floor_of_the_first_occupied_bucket() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..10 {
            h.observe(3.0); // bucket (2, 4]
        }
        assert_eq!(h.quantile(0.0), 2.0, "q=0 reports the bucket's lower edge");
        // With samples in the first bucket the floor is 0.0.
        let h2 = Histogram::new(&[1.0]);
        h2.observe(0.5);
        assert_eq!(h2.quantile(0.0), 0.0);
    }

    #[test]
    fn quantile_one_is_the_ceiling_of_the_last_occupied_bucket() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5);
        h.observe(1.5);
        assert_eq!(h.quantile(1.0), 2.0, "q=1 reports the top occupied bound");
        // Overflow samples clamp to the top configured bound.
        h.observe(100.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn out_of_range_and_nan_q_clamp() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.5);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0), "NaN q behaves as 0");
        assert!(h.quantile(f64::NAN).is_finite());
    }

    #[test]
    fn snapshot_counts_pin_bucket_boundaries() {
        // One sample per edge case: below the first bound, exactly on a
        // bound (le-inclusive), between bounds, and past the last bound.
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        h.observe(0.0005); // < first bound        → bucket 0
        h.observe(0.001); // == first bound (le)   → bucket 0
        h.observe(0.0011); // just past it         → bucket 1
        h.observe(0.1); // == last bound (le)      → bucket 2
        h.observe(0.2); // past every bound        → overflow
        assert_eq!(h.snapshot_counts(), vec![2, 1, 1, 1]);
        // Consistency with the cumulative renderer view.
        assert_eq!(h.cumulative_buckets(), vec![2, 3, 4, 5]);
        assert_eq!(h.snapshot_counts().len(), h.bounds().len() + 1);
        assert_eq!(h.snapshot_counts().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn exemplar_tracks_the_last_traced_sample() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.exemplar(), None);
        h.observe(0.5); // untraced: no exemplar
        assert_eq!(h.exemplar(), None);
        h.observe_with_exemplar(0.25, 0xdead_beef);
        assert_eq!(h.exemplar(), Some((0.25, 0xdead_beef)));
        h.observe_with_exemplar(0.75, 0); // trace id 0 = untraced
        assert_eq!(h.exemplar(), Some((0.25, 0xdead_beef)), "untraced keeps the old exemplar");
        h.observe_with_exemplar(0.75, 7);
        assert_eq!(h.exemplar(), Some((0.75, 7)));
        assert_eq!(h.count(), 4, "exemplar samples still count");
    }

    #[test]
    fn negative_and_nan_samples_clamp_to_zero() {
        let h = Histogram::new(&[1.0]);
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn duration_observation() {
        let h = Histogram::new(LATENCY_BUCKETS);
        h.observe_duration(Duration::from_micros(120));
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 120e-6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new(&[0.5]));
        let c = std::sync::Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.observe(0.1);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        assert_eq!(h.count(), 8000);
        assert_eq!(c.get(), 8000);
    }
}
