//! Append-only ε-audit event stream.
//!
//! The accountant is the paper's §3.1 mechanism — per-response privacy
//! loss "tracked and balanced across the user base" — but until now its
//! decisions were only visible as aggregate counters. This module gives
//! operators a causally-ordered record of every budget decision: a
//! charge was *attempted*, it was *charged*, or it was *rejected at the
//! cap*, each with the privacy level, the ε of the release set, and the
//! running total afterwards.
//!
//! **Privacy discipline:** events are keyed by an opaque, server-local
//! `subject_index` (assigned in insertion order by the caller), never by
//! a raw identifier. This module has no field that could carry one — the
//! `loki-lint` sensitive-egress rule additionally forbids identifier
//! names like `user`/`worker` here. Events also carry the trace id of
//! the request that caused them, so an audit line joins directly to its
//! span tree.

use crate::access::now_ms;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What the accountant did with a budget charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOutcome {
    /// A charge was attempted (emitted before the budget check).
    Attempted,
    /// The charge was applied and the ledger advanced.
    Charged,
    /// The charge was refused because it would cross the ε cap.
    RejectedAtCap,
}

impl AuditOutcome {
    /// Stable wire name for the outcome.
    pub fn as_str(&self) -> &'static str {
        match self {
            AuditOutcome::Attempted => "attempted",
            AuditOutcome::Charged => "charged",
            AuditOutcome::RejectedAtCap => "rejected-at-cap",
        }
    }
}

/// One audit event. All fields are numeric or `'static` by construction
/// — there is nowhere to put a raw user id.
#[derive(Debug, Clone)]
pub struct AuditEvent {
    /// Monotonic sequence number (gap-free within the process).
    pub seq: u64,
    /// Wall-clock milliseconds since the UNIX epoch.
    pub timestamp_ms: u64,
    /// Opaque per-process index standing in for the subject; assignment
    /// order is the caller's business, reversal is impossible from here.
    pub subject_index: u64,
    /// What the accountant did.
    pub outcome: AuditOutcome,
    /// Privacy level of the submission ("low"/"medium"/"high").
    pub level: &'static str,
    /// ε of the release set being charged.
    pub epsilon: f64,
    /// Running ε total for the subject after this event (may be
    /// infinite for unbounded mechanisms).
    pub running_epsilon: f64,
    /// Trace id of the request that caused the event, if traced.
    pub trace_id: Option<u64>,
}

/// Bounded, append-only ring of [`AuditEvent`]s.
///
/// Same shape as the access log: a mutex-guarded ring that evicts the
/// oldest entry at capacity, plus an atomic sequence so consumers can
/// detect eviction gaps (`tail`'s first seq > last seen + 1).
#[derive(Debug)]
pub struct AuditLog {
    capacity: usize,
    seq: AtomicU64,
    entries: Mutex<VecDeque<AuditEvent>>,
}

impl Default for AuditLog {
    fn default() -> AuditLog {
        AuditLog::with_capacity(1024)
    }
}

impl AuditLog {
    /// A log holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> AuditLog {
        let capacity = capacity.max(1);
        AuditLog {
            capacity,
            seq: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Appends an event, assigning its sequence number and timestamp.
    /// Returns the assigned sequence number.
    pub fn push(
        &self,
        subject_index: u64,
        outcome: AuditOutcome,
        level: &'static str,
        epsilon: f64,
        running_epsilon: f64,
        trace_id: Option<u64>,
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = AuditEvent {
            seq,
            timestamp_ms: now_ms(),
            subject_index,
            outcome,
            level,
            epsilon,
            running_epsilon,
            trace_id,
        };
        let mut entries = self.entries.lock().expect("audit log lock");
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(event);
        seq
    }

    /// Events appended so far (including evicted ones).
    pub fn total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("audit log lock").len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<AuditEvent> {
        let entries = self.entries.lock().expect("audit log lock");
        let skip = entries.len().saturating_sub(n);
        entries.iter().skip(skip).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_have_stable_wire_names() {
        assert_eq!(AuditOutcome::Attempted.as_str(), "attempted");
        assert_eq!(AuditOutcome::Charged.as_str(), "charged");
        assert_eq!(AuditOutcome::RejectedAtCap.as_str(), "rejected-at-cap");
    }

    #[test]
    fn events_sequence_gap_free_and_carry_fields() {
        let log = AuditLog::with_capacity(8);
        let s0 = log.push(0, AuditOutcome::Attempted, "medium", 2.2, 0.0, Some(9));
        let s1 = log.push(0, AuditOutcome::Charged, "medium", 2.2, 2.2, Some(9));
        assert_eq!((s0, s1), (0, 1));
        let tail = log.tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 0);
        assert_eq!(tail[0].outcome, AuditOutcome::Attempted);
        assert_eq!(tail[1].outcome, AuditOutcome::Charged);
        assert_eq!(tail[1].running_epsilon, 2.2);
        assert_eq!(tail[1].trace_id, Some(9));
        assert!(tail[1].timestamp_ms >= tail[0].timestamp_ms);
    }

    #[test]
    fn ring_is_bounded_and_eviction_is_detectable() {
        let log = AuditLog::with_capacity(4);
        for i in 0..100 {
            log.push(i, AuditOutcome::Charged, "low", 0.5, 0.5, None);
        }
        assert_eq!(log.len(), 4, "ring never grows past capacity");
        assert_eq!(log.total(), 100);
        let tail = log.tail(4);
        assert_eq!(tail[0].seq, 96, "sequence exposes the eviction gap");
        assert_eq!(tail[3].seq, 99);
    }

    #[test]
    fn infinite_running_total_is_representable() {
        let log = AuditLog::default();
        log.push(1, AuditOutcome::Charged, "low", f64::INFINITY, f64::INFINITY, None);
        assert!(log.tail(1)[0].running_epsilon.is_infinite());
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let log = std::sync::Arc::new(AuditLog::with_capacity(16));
        let mut handles = Vec::new();
        for t in 0..4 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    log.push(t * 500 + i, AuditOutcome::Attempted, "high", 1.0, 1.0, None);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 16);
        assert_eq!(log.total(), 2000);
    }

    #[test]
    fn concurrent_wraparound_keeps_entries_untorn_and_ids_monotonic() {
        // 8 writers × 400 events through a 16-slot ring: each event's
        // fields are all derived from (thread, iteration), so any torn
        // entry — fields from two different pushes — is detectable.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 400;
        let log = std::sync::Arc::new(AuditLog::with_capacity(16));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let subject = t * PER_THREAD + i;
                        log.push(
                            subject,
                            AuditOutcome::Charged,
                            "medium",
                            subject as f64 * 0.25,
                            subject as f64 * 0.5,
                            Some(subject + 1),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(log.total(), THREADS * PER_THREAD);
        assert_eq!(log.len(), 16, "memory stays bounded under wraparound");
        let tail = log.tail(64);
        assert_eq!(tail.len(), 16);
        for pair in tail.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "sequence numbers stay monotonic");
        }
        assert_eq!(
            tail.last().map(|e| e.seq),
            Some(THREADS * PER_THREAD - 1),
            "the final push is retained"
        );
        for event in &tail {
            let subject = event.subject_index;
            assert_eq!(event.epsilon, subject as f64 * 0.25, "torn entry: {event:?}");
            assert_eq!(event.running_epsilon, subject as f64 * 0.5, "torn entry: {event:?}");
            assert_eq!(event.trace_id, Some(subject + 1), "torn entry: {event:?}");
        }
    }
}
