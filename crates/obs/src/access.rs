//! Structured access log: a bounded ring of per-request records.
//!
//! The numeric instruments answer "how fast, how often"; the access log
//! answers "what just happened" — the last N requests with their timing
//! split, rendered as stable `key=value` lines a human (or `grep`) can
//! consume. The ring is bounded so a scrape-happy client cannot grow
//! server memory.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// One served request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// Wall-clock milliseconds since the Unix epoch.
    pub timestamp_ms: u64,
    /// Request method token (`GET`, `POST`, …).
    pub method: String,
    /// Request path. Callers must pass route-shaped paths only; never
    /// append query strings or user-supplied identifiers beyond what the
    /// route itself exposes.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Microseconds spent parsing the request off the socket.
    pub parse_micros: u64,
    /// Microseconds spent in routing + handler.
    pub dispatch_micros: u64,
    /// Whether the connection had already served an earlier request
    /// (keep-alive reuse).
    pub reused: bool,
}

impl AccessRecord {
    /// The record as one structured log line.
    pub fn line(&self) -> String {
        format!(
            "ts_ms={} method={} path={} status={} parse_us={} dispatch_us={} reused={}",
            self.timestamp_ms,
            self.method,
            self.path,
            self.status,
            self.parse_micros,
            self.dispatch_micros,
            self.reused
        )
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub(crate) fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A fixed-capacity ring buffer of [`AccessRecord`]s.
#[derive(Debug)]
pub struct AccessLog {
    capacity: usize,
    entries: Mutex<VecDeque<AccessRecord>>,
}

impl AccessLog {
    /// Creates a log keeping the most recent `capacity` records
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> AccessLog {
        let capacity = capacity.max(1);
        AccessLog {
            capacity,
            entries: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, record: AccessRecord) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(record);
    }

    /// Convenience: records a request with the current wall clock.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        method: &str,
        path: &str,
        status: u16,
        parse_micros: u64,
        dispatch_micros: u64,
        reused: bool,
    ) {
        self.push(AccessRecord {
            timestamp_ms: now_ms(),
            method: method.to_string(),
            path: path.to_string(),
            status,
            parse_micros,
            dispatch_micros,
            reused,
        });
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<AccessRecord> {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.iter().rev().take(n).rev().cloned().collect()
    }

    /// The most recent `n` records as newline-joined structured lines.
    pub fn render_tail(&self, n: usize) -> String {
        self.tail(n)
            .iter()
            .map(AccessRecord::line)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, status: u16) -> AccessRecord {
        AccessRecord {
            timestamp_ms: 1000,
            method: "GET".into(),
            path: path.into(),
            status,
            parse_micros: 12,
            dispatch_micros: 345,
            reused: false,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = AccessLog::with_capacity(3);
        for i in 0..5 {
            log.push(rec(&format!("/r{i}"), 200));
        }
        assert_eq!(log.len(), 3);
        let tail = log.tail(10);
        let paths: Vec<&str> = tail.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["/r2", "/r3", "/r4"]);
    }

    #[test]
    fn line_format_is_stable() {
        let line = rec("/v1/surveys", 200).line();
        assert_eq!(
            line,
            "ts_ms=1000 method=GET path=/v1/surveys status=200 parse_us=12 dispatch_us=345 reused=false"
        );
    }

    #[test]
    fn tail_orders_oldest_first() {
        let log = AccessLog::with_capacity(10);
        log.push(rec("/a", 200));
        log.push(rec("/b", 404));
        let rendered = log.render_tail(2);
        let first = rendered.lines().next().expect("two lines");
        assert!(first.contains("path=/a"), "{rendered}");
        assert!(rendered.lines().nth(1).expect("two lines").contains("status=404"));
    }

    #[test]
    fn record_stamps_wall_clock() {
        let log = AccessLog::with_capacity(2);
        log.record("POST", "/v1/surveys/:id/responses", 201, 5, 50, true);
        let tail = log.tail(1);
        assert_eq!(tail.len(), 1);
        assert!(tail[0].timestamp_ms > 0);
        assert!(tail[0].reused);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let log = AccessLog::with_capacity(0);
        log.push(rec("/a", 200));
        log.push(rec("/b", 200));
        assert_eq!(log.len(), 1);
    }
}
