//! Counting global allocator: allocation telemetry for the serving
//! process.
//!
//! [`CountingAlloc`] wraps [`System`] and bumps relaxed atomics on every
//! allocation, reallocation and free — totals for the
//! `loki_alloc_{allocs,bytes,frees}_total` metric families, plus
//! per-phase attribution via the profiler's thread-local phase tag
//! ([`crate::prof::current_phase_id`]): while a thread is inside
//! `phase!("store.apply")`, its allocations land in that phase's row.
//!
//! Installed with one line in the server binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: loki_obs::CountingAlloc = loki_obs::CountingAlloc::new();
//! ```
//!
//! Counting can be toggled at runtime ([`CountingAlloc::set_enabled`])
//! because `#[global_allocator]` is a per-binary compile-time choice:
//! the PROF-1 overhead bench compares enabled vs. disabled in one
//! process. Disabled still pays one relaxed load per call — that is the
//! floor the bench measures against.
//!
//! ## Why this module carries `unsafe`
//!
//! `GlobalAlloc` is an unsafe trait — there is no safe way to *be* an
//! allocator. Every unsafe block here forwards verbatim to [`System`]
//! with the caller's own layout contract; the counting layer itself is
//! entirely safe code over atomics and a const-initialized thread-local
//! (guaranteed not to allocate on first access, so reading the phase
//! tag mid-allocation cannot recurse). The crate stays
//! `#![deny(unsafe_code)]`; only this module opts out, mirroring
//! `loki-net`'s epoll FFI shim.

use crate::prof::MAX_PHASES;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

#[allow(clippy::declare_interior_mutable_const)] // const template for array init
const ZERO: AtomicU64 = AtomicU64::new(0);
static PHASE_ALLOCS: [AtomicU64; MAX_PHASES] = [ZERO; MAX_PHASES];
static PHASE_BYTES: [AtomicU64; MAX_PHASES] = [ZERO; MAX_PHASES];

/// Allocation totals for one profiler phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseAlloc {
    /// Interned phase name (`&'static` by the profiler's contract).
    pub phase: &'static str,
    /// Allocations attributed to the phase.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

/// A `#[global_allocator]`-installable wrapper over [`System`] that
/// counts allocations, bytes and frees, attributing them to the current
/// profiler phase. Zero-sized; all state is in process-wide atomics so
/// the statics are readable whether or not the wrapper is installed.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for the `static` the attribute requires.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }

    /// Turns counting on or off process-wide (the allocator itself
    /// always forwards; only the bookkeeping is gated).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether counting is currently on.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Total allocations counted (includes growth reallocations).
    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Total frees counted (includes shrink/moved reallocations).
    pub fn frees() -> u64 {
        FREES.load(Ordering::Relaxed)
    }

    /// Total bytes requested across counted allocations.
    pub fn bytes() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }

    /// Per-phase allocation totals, skipping phases with no activity.
    /// Allocates (it is a scrape/render path, not a hot path).
    pub fn phase_totals() -> Vec<PhaseAlloc> {
        (0..MAX_PHASES)
            .filter_map(|id| {
                let allocs = PHASE_ALLOCS[id].load(Ordering::Relaxed);
                let bytes = PHASE_BYTES[id].load(Ordering::Relaxed);
                (allocs > 0).then(|| PhaseAlloc {
                    phase: crate::prof::phase_name(id as u16),
                    allocs,
                    bytes,
                })
            })
            .collect()
    }
}

/// Records one successful allocation of `size` bytes against the
/// calling thread's current phase. Safe code: atomics plus a
/// const-initialized TLS read.
fn count_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let phase = crate::prof::current_phase_id() as usize;
    if let (Some(a), Some(b)) = (PHASE_ALLOCS.get(phase), PHASE_BYTES.get(phase)) {
        a.fetch_add(1, Ordering::Relaxed);
        b.fetch_add(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: every method forwards the caller's exact arguments to the
// System allocator, which defines the allocation contract; the counting
// layer never touches the returned memory or the layout.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same layout contract as our caller's.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            count_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same layout contract as our caller's.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            count_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a prior alloc through us, which
        // forwarded to System.
        unsafe { System.dealloc(ptr, layout) };
        if ENABLED.load(Ordering::Relaxed) {
            FREES.fetch_add(1, Ordering::Relaxed);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarding the caller's realloc contract unchanged.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            // A realloc is one free + one alloc for the counters; only
            // net growth counts as new bytes so byte totals track what
            // was actually requested, not copies.
            FREES.fetch_add(1, Ordering::Relaxed);
            count_alloc(new_size.saturating_sub(layout.size()));
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global; assert on deltas, not totals.
    // These tests exercise the bookkeeping directly — the allocator is
    // only *installed* in binaries that opt in via #[global_allocator].

    #[test]
    fn counting_helpers_attribute_to_the_current_phase() {
        let id = crate::prof::intern("test.alloc_phase");
        crate::prof::set_phase(id);
        let before = CountingAlloc::phase_totals()
            .iter()
            .find(|p| p.phase == "test.alloc_phase")
            .map(|p| (p.allocs, p.bytes))
            .unwrap_or((0, 0));
        count_alloc(128);
        count_alloc(64);
        let after = CountingAlloc::phase_totals()
            .iter()
            .find(|p| p.phase == "test.alloc_phase")
            .map(|p| (p.allocs, p.bytes))
            .expect("phase row exists after activity");
        assert_eq!(after.0 - before.0, 2);
        assert_eq!(after.1 - before.1, 192);
        crate::prof::set_phase(0);
    }

    #[test]
    fn totals_grow_and_toggle_reads_back() {
        let before = CountingAlloc::allocs();
        count_alloc(1);
        assert!(CountingAlloc::allocs() > before);
        assert!(CountingAlloc::bytes() > 0);
        CountingAlloc::set_enabled(false);
        assert!(!CountingAlloc::enabled());
        CountingAlloc::set_enabled(true);
        assert!(CountingAlloc::enabled());
    }

    #[test]
    fn global_alloc_roundtrip_counts_when_installed_or_not() {
        // Drive the GlobalAlloc impl directly (not installed in the test
        // binary): a full alloc/realloc/dealloc cycle must count one
        // alloc + realloc-free + final free and never lose the pointer.
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).expect("valid layout");
        let allocs0 = CountingAlloc::allocs();
        let frees0 = CountingAlloc::frees();
        // SAFETY: classic paired alloc/realloc/dealloc with consistent
        // layouts, writes stay in bounds.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            p.write(42);
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            assert_eq!(p2.read(), 42);
            let grown = Layout::from_size_align(128, 8).expect("valid layout");
            a.dealloc(p2, grown);
        }
        assert!(CountingAlloc::allocs() >= allocs0 + 2, "alloc + realloc counted");
        assert!(CountingAlloc::frees() >= frees0 + 2, "realloc + dealloc counted");
    }
}
