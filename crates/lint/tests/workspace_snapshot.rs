//! Snapshot test: the live workspace vs. the committed baseline.
//!
//! Runs the full rule set over the real repository (the same scan
//! `cargo run -p loki-lint` performs) and requires the result to match
//! `loki-lint.baseline` *exactly*:
//!
//! * no **new** findings — a change that introduces a violation fails
//!   `cargo test` as well as the CI lint gate;
//! * no **stale** entries — fixing a grandfathered violation must also
//!   remove its baseline line, so the baseline only ever shrinks for real.

use loki_lint::analyze_workspace;
use loki_lint::baseline::Baseline;
use loki_lint::config::Config;
use std::fs;
use std::path::PathBuf;

/// Workspace root: two levels up from the lint crate.
fn workspace_root() -> PathBuf {
    let manifest = match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("crates/lint"),
    };
    manifest
        .canonicalize()
        .unwrap_or(manifest)
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_matches_committed_baseline() {
    let root = workspace_root();
    let cfg_text = fs::read_to_string(root.join("loki-lint.toml"))
        .expect("loki-lint.toml is committed at the workspace root");
    let cfg = Config::from_toml(&cfg_text).expect("committed config parses");
    let baseline_text = fs::read_to_string(root.join("loki-lint.baseline"))
        .expect("loki-lint.baseline is committed at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("committed baseline parses");

    let findings = analyze_workspace(&root, &cfg).expect("workspace scan succeeds");
    let diff = baseline.diff(&findings);

    assert!(
        diff.new.is_empty(),
        "new lint violations not in the baseline — fix them or (for \
         deliberate grandfathering) run `cargo run -p loki-lint -- \
         --write-baseline`:\n{}",
        diff.new
            .iter()
            .map(|d| d.render_human())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries (violations no longer present) — run \
         `cargo run -p loki-lint -- --write-baseline` to drop them:\n{:#?}",
        diff.stale
    );
}

#[test]
fn committed_config_pins_rule_scopes() {
    // The fixtures run against the rules' built-in defaults; this pins the
    // committed config to the same scopes so the two cannot silently
    // diverge (a config edit must consciously update this test).
    let root = workspace_root();
    let cfg_text = fs::read_to_string(root.join("loki-lint.toml"))
        .expect("loki-lint.toml is committed at the workspace root");
    let cfg = Config::from_toml(&cfg_text).expect("committed config parses");

    let scope = |rule: &str, key: &str| cfg.list(rule, key, &["<missing>"]);
    assert_eq!(
        scope("sensitive-egress", "forbidden_crates"),
        ["loki-net", "loki-server", "loki-obs"]
    );
    assert_eq!(
        scope("sensitive-egress", "allowed_derive_crates"),
        ["loki-survey", "loki-platform", "loki-client"]
    );
    assert!(
        scope("sensitive-egress", "sensitive_types")
            .iter()
            .any(|t| t == "WorkerId"),
        "the stable worker identity must stay in the sensitive set"
    );
    assert_eq!(
        scope("sensitive-egress", "taint_sinks"),
        loki_lint::rules::sensitive_egress::DEFAULT_TAINT_SINKS,
        "committed taint sinks must match the compiled defaults the fixtures use"
    );
    assert_eq!(scope("unseeded-rng", "crates"), ["loki-dp"]);
    assert_eq!(scope("panic-path", "crates"), ["loki-net", "loki-server"]);
    assert_eq!(scope("float-eq-budget", "crates"), ["loki-dp"]);
    assert_eq!(
        scope("unchecked-budget-arith", "files"),
        ["crates/core/src/ledger.rs", "crates/dp/src/accountant.rs"]
    );

    // Concurrency family: the declared lock order adjudicates every pair
    // the store's acquired-while-held graph can produce, and must match
    // both the compiled defaults and the doc comment on `AppState` in
    // crates/server/src/store.rs.
    assert_eq!(scope("lock-order", "crates"), ["loki-server", "loki-net"]);
    assert_eq!(
        scope("lock-order", "order"),
        loki_lint::rules::lock_order::DEFAULT_ORDER,
        "committed lock order must match the compiled defaults the fixtures use"
    );
    assert_eq!(scope("guard-across-blocking", "crates"), ["loki-server"]);
    assert_eq!(
        scope("guard-across-blocking", "blocking"),
        loki_lint::rules::guard_blocking::DEFAULT_BLOCKING,
        "committed blocking set must match the compiled defaults the fixtures use"
    );
    assert_eq!(scope("double-lock", "crates"), ["loki-server", "loki-net"]);
}
