//! Fixture-driven tests for the lint rules.
//!
//! Each file in `tests/fixtures/` is a small Rust source with a header
//! declaring the crate/path identity the linter should assume:
//!
//! ```text
//! //@crate: loki-server
//! //@path: crates/server/src/api_fixture.rs
//! ```
//!
//! and `//~ rule-id [rule-id…]` markers on every line expected to produce
//! diagnostics (one id per expected diagnostic; repeat the id for multiple
//! findings on one line). The harness runs the default rule set over each
//! fixture and requires the findings to match the markers *exactly* —
//! missing findings and unexpected findings both fail.

use loki_lint::analyze_source;
use loki_lint::config::Config;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

/// The crate source dir: under cargo, `$CARGO_MANIFEST_DIR`; under a bare
/// `rustc --test` build, fall back to the workspace-relative path.
fn manifest_dir() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("crates/lint"),
    }
}

struct Fixture {
    name: String,
    crate_name: String,
    rel_path: String,
    src: String,
    /// line -> expected rule ids (multiset, sorted).
    expected: BTreeMap<u32, Vec<String>>,
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = manifest_dir().join("tests/fixtures");
    let mut fixtures = Vec::new();
    let entries = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        fixtures.push(parse_fixture(&name, &src));
    }
    assert!(!fixtures.is_empty(), "no fixtures found in {}", dir.display());
    fixtures.sort_by(|a, b| a.name.cmp(&b.name));
    fixtures
}

fn parse_fixture(name: &str, src: &str) -> Fixture {
    let mut crate_name = None;
    let mut rel_path = None;
    let mut expected: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        if let Some(v) = line.trim().strip_prefix("//@crate:") {
            crate_name = Some(v.trim().to_string());
        }
        if let Some(v) = line.trim().strip_prefix("//@path:") {
            rel_path = Some(v.trim().to_string());
        }
        if let Some((_, marker)) = line.split_once("//~") {
            let ids: Vec<String> =
                marker.split_whitespace().map(str::to_string).collect();
            assert!(!ids.is_empty(), "{name}:{lineno}: empty //~ marker");
            expected.entry(lineno).or_default().extend(ids);
        }
    }
    for ids in expected.values_mut() {
        ids.sort();
    }
    Fixture {
        name: name.to_string(),
        crate_name: crate_name
            .unwrap_or_else(|| panic!("{name}: missing //@crate: header")),
        rel_path: rel_path.unwrap_or_else(|| panic!("{name}: missing //@path: header")),
        src: src.to_string(),
        expected,
    }
}

/// Fixtures run against the built-in defaults, which the committed
/// `loki-lint.toml` mirrors — so they stay hermetic under config edits.
fn default_config() -> Config {
    Config::from_toml("").expect("empty config parses")
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let cfg = default_config();
    for fx in load_fixtures() {
        let diags = analyze_source(&fx.rel_path, &fx.crate_name, &fx.src, &cfg);
        let mut actual: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for d in &diags {
            actual.entry(d.line).or_default().push(d.rule.to_string());
        }
        for ids in actual.values_mut() {
            ids.sort();
        }
        assert_eq!(
            actual, fx.expected,
            "{}: diagnostics diverge from //~ markers\nactual diagnostics: {:#?}",
            fx.name, diags
        );
    }
}

#[test]
fn fixtures_cover_every_rule() {
    let covered: Vec<String> = load_fixtures()
        .into_iter()
        .flat_map(|f| f.expected.into_values().flatten())
        .collect();
    let ids: Vec<&'static str> = loki_lint::rules::registry()
        .iter()
        .map(|r| r.id())
        .chain(loki_lint::rules::workspace_registry().iter().map(|r| r.id()))
        .collect();
    for id in ids {
        assert!(
            covered.iter().any(|c| c == id),
            "rule `{id}` has no positive fixture coverage"
        );
    }
}

#[test]
fn clean_fixture_exists() {
    let fixtures = load_fixtures();
    assert!(
        fixtures.iter().any(|f| f.expected.is_empty()),
        "need at least one all-clean fixture as a false-positive canary"
    );
}

// ---------------------------------------------------------------------------
// Binary acceptance: deliberately adding a sensitive type to a loki-server
// public API must make `loki-lint --deny-new` exit non-zero.
// ---------------------------------------------------------------------------

/// The built binary: provided by cargo for integration tests; a bare-rustc
/// run can supply `LOKI_LINT_BIN` instead.
fn lint_binary() -> Option<PathBuf> {
    match option_env!("CARGO_BIN_EXE_loki-lint") {
        Some(p) => Some(PathBuf::from(p)),
        None => std::env::var_os("LOKI_LINT_BIN").map(PathBuf::from),
    }
}

#[test]
fn deny_new_fails_on_sensitive_type_in_server_api() {
    let Some(bin) = lint_binary() else {
        eprintln!("skipping: loki-lint binary not available outside cargo");
        return;
    };
    let root = std::env::temp_dir().join(format!("loki-lint-egress-{}", std::process::id()));
    let server_src = root.join("crates/server/src");
    fs::create_dir_all(&server_src).expect("create temp workspace");
    fs::write(
        root.join("crates/server/Cargo.toml"),
        "[package]\nname = \"loki-server\"\n",
    )
    .expect("write manifest");
    fs::write(
        server_src.join("lib.rs"),
        "pub fn export_profiles() -> Vec<(WorkerId, WorkerProfile)> {\n    Vec::new()\n}\n",
    )
    .expect("write leaking source");

    let out = std::process::Command::new(&bin)
        .args(["--root"])
        .arg(&root)
        .args(["--deny-new", "--format", "json"])
        .output()
        .expect("run loki-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    fs::remove_dir_all(&root).ok();

    assert!(
        !out.status.success(),
        "loki-lint must fail on a sensitive type in a loki-server public API\nstdout: {stdout}"
    );
    assert!(
        stdout.contains("sensitive-egress"),
        "diagnostic must name the rule\nstdout: {stdout}"
    );
    assert!(
        stdout.contains("WorkerId"),
        "diagnostic must name the leaked type\nstdout: {stdout}"
    );
}

#[test]
fn binary_reports_clean_tree_with_exit_zero() {
    let Some(bin) = lint_binary() else {
        eprintln!("skipping: loki-lint binary not available outside cargo");
        return;
    };
    let root = std::env::temp_dir().join(format!("loki-lint-clean-{}", std::process::id()));
    let server_src = root.join("crates/server/src");
    fs::create_dir_all(&server_src).expect("create temp workspace");
    fs::write(
        root.join("crates/server/Cargo.toml"),
        "[package]\nname = \"loki-server\"\n",
    )
    .expect("write manifest");
    fs::write(
        server_src.join("lib.rs"),
        "pub fn healthz() -> &'static str {\n    \"ok\"\n}\n",
    )
    .expect("write clean source");

    let out = std::process::Command::new(&bin)
        .args(["--root"])
        .arg(&root)
        .args(["--deny-new"])
        .output()
        .expect("run loki-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    fs::remove_dir_all(&root).ok();

    assert!(
        out.status.success(),
        "clean tree must exit zero\nstdout: {stdout}"
    );
}
