//@crate: loki-core
//@path: crates/core/src/types_fixture.rs
// Rule 1b: Serialize/Debug derives on sensitive type names outside the
// trusted client crates.

#[derive(Debug, Clone, Serialize)] //~ sensitive-egress
pub struct QuasiIdentifier {
    dob: String,
    gender: u8,
    zip: String,
}

#[derive(Serialize, Deserialize)] //~ sensitive-egress
struct WorkerProfile {
    attrs: Vec<String>,
}

// Clone/PartialEq alone are not egress channels.
#[derive(Clone, PartialEq)]
pub struct BirthDate {
    year: i32,
}

// Non-sensitive names may derive whatever they like.
#[derive(Debug, Serialize)]
pub struct AggregateRow {
    mean: f64,
}
