//@crate: loki-obs
//@path: crates/obs/src/prof.rs
// Raw-identity file (PR 9): the profiler's phase tables render verbatim
// on /v1/profile, so identifier hygiene applies here exactly as in the
// trace and audit stores. Phase names are `&'static str` literals by the
// `phase!` macro's contract — naming them, interning them and rendering
// them is clean; an identity-named value reaching a render sink fires.

pub const UNTAGGED: &str = "untagged";

// Literal phase names flowing into the table and the collapsed-stack
// rendering: no identity ident anywhere, clean.
pub fn intern(name: &'static str) -> u16 {
    let id = table_slot(name);
    id
}

pub fn collapse_row(thread: &'static str, phase: &'static str, samples: u64) -> String {
    format!("{}/{};{} {}", thread, 0, phase, samples)
}

// Deriving an opaque ordinal from an identity-named value without
// rendering it: clean under the taint pass (the old blanket ident ban
// would have fired here).
pub fn ordinal_for(worker_id: &str) -> u16 {
    (stable_hash(worker_id) % 64) as u16
}

// An identity-named value reaching the format sink fires: a per-user
// phase name would republish identity on every /v1/profile scrape.
pub fn tag_for(user_id: &str) -> String {
    format!("submit.{}", user_id) //~ sensitive-egress
}

// Taint propagates through assignment into an emission sink.
pub fn register_named(worker: &str) {
    let label = worker;
    emit_phase(label); //~ sensitive-egress
}

fn table_slot(_name: &'static str) -> u16 {
    0
}

fn stable_hash(s: &str) -> u64 {
    s.len() as u64
}

fn emit_phase(_label: &str) {}
