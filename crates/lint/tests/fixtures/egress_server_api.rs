//@crate: loki-server
//@path: crates/server/src/api_fixture.rs
// Rule 1a: sensitive types in a forbidden crate's public API.

pub struct Export {
    pub who: WorkerId, //~ sensitive-egress
    pub count: usize,
}

pub fn lookup(zip: ZipCode) -> Option<BirthDate> { //~ sensitive-egress sensitive-egress
    None
}

pub type ProfileMap = HashMap<WorkerId, WorkerProfile>; //~ sensitive-egress sensitive-egress

pub use loki_survey::demographics::QuasiIdentifier; //~ sensitive-egress

// Restricted visibility is not cross-crate API.
pub(crate) fn internal(gender: Gender) -> Gender {
    gender
}

// Non-sensitive types are fine in public APIs.
pub fn stats(id: SurveyId) -> Vec<u64> {
    Vec::new()
}

// Private items are not egress.
fn helper(profile: PartialProfile) -> usize {
    0
}

#[cfg(test)]
mod tests {
    // Test-only signatures are exempt.
    pub fn probe(w: WorkerId) -> WorkerId {
        w
    }
}
