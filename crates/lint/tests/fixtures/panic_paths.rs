//@crate: loki-net
//@path: crates/net/src/fixture.rs
// Rule 4: no panic paths in serving code.

pub fn handle(buf: &[u8], n: usize) -> Header {
    let header = parse(buf).unwrap(); //~ panic-path
    let name = header.name().expect("has a name"); //~ panic-path
    let body = &buf[..n]; //~ panic-path
    if body.is_empty() {
        panic!("empty body"); //~ panic-path
    }
    assert!(n > 0, "n must be positive"); //~ panic-path
    header
}

// Non-panicking forms are the fix.
pub fn handle_checked(buf: &[u8], n: usize) -> Option<Header> {
    let header = parse(buf).ok()?;
    let body = buf.get(..n)?;
    let fallback = parse(body).unwrap_or_default();
    Some(header)
}

// A bounds-proven index can be allowed with justification.
pub fn first(buf: &[u8]) -> u8 {
    if buf.is_empty() {
        return 0;
    }
    // lint:allow panic-path
    buf[0]
}

#[cfg(test)]
mod tests {
    fn t() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        v.get(9).unwrap();
    }
}
