//@crate: loki-server
//@path: crates/server/src/agg.rs
// The privacy observatory's serializing surface (rendered on
// /v1/privacy). Two prongs of sensitive-egress apply here: the module is
// a raw-identity file (identity-named values are taint sources and must
// not reach a serializing sink), and loki-server's truly-public API may
// not mention quasi-identifier types at all. Only anonymous bucket
// counts may leave this module.

pub struct KAnonSummary {
    pub cohorts: u64,
    pub at_risk: u64,
}

// A raw quasi-identifier value in the public observatory API: the exact
// leak /v1/privacy exists to measure.
pub fn cohort_of(qi: QuasiIdentifier) -> u64 { //~ sensitive-egress
    0
}

// A subject id reaching the endpoint serializer fires the taint prong.
pub fn render_cohort(user: &str, size: u64) -> String {
    format!("{}:{}", user, size) //~ sensitive-egress
}

// Taint survives aliasing on the way to a wire serializer.
pub fn observe_row(worker: &str) {
    let subject = worker;
    serialize_entry(subject); //~ sensitive-egress
}

// The opaque per-subject route index never names the person: clean.
pub fn sketch_shard(subject_index: u64, shards: u64) -> u64 {
    subject_index % shards
}

// Bucket counts only — the shape the endpoint is allowed to emit: clean.
pub fn render_histogram(summary: &KAnonSummary) -> String {
    format!("{} cohorts, {} at risk", summary.cohorts, summary.at_risk)
}

// Identity used purely for routing, never sunk: clean.
pub fn shard_for(user: &str) -> usize {
    user.len() % 16
}
