//@crate: loki-server
//@path: crates/server/src/store_relock_fixture.rs
// double-lock: re-acquiring a lock already held on the same path —
// std locks are not reentrant. `.lock()` without `.unwrap()` keeps
// panic-path out of this fixture.

impl State {
    pub fn relock(&self) {
        let first = self.submissions.lock();
        let second = self.submissions.lock(); //~ double-lock
    }

    // A second `.read()` can deadlock behind a queued writer.
    pub fn double_read(&self) {
        let one = self.user_indices.read();
        let two = self.user_indices.read(); //~ double-lock
    }

    // Different locks in declared order: fine.
    pub fn two_locks(&self) {
        let surveys = self.surveys.lock();
        let submissions = self.submissions.lock();
    }

    // Re-acquiring after an explicit drop: fine.
    pub fn relock_after_drop(&self) {
        let guard = self.journal.lock();
        drop(guard);
        let again = self.journal.lock();
    }

    // Sibling branches each acquire once: fine.
    pub fn branches(&self, cond: bool) {
        if cond {
            let a = self.journal.lock();
            a.push(1);
        } else {
            let b = self.journal.lock();
            b.push(2);
        }
    }
}
