//@crate: loki-obs
//@path: crates/obs/src/audit.rs
// Raw-identity file: the ε-audit stream is rendered verbatim over HTTP,
// so person-level entity names are banned as identifiers outright.

pub struct AuditEvent {
    pub subject_index: u64, // opaque index: fine
    pub user: String, //~ sensitive-egress
}

pub fn record(worker: u64, epsilon: f64) -> u64 { //~ sensitive-egress
    // A string mentioning "user" is not an identifier token.
    let label = "per-user epsilon";
    let _ = (label, epsilon);
    let respondent = worker; //~ sensitive-egress sensitive-egress
    respondent //~ sensitive-egress
}

#[cfg(test)]
mod tests {
    // Test-only code is exempt (the emit filter), like every rule.
    #[test]
    fn naming_a_user_in_tests_is_fine() {
        let user = 7u64;
        assert_eq!(user, 7);
    }
}
