//@crate: loki-dp
//@path: crates/dp/src/fixture.rs
// Rule 3: no ==/!= on privacy-budget floats.

pub fn over_budget(epsilon: f64, budget: f64) -> bool {
    epsilon == budget //~ float-eq-budget
}

pub fn spent(remaining_budget: f64) -> bool {
    remaining_budget != 0.0 //~ float-eq-budget
}

// Ordering comparisons are the correct form.
pub fn within(epsilon: f64, budget: f64) -> bool {
    epsilon <= budget
}

// Equality on non-budget values is out of scope.
pub fn same_count(k: usize, n: usize) -> bool {
    k == n
}

// A justified exact comparison can be allowed inline.
pub fn degenerate(sigma: f64) -> bool {
    // lint:allow float-eq-budget
    sigma == 0.0
}
