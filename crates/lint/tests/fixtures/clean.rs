//@crate: loki-server
//@path: crates/server/src/clean_fixture.rs
// A well-behaved serving-path file: typed errors, checked access,
// obfuscated DTOs only. Expected findings: none.

pub fn submit(payload: &[u8]) -> Result<Receipt, SubmitError> {
    let parsed = decode(payload).map_err(|_| SubmitError::Malformed)?;
    let first = payload.get(0).copied().ok_or(SubmitError::Empty)?;
    if first == 0 {
        return Err(SubmitError::Empty);
    }
    Ok(Receipt {
        accepted: parsed.count,
    })
}

pub struct Receipt {
    pub accepted: usize,
}

pub fn noisy_histogram(bins: &[u64]) -> Vec<f64> {
    bins.iter().map(|b| *b as f64).collect()
}
