//@crate: loki-server
//@path: crates/server/src/store_order_fixture.rs
// lock-order: the acquired-while-held graph must respect the declared
// order (publish_lock < … < journal < crash_hooks) and stay acyclic.
// `.lock()` without `.unwrap()` keeps panic-path out of this fixture.

impl Store {
    // Declared order respected: publish_lock, then surveys, then journal.
    pub fn publish(&self) {
        let guard = self.publish_lock.lock();
        let surveys = self.surveys.lock();
        self.journal.lock();
    }

    // Direct inversion: surveys is declared *before* journal.
    pub fn inverted(&self) {
        let journal = self.journal.lock();
        let surveys = self.surveys.lock(); //~ lock-order
    }

    // Dropping the first guard removes the edge entirely.
    pub fn sequential(&self) {
        let journal = self.journal.lock();
        drop(journal);
        let surveys = self.surveys.lock();
    }

    fn takes_journal(&self) {
        self.journal.lock();
    }

    // Same-file interprocedural: calling takes_journal while holding
    // publish_lock is fine (publish_lock < journal)…
    pub fn chained_ok(&self) {
        let guard = self.publish_lock.lock();
        self.takes_journal();
    }

    // …but holding crash_hooks (declared last) is an inversion.
    pub fn chained_inverted(&self) {
        let hooks = self.crash_hooks.lock();
        self.takes_journal(); //~ lock-order
    }

    // Locks outside the declared order are still checked for cycles:
    // alpha→beta here, beta→alpha below — both directions flagged.
    pub fn alpha_then_beta(&self) {
        let alpha = self.alpha.lock();
        let beta = self.beta.lock(); //~ lock-order
    }

    pub fn beta_then_alpha(&self) {
        let beta = self.beta.lock();
        let alpha = self.alpha.lock(); //~ lock-order
    }

    fn locks_gamma(&self) {
        let gamma = self.gamma.lock();
        self.counter.bump();
    }

    // Re-acquiring a held lock through a call chain: self-cycle.
    pub fn relock_via_call(&self) {
        let gamma = self.gamma.lock();
        self.locks_gamma(); //~ lock-order
    }
}
