//@crate: loki-server
//@path: crates/server/src/wal_blocking_fixture.rs
// guard-across-blocking: no lock guard may be live across fsync/channel
// send/recv/join. `.lock()` without `.unwrap()` keeps panic-path out of
// this fixture.

impl Writer {
    // Guard live across fsync: the critical section contains disk I/O.
    pub fn bad_sync(&self) {
        let journal = self.journal.lock();
        self.file.sync_all(); //~ guard-across-blocking
    }

    // Closing the scope before the fsync is the fix.
    pub fn good_sync(&self) {
        {
            let journal = self.journal.lock();
            journal.push(1);
        }
        self.file.sync_all();
    }

    // An explicit drop also ends guard liveness.
    pub fn good_drop(&self) {
        let state = self.state.lock();
        drop(state);
        self.tx.send(1);
    }

    // A channel send inside a critical section blocks on the peer.
    pub fn bad_send(&self) {
        let state = self.state.lock();
        self.tx.send(2); //~ guard-across-blocking
    }

    // A temporary guard in the same statement still covers the call.
    pub fn bad_inline(&self) {
        self.journal.lock().write_all(b"x"); //~ guard-across-blocking
    }

    // Joining a thread while holding a lock it may need: deadlock.
    pub fn bad_join(&self, handle: JoinHandle) {
        let registry = self.registry.lock();
        handle.join(); //~ guard-across-blocking
    }

    // Blocking calls with no guard live are fine.
    pub fn good_plain(&self) {
        self.file.sync_all();
        self.tx.send(3);
    }
}
