//@crate: loki-dp
//@path: crates/dp/src/mechanisms/fixture.rs
// Rule 2: ambient entropy is banned in mechanism code.

pub fn bad_sample() -> f64 {
    let mut rng = rand::thread_rng(); //~ unseeded-rng
    rng.gen()
}

pub fn bad_seed() -> ChaCha20Rng {
    ChaCha20Rng::from_entropy() //~ unseeded-rng
}

pub fn bad_os() -> f64 {
    OsRng.gen() //~ unseeded-rng
}

// The required shape: the caller injects the RNG.
pub fn good_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen()
}

#[cfg(test)]
mod tests {
    // Tests may use ambient entropy freely.
    fn t() {
        let _ = rand::thread_rng();
    }
}
