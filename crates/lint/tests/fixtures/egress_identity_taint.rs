//@crate: loki-obs
//@path: crates/obs/src/audit.rs
// Raw-identity file: the ε-audit stream is rendered verbatim over HTTP.
// Identity-named values are taint sources; a finding needs the taint to
// *reach a sink* (format/serialize/log/trace/audit). Merely naming a
// local after a person-level entity is fine — that was the
// false-positive class of the old blanket ident ban.

pub struct AuditEvent {
    pub subject_index: u64,
}

// Identity-named param used only to derive the opaque index: clean now
// (fired under the pre-taint ident ban).
pub fn subject_for(user_id: &str) -> u64 {
    let key = stable_hash(user_id);
    key % 1024
}

// Tainted param reaching a format sink fires.
pub fn render_line(user_id: &str, epsilon: f64) -> String {
    format!("spent {} by {}", epsilon, user_id) //~ sensitive-egress
}

// Taint propagates through assignment…
pub fn log_alias(worker: &str) {
    let who = worker;
    log_event(who); //~ sensitive-egress
}

// …and through method receivers.
pub fn buffered(respondent: &str) {
    let mut line = String::new();
    line.push_str(respondent);
    emit_trace(&line); //~ sensitive-egress
}

// The opaque index is what the stores are supposed to emit: clean.
pub fn render_event(subject_index: u64, epsilon: f64) -> String {
    format!("spent {} by subject {}", epsilon, subject_index)
}

// An identity value that never reaches a sink: clean.
pub fn count_only(participant: &str) -> usize {
    participant.len()
}
