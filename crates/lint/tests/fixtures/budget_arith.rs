//@crate: loki-core
//@path: crates/core/src/ledger.rs
// Rule 5: budget accounting must use saturating/checked arithmetic.

pub fn p95_index(losses: &[f64], n: usize) -> f64 {
    losses[n - 1] //~ unchecked-budget-arith
}

pub fn total_loss(spent: f64, epsilon: f64) -> f64 {
    spent + epsilon //~ unchecked-budget-arith
}

pub fn accumulate(budget: &mut f64, epsilon: f64) {
    *budget -= epsilon; //~ unchecked-budget-arith
}

// Saturating forms are the fix.
pub fn p95_index_checked(losses: &[f64], n: usize) -> Option<f64> {
    losses.get(n.saturating_sub(1)).copied()
}

pub fn total_loss_checked(spent: Epsilon, epsilon: Epsilon) -> Epsilon {
    spent.saturating_add(epsilon)
}

// Arithmetic on non-budget values is out of scope.
pub fn midpoint(lo: usize, hi: usize) -> usize {
    lo + (hi - lo) / 2
}
