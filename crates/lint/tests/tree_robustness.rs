//! Robustness tests for the token-tree / flow layer on malformed input.
//!
//! The structural passes must *degrade*, never panic: an unbalanced or
//! otherwise mangled item is skipped (`deeply_balanced()` is false, so the
//! walkers produce no findings for it), but analysis of the rest of the
//! file — and of the rest of the workspace — continues.
//!
//! Two layers of coverage:
//!
//! 1. hand-written malformed sources covering the known hazard classes
//!    (unclosed/stray/mismatched delimiters, braces inside strings and
//!    macros, nested closures, truncation mid-token);
//! 2. a deterministic mini fuzz loop that mutates *real workspace
//!    sources* (span deletions, delimiter swaps, truncations) with a
//!    fixed-seed LCG and runs the full analysis over each mutant.

use loki_lint::analyze_source;
use loki_lint::config::Config;
use loki_lint::flow;
use loki_lint::lexer;
use loki_lint::tree;
use std::fs;
use std::path::PathBuf;

/// Workspace root: two levels up from the lint crate.
fn workspace_root() -> PathBuf {
    let manifest = match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("crates/lint"),
    };
    manifest
        .canonicalize()
        .unwrap_or(manifest)
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

/// Full structural pipeline over one source: lex, tree, item discovery,
/// guard-liveness walk, taint walk, and the whole rule set. Any panic
/// fails the test; this returns only so the optimizer can't drop it.
fn exercise(path: &str, src: &str) -> usize {
    let lexed = lexer::lex(src);
    let nodes = tree::build(&lexed.toks);
    let mut touched = 0;
    for f in flow::function_flows(&nodes) {
        touched += 1 + f.acquires.len() + f.calls.len();
    }
    let sources = ["user_id".to_string(), "worker".to_string()];
    let sinks = ["format".to_string(), "log".to_string()];
    for item in tree::functions(&nodes) {
        touched += flow::identity_taint(&item, &sources, &sinks).len();
    }
    let cfg = Config::from_toml("").expect("empty config parses");
    touched + analyze_source(path, "loki-server", src, &cfg).len()
}

// ---------------------------------------------------------------------------
// Hand-written hazard classes
// ---------------------------------------------------------------------------

#[test]
fn malformed_sources_never_panic() {
    let cases: &[&str] = &[
        // Unclosed function body.
        "fn open(&self) { let g = self.a.lock();",
        // Stray closers at top level and inside a body.
        "} fn stray(&self) { ) ] let g = self.a.lock(); }",
        // Mismatched delimiter kinds.
        "fn mix(&self) { let g = (self.a.lock()]; }",
        // Deeply unbalanced nesting.
        "fn deep() { { { ( [ { fn inner() {",
        // Braces inside strings and macros must stay opaque.
        "fn s() { let x = \"{ not a block }\"; m!({ self.a.lock() }); }",
        // Byte-char and raw-ident interplay with delimiters.
        "fn b() { let c = b'{'; let r#fn = r#type.lock(); }",
        // Nested closures with and without bodies.
        "fn c(&self) { run(|| { self.a.lock(); }, |x| x); }",
        // let with no initializer, drop of nothing, empty statements.
        "fn l(&self) { let g; drop(); ;;; let (a, b) = (1, 2); }",
        // Truncated mid-string / mid-char literal.
        "fn t() { let s = \"unterminated",
        "fn t2() { let c = '",
        // Bare keywords where items were expected.
        "fn impl mod { } ( fn ) fn fn",
        // Generic soup that looks like shift operators.
        "fn g<T: Fn() -> Vec<Vec<u8>>>(x: T) { x(); }",
        // Empty input and whitespace-only input.
        "",
        "   \n\t\n",
    ];
    for (i, src) in cases.iter().enumerate() {
        // A panic here aborts the test with the case index in the name.
        let n = exercise(&format!("crates/server/src/case_{i}.rs"), src);
        let _ = n;
    }
}

#[test]
fn unbalanced_item_degrades_without_losing_siblings() {
    // The mangled first fn is skipped; the well-formed second fn is still
    // discovered and walked.
    let src = "fn broken(&self) { let g = self.a.lock(); ( }\n\
               fn fine(&self) { let g = self.b.lock(); }\n";
    let lexed = lexer::lex(src);
    let nodes = tree::build(&lexed.toks);
    let flows = flow::function_flows(&nodes);
    let fine = flows
        .iter()
        .find(|f| f.name == "fine")
        .expect("well-formed sibling survives a mangled neighbour");
    assert_eq!(fine.acquires.len(), 1);
}

// ---------------------------------------------------------------------------
// Deterministic mini fuzz loop over mutated workspace sources
// ---------------------------------------------------------------------------

/// Fixed-seed LCG (Numerical Recipes constants): the whole fuzz run is a
/// pure function of the committed sources, so failures reproduce exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next() % bound as u64) as usize
        }
    }
}

/// One mutation: span deletion, delimiter swap, or truncation — all
/// char-boundary-safe so the mutant is still a valid `&str`.
fn mutate(src: &str, rng: &mut Lcg) -> String {
    let bytes: Vec<char> = src.chars().collect();
    if bytes.is_empty() {
        return String::new();
    }
    let mut out: Vec<char> = bytes.clone();
    match rng.below(3) {
        0 => {
            // Delete a span of up to 40 chars.
            let start = rng.below(out.len());
            let len = 1 + rng.below(40.min(out.len() - start));
            out.drain(start..start + len);
        }
        1 => {
            // Swap every delimiter in a window for a random other one.
            const DELIMS: [char; 6] = ['{', '}', '(', ')', '[', ']'];
            let start = rng.below(out.len());
            let end = (start + 1 + rng.below(200)).min(out.len());
            for c in &mut out[start..end] {
                if DELIMS.contains(c) {
                    *c = DELIMS[rng.below(6)];
                }
            }
        }
        _ => {
            // Truncate.
            let keep = rng.below(out.len());
            out.truncate(keep);
        }
    }
    out.into_iter().collect()
}

#[test]
fn fuzzed_workspace_sources_never_panic() {
    let root = workspace_root();
    let mut sources = Vec::new();
    for rel in [
        "crates/server/src/store.rs",
        "crates/server/src/wal.rs",
        "crates/obs/src/metrics.rs",
        "crates/lint/src/tree.rs",
        "crates/core/src/ledger.rs",
    ] {
        if let Ok(src) = fs::read_to_string(root.join(rel)) {
            sources.push((rel, src));
        }
    }
    assert!(
        sources.len() >= 3,
        "fuzz corpus needs real workspace sources; found {}",
        sources.len()
    );

    // Fixed seed: CoNEXT 2013 — the whole run is deterministic.
    let mut rng = Lcg(0x2013_1021);
    let mut total = 0usize;
    for (rel, src) in &sources {
        for _ in 0..40 {
            let mutant = mutate(src, &mut rng);
            total += exercise(rel, &mutant);
            // Stacked mutations hit deeper breakage.
            let mutant2 = mutate(&mutant, &mut rng);
            total += exercise(rel, &mutant2);
        }
    }
    // Sanity: the corpus was big enough that *something* was analyzed.
    assert!(total > 0, "fuzz loop exercised no code at all");
}
